//! Shared data-model types: labelled URLs, data sets and train/test splits.
//!
//! Section 4.1 of the paper: each data set is a collection of URLs
//! labelled with one of the five languages; the ODP and search-engine
//! sets are split into training and test parts by randomly selecting a
//! fixed percentage of URLs as test URLs, while the web-crawl set is used
//! for testing only. For the "training on content" experiments of
//! Section 7, training URLs additionally carry the text of the page.

use serde::{Deserialize, Serialize};
use urlid_lexicon::Language;

/// A URL labelled with its page language, optionally carrying the page
/// content (used only for the Section 7 "training on content" experiment,
/// and only ever for training — never for test URLs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledUrl {
    /// The URL.
    pub url: String,
    /// Ground-truth language of the page behind the URL.
    pub language: Language,
    /// Page text (HTML stripped), if downloaded.
    pub content: Option<String>,
}

impl LabeledUrl {
    /// Create a labelled URL without content.
    pub fn new(url: impl Into<String>, language: Language) -> Self {
        Self {
            url: url.into(),
            language,
            content: None,
        }
    }

    /// Create a labelled URL with page content.
    pub fn with_content(
        url: impl Into<String>,
        language: Language,
        content: impl Into<String>,
    ) -> Self {
        Self {
            url: url.into(),
            language,
            content: Some(content.into()),
        }
    }
}

/// A collection of labelled URLs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Name of the data set (e.g. "odp", "ser", "web-crawl").
    pub name: String,
    /// The labelled URLs.
    pub urls: Vec<LabeledUrl>,
}

impl Dataset {
    /// Create an empty data set with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            urls: Vec::new(),
        }
    }

    /// Create a data set from parts.
    pub fn from_urls(name: impl Into<String>, urls: Vec<LabeledUrl>) -> Self {
        Self {
            name: name.into(),
            urls,
        }
    }

    /// Number of URLs.
    pub fn len(&self) -> usize {
        self.urls.len()
    }

    /// Is the data set empty?
    pub fn is_empty(&self) -> bool {
        self.urls.is_empty()
    }

    /// Number of URLs labelled with `lang`.
    pub fn count_language(&self, lang: Language) -> usize {
        self.urls.iter().filter(|u| u.language == lang).count()
    }

    /// Per-language counts in canonical language order.
    pub fn language_counts(&self) -> [usize; 5] {
        let mut out = [0usize; 5];
        for u in &self.urls {
            out[u.language.index()] += 1;
        }
        out
    }

    /// Iterate over `(url, language)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Language)> {
        self.urls.iter().map(|u| (u.url.as_str(), u.language))
    }

    /// The subset of URLs labelled with `lang` (cloned).
    pub fn filter_language(&self, lang: Language) -> Dataset {
        Dataset {
            name: format!("{}-{}", self.name, lang.iso_code()),
            urls: self
                .urls
                .iter()
                .filter(|u| u.language == lang)
                .cloned()
                .collect(),
        }
    }

    /// Split deterministically into a training and a test part: every
    /// `k`-th URL (per language, to keep the split stratified) goes to the
    /// test set, where `k = round(1 / test_fraction)`.
    ///
    /// The paper randomly samples a fixed percentage; a stratified
    /// deterministic split keeps experiments reproducible without a seed
    /// while preserving the per-language proportions.
    ///
    /// # Panics
    /// Panics if `test_fraction` is not in `(0, 1)`.
    pub fn split(&self, test_fraction: f64) -> TrainTestSplit {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test_fraction must be in (0, 1), got {test_fraction}"
        );
        let k = (1.0 / test_fraction).round().max(1.0) as usize;
        let mut train = Dataset::new(format!("{}-train", self.name));
        let mut test = Dataset::new(format!("{}-test", self.name));
        let mut per_lang_counter = [0usize; 5];
        for u in &self.urls {
            let c = &mut per_lang_counter[u.language.index()];
            if *c % k == k - 1 {
                test.urls.push(u.clone());
            } else {
                train.urls.push(u.clone());
            }
            *c += 1;
        }
        TrainTestSplit { train, test }
    }

    /// Keep only the first `fraction` of each language's URLs (used by the
    /// Section 6 training-size sweep, where the amount of training data is
    /// varied from 0.1 % to 100 %).
    ///
    /// # Panics
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn take_fraction(&self, fraction: f64) -> Dataset {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1], got {fraction}"
        );
        let counts = self.language_counts();
        let mut budgets: [usize; 5] = [0; 5];
        for (i, &c) in counts.iter().enumerate() {
            budgets[i] = ((c as f64) * fraction).round().max(1.0) as usize;
        }
        let mut taken = [0usize; 5];
        let urls = self
            .urls
            .iter()
            .filter(|u| {
                let i = u.language.index();
                if taken[i] < budgets[i] {
                    taken[i] += 1;
                    true
                } else {
                    false
                }
            })
            .cloned()
            .collect();
        Dataset {
            name: format!("{}-{:.4}", self.name, fraction),
            urls,
        }
    }

    /// Split the URLs into at most `n` contiguous, near-equal shards (the
    /// unit of work of the map-reduce training pipeline). Fewer than `n`
    /// shards are returned when the data set is smaller than `n`; the
    /// concatenation of the shards is always exactly `self.urls`, so a
    /// sharded pass that reduces in shard order visits every URL in
    /// data-set order.
    pub fn shards(&self, n: usize) -> impl Iterator<Item = &[LabeledUrl]> {
        shard_slices(&self.urls, n)
    }

    /// Drop all page content (the paper never uses content for test URLs).
    pub fn without_content(&self) -> Dataset {
        Dataset {
            name: self.name.clone(),
            urls: self
                .urls
                .iter()
                .map(|u| LabeledUrl::new(u.url.clone(), u.language))
                .collect(),
        }
    }
}

/// Split any slice into at most `n` contiguous, near-equal chunks whose
/// concatenation is the original slice. The chunking is a pure function
/// of `(items.len(), n)` — independent of thread count or timing — which
/// is what makes sharded training runs reproducible.
pub fn shard_slices<T>(items: &[T], n: usize) -> impl Iterator<Item = &[T]> {
    let chunk = items.len().div_ceil(n.max(1)).max(1);
    items.chunks(chunk)
}

/// A training/test split of a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainTestSplit {
    /// The training part.
    pub train: Dataset,
    /// The test part.
    pub test: Dataset,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset(n_per_lang: usize) -> Dataset {
        let mut d = Dataset::new("sample");
        for lang in Language::all() {
            for i in 0..n_per_lang {
                d.urls.push(LabeledUrl::new(
                    format!("http://site{i}.{}/page{i}", lang.iso_code()),
                    lang,
                ));
            }
        }
        d
    }

    #[test]
    fn counts_per_language() {
        let d = sample_dataset(7);
        assert_eq!(d.len(), 35);
        assert_eq!(d.language_counts(), [7; 5]);
        assert_eq!(d.count_language(Language::German), 7);
        assert!(!d.is_empty());
    }

    #[test]
    fn split_is_stratified_and_disjoint() {
        let d = sample_dataset(100);
        let split = d.split(0.1);
        assert_eq!(split.train.len() + split.test.len(), d.len());
        for lang in Language::all() {
            assert_eq!(split.test.count_language(lang), 10);
            assert_eq!(split.train.count_language(lang), 90);
        }
        // No URL in both parts.
        for u in &split.test.urls {
            assert!(!split.train.urls.contains(u));
        }
    }

    #[test]
    #[should_panic]
    fn split_rejects_bad_fraction() {
        sample_dataset(5).split(1.5);
    }

    #[test]
    fn take_fraction_scales_each_language() {
        let d = sample_dataset(50);
        let small = d.take_fraction(0.1);
        assert_eq!(small.language_counts(), [5; 5]);
        // Always keeps at least one URL per language.
        let tiny = d.take_fraction(0.001);
        assert_eq!(tiny.language_counts(), [1; 5]);
        // Full fraction keeps everything.
        assert_eq!(d.take_fraction(1.0).len(), d.len());
    }

    #[test]
    fn filter_language_keeps_only_that_language() {
        let d = sample_dataset(3);
        let it = d.filter_language(Language::Italian);
        assert_eq!(it.len(), 3);
        assert!(it.urls.iter().all(|u| u.language == Language::Italian));
    }

    #[test]
    fn without_content_strips_content() {
        let mut d = Dataset::new("c");
        d.urls.push(LabeledUrl::with_content(
            "http://a.de/",
            Language::German,
            "hallo welt",
        ));
        assert!(d.urls[0].content.is_some());
        let stripped = d.without_content();
        assert!(stripped.urls[0].content.is_none());
        assert_eq!(stripped.urls[0].url, "http://a.de/");
    }

    #[test]
    fn iter_yields_pairs() {
        let d = sample_dataset(1);
        let pairs: Vec<(&str, Language)> = d.iter().collect();
        assert_eq!(pairs.len(), 5);
        assert_eq!(pairs[0].1, Language::English);
    }

    #[test]
    fn shards_concatenate_to_the_whole_dataset() {
        let d = sample_dataset(7); // 35 URLs
        for n in [1, 2, 3, 5, 34, 35, 36, 100] {
            let shards: Vec<&[LabeledUrl]> = d.shards(n).collect();
            assert!(shards.len() <= n, "{} shards for n={n}", shards.len());
            assert!(!shards.is_empty());
            let flat: Vec<&LabeledUrl> = shards.iter().flat_map(|s| s.iter()).collect();
            assert_eq!(flat.len(), d.len());
            for (a, b) in flat.iter().zip(&d.urls) {
                assert_eq!(**a, *b);
            }
        }
        // Empty data sets produce no shards rather than panicking.
        assert_eq!(Dataset::new("empty").shards(4).count(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let d = sample_dataset(2);
        let json = serde_json::to_string(&d).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
