//! The [`FeatureExtractor`] trait: the fit–transform protocol shared by
//! all three feature families.

use crate::compiled::CompiledTransform;
use crate::dataset::LabeledUrl;
use crate::scratch::ExtractScratch;
use crate::vector::SparseVector;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which of the paper's three feature families an extractor implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureSetKind {
    /// Word (token) features — Section 5.3.
    Words,
    /// Within-token character trigram features — Section 5.4.
    Trigrams,
    /// The 74 (or selected 15) custom-made features — Section 5.5.
    Custom,
}

impl FeatureSetKind {
    /// All three feature families in paper order.
    pub fn all() -> [FeatureSetKind; 3] {
        [
            FeatureSetKind::Words,
            FeatureSetKind::Trigrams,
            FeatureSetKind::Custom,
        ]
    }

    /// Short label used in reports and plots ("WF", "TF", "CF" in Figure 2).
    pub fn short_label(self) -> &'static str {
        match self {
            FeatureSetKind::Words => "WF",
            FeatureSetKind::Trigrams => "TF",
            FeatureSetKind::Custom => "CF",
        }
    }
}

impl fmt::Display for FeatureSetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FeatureSetKind::Words => "word features",
            FeatureSetKind::Trigrams => "trigram features",
            FeatureSetKind::Custom => "custom-made features",
        };
        f.write_str(s)
    }
}

/// A feature extractor that is fitted on labelled training URLs and then
/// maps any URL to a [`SparseVector`].
///
/// * For word/trigram features, fitting builds the vocabulary (and hence
///   fixes the dimensionality of the feature space).
/// * For the custom features, fitting builds the trained dictionaries of
///   Section 3.1; the dimensionality is fixed (74 or 15).
///
/// When a training URL carries page `content`, extractors that support
/// the Section 7 "training on content" setting incorporate the content
/// *during fitting and when transforming training examples*, but
/// [`FeatureExtractor::transform`] (used at test time) only ever sees the
/// URL.
pub trait FeatureExtractor: Send + Sync {
    /// Fit the extractor on labelled training data.
    fn fit(&mut self, training: &[LabeledUrl]);

    /// Map a URL to its feature vector. Must only be called after
    /// [`FeatureExtractor::fit`]; unfitted extractors return empty or
    /// degenerate vectors depending on the implementation.
    fn transform(&self, url: &str) -> SparseVector;

    /// Like [`FeatureExtractor::transform`], but reusing caller-owned
    /// scratch buffers so that the batch-classification hot path performs
    /// zero per-URL `String` allocation during tokenisation. Must return
    /// exactly the same vector as `transform` on the same URL.
    ///
    /// The default implementation ignores the scratch and delegates to
    /// `transform`; the word and trigram extractors override it.
    fn transform_with(&self, url: &str, scratch: &mut ExtractScratch) -> SparseVector {
        let _ = scratch;
        self.transform(url)
    }

    /// Map a *training* example (URL plus optional page content) to its
    /// feature vector. The default implementation ignores content.
    fn transform_training(&self, example: &LabeledUrl) -> SparseVector {
        let _ = &example.content;
        self.transform(&example.url)
    }

    /// Lower this fitted extractor into a [`CompiledTransform`] — the
    /// arena-interned, zero-allocation form the compiled scoring plane
    /// extracts through. Must produce exactly the same vectors as
    /// [`FeatureExtractor::transform_with`] on every URL.
    ///
    /// The default returns `None` (stay interpreted); the word and
    /// trigram extractors override it. Extractors whose transform is not
    /// a vocabulary lookup — the custom features, instrumented test
    /// wrappers — keep the default so the plane falls back to the trait
    /// object for extraction.
    fn compile_transform(&self) -> Option<CompiledTransform> {
        None
    }

    /// Dimensionality of the feature space after fitting.
    fn dim(&self) -> usize;

    /// Human-readable name of a feature index, if known.
    fn feature_name(&self, index: u32) -> Option<String>;

    /// Which feature family this extractor belongs to.
    fn kind(&self) -> FeatureSetKind;
}

/// Map-reduce fitting: the two-pass parallel alternative to
/// [`FeatureExtractor::fit`].
///
/// Fitting any of the three feature families reduces to counting — token
/// document frequencies for the word/trigram vocabularies, per-language
/// token frequencies for the custom features' trained dictionaries — and
/// counting is embarrassingly parallel: each corpus shard produces a
/// [`ShardedFit::Partial`] independently ([`ShardedFit::observe_shard`],
/// the map), the partials are summed ([`ShardedFit::merge_partials`], the
/// reduce), and the merged counts are frozen into the extractor's
/// vocabulary or dictionary ([`ShardedFit::finish_fit`]).
///
/// Implementations guarantee that for any partition of the training set
/// into contiguous shards,
///
/// ```text
/// finish_fit(reduce(merge_partials, shards.map(observe_shard)))
///     == fit(training)
/// ```
///
/// *bit-identically* — the partials are integer counts and pruning
/// happens only at freeze time, so neither the shard count nor the merge
/// order can change the fitted extractor.
pub trait ShardedFit: FeatureExtractor {
    /// The mergeable partial fitting state produced by one shard.
    type Partial: Send;

    /// Count one shard of training examples (pure; does not mutate the
    /// extractor, so shards can run on scoped threads sharing `&self`).
    fn observe_shard(&self, shard: &[LabeledUrl]) -> Self::Partial;

    /// Combine two partial states (commutative and associative).
    fn merge_partials(&self, acc: Self::Partial, next: Self::Partial) -> Self::Partial;

    /// Freeze the merged state into the fitted extractor. `None` means
    /// the training set was empty (equivalent to fitting on `&[]`).
    fn finish_fit(&mut self, merged: Option<Self::Partial>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_display() {
        assert_eq!(FeatureSetKind::Words.short_label(), "WF");
        assert_eq!(FeatureSetKind::Trigrams.short_label(), "TF");
        assert_eq!(FeatureSetKind::Custom.short_label(), "CF");
        assert_eq!(FeatureSetKind::Words.to_string(), "word features");
        assert_eq!(FeatureSetKind::all().len(), 3);
    }
}
