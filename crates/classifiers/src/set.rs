//! Bundling five binary classifiers into the paper's multi-label setup.
//!
//! Section 4.2: "For each algorithm we created five separate binary
//! classifiers, one for each language. Note that this allows a single web
//! page to be classified as multiple languages simultaneously, as there
//! are five independent (binary) decisions to be made."

use crate::model::UrlClassifier;
use std::collections::BTreeMap;
use urlid_lexicon::{Language, ALL_LANGUAGES};

/// Five per-language binary URL classifiers evaluated jointly.
pub struct LanguageClassifierSet {
    classifiers: BTreeMap<Language, Box<dyn UrlClassifier>>,
}

impl Default for LanguageClassifierSet {
    fn default() -> Self {
        Self::new()
    }
}

impl LanguageClassifierSet {
    /// An empty set (classifiers are added with [`LanguageClassifierSet::insert`]).
    pub fn new() -> Self {
        Self {
            classifiers: BTreeMap::new(),
        }
    }

    /// Build a set by calling `f` for every language.
    pub fn build(mut f: impl FnMut(Language) -> Box<dyn UrlClassifier>) -> Self {
        let mut set = Self::new();
        for lang in ALL_LANGUAGES {
            set.insert(lang, f(lang));
        }
        set
    }

    /// Insert (or replace) the classifier for a language.
    pub fn insert(&mut self, lang: Language, classifier: Box<dyn UrlClassifier>) {
        self.classifiers.insert(lang, classifier);
    }

    /// Number of languages with a classifier.
    pub fn len(&self) -> usize {
        self.classifiers.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.classifiers.is_empty()
    }

    /// Does the set have a classifier for `lang`?
    pub fn contains(&self, lang: Language) -> bool {
        self.classifiers.contains_key(&lang)
    }

    /// The classifier for `lang`, if present.
    pub fn get(&self, lang: Language) -> Option<&dyn UrlClassifier> {
        self.classifiers.get(&lang).map(|b| b.as_ref())
    }

    /// The five independent binary decisions for a URL, in canonical
    /// language order. Missing classifiers answer `false`.
    pub fn classify_all(&self, url: &str) -> [bool; 5] {
        let mut out = [false; 5];
        for (lang, clf) in &self.classifiers {
            out[lang.index()] = clf.classify_url(url);
        }
        out
    }

    /// The set of languages whose binary classifier accepted the URL
    /// (possibly empty, possibly more than one — exactly as in the paper).
    pub fn languages_of(&self, url: &str) -> Vec<Language> {
        let decisions = self.classify_all(url);
        ALL_LANGUAGES
            .iter()
            .copied()
            .filter(|l| decisions[l.index()])
            .collect()
    }

    /// The single most likely language, decided by the highest score among
    /// accepting classifiers (or among all classifiers if none accepts).
    /// Returns `None` when the set is empty.
    pub fn best_language(&self, url: &str) -> Option<Language> {
        if self.classifiers.is_empty() {
            return None;
        }
        let accepted = self.languages_of(url);
        let candidates: Vec<Language> = if accepted.is_empty() {
            self.classifiers.keys().copied().collect()
        } else {
            accepted
        };
        candidates
            .into_iter()
            .map(|l| (l, self.classifiers[&l].score_url(url)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(l, _)| l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cctld::CcTldClassifier;

    fn cctld_set() -> LanguageClassifierSet {
        LanguageClassifierSet::build(|lang| Box::new(CcTldClassifier::cctld(lang)))
    }

    #[test]
    fn build_covers_all_languages() {
        let set = cctld_set();
        assert_eq!(set.len(), 5);
        assert!(!set.is_empty());
        for lang in ALL_LANGUAGES {
            assert!(set.contains(lang));
            assert!(set.get(lang).is_some());
        }
    }

    #[test]
    fn classify_all_gives_independent_decisions() {
        let set = cctld_set();
        let de = set.classify_all("http://www.beispiel.de/");
        assert_eq!(de[Language::German.index()], true);
        assert_eq!(de.iter().filter(|&&b| b).count(), 1);
        let com = set.classify_all("http://www.example.com/");
        assert_eq!(com, [false; 5]);
    }

    #[test]
    fn languages_of_lists_accepting_classifiers() {
        let set = cctld_set();
        assert_eq!(
            set.languages_of("http://www.esempio.it/"),
            vec![Language::Italian]
        );
        assert!(set.languages_of("http://www.example.com/").is_empty());
    }

    #[test]
    fn best_language_falls_back_to_scores() {
        let set = cctld_set();
        assert_eq!(
            set.best_language("http://www.ejemplo.es/"),
            Some(Language::Spanish)
        );
        // No classifier accepts .com; best_language still returns something.
        assert!(set.best_language("http://www.example.com/").is_some());
        assert_eq!(LanguageClassifierSet::new().best_language("http://x.de/"), None);
    }

    #[test]
    fn empty_and_partial_sets() {
        let mut set = LanguageClassifierSet::new();
        assert!(set.is_empty());
        assert_eq!(set.classify_all("http://a.de/"), [false; 5]);
        set.insert(
            Language::German,
            Box::new(CcTldClassifier::cctld(Language::German)),
        );
        assert_eq!(set.len(), 1);
        assert!(set.classify_all("http://a.de/")[Language::German.index()]);
        assert!(!set.contains(Language::French));
    }

    #[test]
    fn multiple_languages_can_accept_simultaneously() {
        // Build a deliberately overlapping set: every language uses the
        // ccTLD+ English table, so a .com URL is accepted by the English
        // classifier only, while a .de URL is accepted by German only —
        // then add an extra German classifier for English to force overlap.
        let mut set = LanguageClassifierSet::new();
        set.insert(
            Language::English,
            Box::new(CcTldClassifier::cctld(Language::German)),
        );
        set.insert(
            Language::German,
            Box::new(CcTldClassifier::cctld(Language::German)),
        );
        let langs = set.languages_of("http://www.beispiel.de/");
        assert_eq!(langs.len(), 2);
    }
}
