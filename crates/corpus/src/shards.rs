//! Streaming, sharded corpus generation.
//!
//! [`PaperCorpus::generate`](crate::PaperCorpus::generate) materialises
//! one giant `Vec` from a single sequential RNG — fine at laptop scale,
//! but at the paper's ≈1.2 M training URLs the generator itself becomes a
//! serial bottleneck in front of the parallel trainer. A [`ShardPlan`]
//! instead describes the corpus as a sequence of independent shards with
//! a **fixed per-shard seed schedule** ([`shard_seed`]): shard `i` is a
//! pure function of `(base_seed, i)`, so shards can be generated lazily
//! (an iterator of labelled-URL data sets instead of one giant `Vec`),
//! out of order, or on as many threads as the host has cores — and every
//! one of those schedules assembles the bit-identical corpus.

use crate::datasets::CorpusScale;
use crate::generator::UrlGenerator;
use crate::profiles::DatasetProfile;
use urlid_features::parallel::{effective_jobs, par_map};
use urlid_features::{Dataset, LabeledUrl};
use urlid_lexicon::ALL_LANGUAGES;

/// The fixed per-shard seed schedule: SplitMix64 over the shard index,
/// offset from the base seed. Shard seeds are decorrelated even for
/// adjacent base seeds and shard indices, and shard `i`'s seed never
/// depends on how many shards exist or who generates them.
pub fn shard_seed(base_seed: u64, shard: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(shard.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A description of a sharded synthetic corpus: `total_urls` URLs split
/// into `shards` contiguous shards, drawn with `profile` from per-shard
/// generators seeded by [`shard_seed`]. Languages round-robin over the
/// *global* URL index, so the corpus stays balanced (at most one URL of
/// per-language imbalance in total) no matter how it is sharded.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Base seed of the per-shard seed schedule.
    pub base_seed: u64,
    /// Number of shards.
    pub shards: usize,
    /// Total number of URLs the plan generates (the last shard takes the
    /// remainder, so this is exact).
    pub total_urls: usize,
    /// The distributional profile URLs are drawn with.
    pub profile: DatasetProfile,
    /// Name of the assembled data set.
    pub name: String,
}

impl ShardPlan {
    /// A plan for an arbitrary balanced data set: `total_urls` URLs of
    /// `profile`, languages round-robin over the global URL index, split
    /// into `shards` shards. This is the constructor `urlid generate
    /// --jobs` builds its training/test sets from — any job count
    /// assembles the bit-identical corpus.
    pub fn dataset(
        base_seed: u64,
        name: impl Into<String>,
        profile: DatasetProfile,
        total_urls: usize,
        shards: usize,
    ) -> Self {
        Self {
            base_seed,
            shards: shards.clamp(1, total_urls.max(1)),
            total_urls,
            profile,
            name: name.into(),
        }
    }

    /// A plan for a training corpus of exactly `scale` × the paper's ODP
    /// training size (the size `odp_dataset` would produce), split into
    /// `shards` shards.
    pub fn odp_training(base_seed: u64, scale: CorpusScale, shards: usize) -> Self {
        Self::dataset(
            base_seed,
            "odp-sharded",
            DatasetProfile::odp(),
            5 * scale.apply(crate::datasets::ODP_TRAIN_PER_LANGUAGE),
            shards,
        )
    }

    /// The `[start, end)` range of global URL indices shard `i` covers.
    fn shard_bounds(&self, i: usize) -> (usize, usize) {
        let per = self.total_urls.div_ceil(self.shards.max(1)).max(1);
        (
            (i * per).min(self.total_urls),
            ((i + 1) * per).min(self.total_urls),
        )
    }

    /// Generate shard `i` (a pure function of the plan and `i`).
    ///
    /// # Panics
    /// Panics if `i >= self.shards`.
    pub fn shard(&self, i: usize) -> Dataset {
        assert!(i < self.shards, "shard {i} out of {}", self.shards);
        let mut generator = UrlGenerator::new(shard_seed(self.base_seed, i as u64));
        let mut dataset = Dataset::new(format!("{}-{i}", self.name));
        let (start, end) = self.shard_bounds(i);
        for k in start..end {
            let lang = ALL_LANGUAGES[k % ALL_LANGUAGES.len()];
            let url = generator.generate(lang, &self.profile);
            dataset.urls.push(LabeledUrl::new(url, lang));
        }
        dataset
    }

    /// Stream the shards in order without materialising the whole corpus.
    pub fn iter(&self) -> impl Iterator<Item = Dataset> + '_ {
        (0..self.shards).map(|i| self.shard(i))
    }

    /// Assemble the full corpus on up to `jobs` scoped threads
    /// (0 = one worker per CPU core, as everywhere else).
    ///
    /// Built on [`par_map`], which places each shard into an
    /// index-addressed slot, so the concatenation — and therefore the
    /// assembled corpus — is bit-identical to `self.iter()` collected
    /// sequentially, for every `jobs` value.
    pub fn assemble(&self, jobs: usize) -> Dataset {
        let indices: Vec<usize> = (0..self.shards).collect();
        let shards = par_map(effective_jobs(jobs), &indices, |&i| self.shard(i));
        let mut dataset = Dataset::new(self.name.clone());
        for shard in shards {
            dataset.urls.extend(shard.urls);
        }
        dataset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urlid_lexicon::Language;

    fn small_plan() -> ShardPlan {
        ShardPlan {
            base_seed: 17,
            shards: 6,
            total_urls: 233, // deliberately not divisible by shards or languages
            profile: DatasetProfile::odp(),
            name: "test".to_owned(),
        }
    }

    #[test]
    fn shard_seed_schedule_is_fixed_and_decorrelated() {
        assert_eq!(shard_seed(1, 0), shard_seed(1, 0));
        assert_ne!(shard_seed(1, 0), shard_seed(1, 1));
        assert_ne!(shard_seed(1, 0), shard_seed(2, 0));
        // Adjacent shards of adjacent base seeds never collide either.
        let mut seen = std::collections::HashSet::new();
        for base in 0..8u64 {
            for shard in 0..8u64 {
                assert!(seen.insert(shard_seed(base, shard)));
            }
        }
    }

    #[test]
    fn shards_are_pure_functions_of_the_plan() {
        let plan = small_plan();
        assert_eq!(plan.shard(3), plan.shard(3));
        // Compare the URLs, not the Dataset (whose name differs per
        // shard by construction): distinct shards must draw distinct
        // URL streams from their distinct seeds.
        assert_ne!(plan.shard(2).urls, plan.shard(3).urls);
    }

    #[test]
    fn parallel_assembly_is_bit_identical_to_streaming() {
        let plan = small_plan();
        let mut streamed = Dataset::new("test".to_owned());
        for shard in plan.iter() {
            streamed.urls.extend(shard.urls);
        }
        assert_eq!(
            streamed.len(),
            plan.total_urls,
            "exact, despite 233 % 6 != 0"
        );
        for jobs in [1, 2, 3, 8] {
            let assembled = plan.assemble(jobs);
            assert_eq!(assembled, streamed, "jobs={jobs}");
        }
    }

    #[test]
    fn odp_training_plan_is_balanced_and_scaled() {
        let plan = ShardPlan::odp_training(42, CorpusScale::tiny(), 4);
        assert_eq!(plan.shards, 4);
        let corpus = plan.assemble(2);
        assert_eq!(corpus.len(), plan.total_urls);
        assert_eq!(
            corpus.len(),
            5 * CorpusScale::tiny().apply(crate::datasets::ODP_TRAIN_PER_LANGUAGE),
            "same size odp_dataset would produce at this scale"
        );
        // Global round-robin: at most one URL of imbalance in total,
        // regardless of the shard count.
        let counts = corpus.language_counts();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max - min <= 1, "{counts:?}");
        assert!(corpus.count_language(Language::German) > 0);
    }

    #[test]
    fn language_balance_is_independent_of_shard_count() {
        for shards in [1, 3, 6] {
            let plan = ShardPlan {
                shards,
                ..small_plan()
            };
            let counts = plan.assemble(2).language_counts();
            let min = counts.iter().min().unwrap();
            let max = counts.iter().max().unwrap();
            assert!(max - min <= 1, "shards={shards}: {counts:?}");
        }
    }

    #[test]
    fn dataset_plans_are_jobs_invariant_for_any_profile() {
        for profile in [
            DatasetProfile::odp(),
            DatasetProfile::ser(),
            DatasetProfile::web_crawl(),
        ] {
            let plan = ShardPlan::dataset(99, "set", profile, 101, 7);
            let serial = plan.assemble(1);
            assert_eq!(serial.len(), 101);
            for jobs in [2, 5] {
                assert_eq!(plan.assemble(jobs), serial, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn shard_count_is_clamped_to_corpus_size() {
        let plan = ShardPlan::odp_training(1, CorpusScale(0.0001), 1_000_000);
        assert!(plan.shards <= plan.total_urls.max(1));
        assert_eq!(plan.assemble(2).len(), plan.total_urls);
    }

    #[test]
    #[should_panic]
    fn out_of_range_shard_panics() {
        let _ = small_plan().shard(6);
    }
}
