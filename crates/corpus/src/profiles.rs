//! Generation profiles for the three data sets.
//!
//! A [`DatasetProfile`] captures, per data set and per language, the
//! distributional knobs that the paper identifies as decisive and that the
//! synthetic generator must reproduce:
//!
//! * the probability that a URL of the language carries one of the
//!   language's own ccTLDs (calibrated against the ccTLD baseline recall
//!   of Table 4);
//! * the split of the remaining probability mass over `.com`, `.org`,
//!   `.net` and other TLDs (Table 5: e.g. 79 % of the crawl's Spanish URLs
//!   are in `.com`/`.org`);
//! * the probability that a non-English URL "looks English" (all its
//!   lexical material is English — the dominant confusion of Tables 3/6);
//! * the probability that the URL lives on a shared multi-language
//!   provider domain (Section 6: 48 % for ODP, ≈30 % otherwise);
//! * the probability that the URL's registered domain is drawn from the
//!   persistent per-language domain pool rather than freshly invented
//!   (drives the domain-memorisation curve of Figure 3);
//! * hyphenation rates (Section 3.1: hyphens are ≈5× more frequent in
//!   German URLs than in English ones).

use serde::{Deserialize, Serialize};
use urlid_lexicon::Language;

/// Which of the paper's three data sets a profile describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Open Directory Project (Section 4.1, first data set).
    Odp,
    /// Search-engine results (second data set).
    SearchEngineResults,
    /// The hand-labelled 2005 web crawl (third data set).
    WebCrawl,
}

impl DatasetKind {
    /// All three data sets in paper order.
    pub fn all() -> [DatasetKind; 3] {
        [
            DatasetKind::Odp,
            DatasetKind::SearchEngineResults,
            DatasetKind::WebCrawl,
        ]
    }

    /// Short name used in reports ("ODP", "SER", "WC").
    pub fn short_name(self) -> &'static str {
        match self {
            DatasetKind::Odp => "ODP",
            DatasetKind::SearchEngineResults => "SER",
            DatasetKind::WebCrawl => "WC",
        }
    }
}

/// Per-language generation knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LanguageProfile {
    /// Probability that the URL's TLD is one of the language's own ccTLDs.
    pub own_cctld: f64,
    /// Probability of `.com`.
    pub com: f64,
    /// Probability of `.org`.
    pub org: f64,
    /// Probability of `.net`.
    pub net: f64,
    /// Probability that a URL of this (non-English) language uses English
    /// lexical material throughout ("looks English"). Ignored for English.
    pub english_looking: f64,
    /// Probability that the host stem or a path segment is hyphenated.
    pub hyphenation: f64,
}

impl LanguageProfile {
    /// Probability of a TLD that belongs to none of the tracked classes.
    pub fn other_tld(&self) -> f64 {
        (1.0 - self.own_cctld - self.com - self.org - self.net).max(0.0)
    }

    /// Check the TLD probabilities form a (sub-)distribution.
    pub fn is_valid(&self) -> bool {
        let vals = [
            self.own_cctld,
            self.com,
            self.org,
            self.net,
            self.english_looking,
            self.hyphenation,
        ];
        vals.iter().all(|v| (0.0..=1.0).contains(v))
            && self.own_cctld + self.com + self.org + self.net <= 1.0 + 1e-9
    }
}

/// A full data-set generation profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Which data set this profile mimics.
    pub kind: DatasetKind,
    /// Per-language knobs (canonical language order).
    pub languages: [LanguageProfile; 5],
    /// Probability that a URL lives on a shared multi-language provider
    /// domain (wordpress-style hosts).
    pub shared_domain: f64,
    /// Probability that the registered domain is drawn from the persistent
    /// per-language pool (vs. freshly invented, never to be seen again).
    pub pool_domain: f64,
    /// Probability that the URL has a query string.
    pub query: f64,
    /// Expected number of path segments (geometric-ish).
    pub mean_path_depth: f64,
}

impl DatasetProfile {
    /// The per-language profile for `lang`.
    pub fn language(&self, lang: Language) -> &LanguageProfile {
        &self.languages[lang.index()]
    }

    /// The ODP profile. ccTLD rates are calibrated to Table 4 (ODP rows):
    /// recall .13 / .83 / .25 / .30 / .62 for En/Ge/Fr/Sp/It.
    pub fn odp() -> Self {
        Self {
            kind: DatasetKind::Odp,
            languages: [
                // English
                LanguageProfile {
                    own_cctld: 0.13,
                    com: 0.60,
                    org: 0.15,
                    net: 0.05,
                    english_looking: 0.0,
                    hyphenation: 0.05,
                },
                // German
                LanguageProfile {
                    own_cctld: 0.80,
                    com: 0.10,
                    org: 0.03,
                    net: 0.02,
                    english_looking: 0.22,
                    hyphenation: 0.25,
                },
                // French
                LanguageProfile {
                    own_cctld: 0.25,
                    com: 0.50,
                    org: 0.10,
                    net: 0.05,
                    english_looking: 0.35,
                    hyphenation: 0.10,
                },
                // Spanish
                LanguageProfile {
                    own_cctld: 0.30,
                    com: 0.50,
                    org: 0.10,
                    net: 0.03,
                    english_looking: 0.40,
                    hyphenation: 0.08,
                },
                // Italian
                LanguageProfile {
                    own_cctld: 0.62,
                    com: 0.25,
                    org: 0.05,
                    net: 0.03,
                    english_looking: 0.15,
                    hyphenation: 0.08,
                },
            ],
            shared_domain: 0.30,
            pool_domain: 0.80,
            query: 0.10,
            mean_path_depth: 1.8,
        }
    }

    /// The search-engine-results profile (Table 4, SER rows: recall .52 /
    /// .67 / .60 / .64 / .75). The SER set was built partly via
    /// ccTLD-restricted queries, hence the higher ccTLD rates and the
    /// lower rate of English-looking URLs.
    pub fn ser() -> Self {
        Self {
            kind: DatasetKind::SearchEngineResults,
            languages: [
                LanguageProfile {
                    own_cctld: 0.52,
                    com: 0.30,
                    org: 0.08,
                    net: 0.03,
                    english_looking: 0.0,
                    hyphenation: 0.05,
                },
                LanguageProfile {
                    own_cctld: 0.67,
                    com: 0.20,
                    org: 0.04,
                    net: 0.02,
                    english_looking: 0.10,
                    hyphenation: 0.25,
                },
                LanguageProfile {
                    own_cctld: 0.60,
                    com: 0.27,
                    org: 0.05,
                    net: 0.03,
                    english_looking: 0.12,
                    hyphenation: 0.10,
                },
                LanguageProfile {
                    own_cctld: 0.64,
                    com: 0.25,
                    org: 0.04,
                    net: 0.02,
                    english_looking: 0.12,
                    hyphenation: 0.08,
                },
                LanguageProfile {
                    own_cctld: 0.75,
                    com: 0.17,
                    org: 0.03,
                    net: 0.02,
                    english_looking: 0.08,
                    hyphenation: 0.08,
                },
            ],
            shared_domain: 0.18,
            pool_domain: 0.70,
            query: 0.15,
            mean_path_depth: 2.0,
        }
    }

    /// The web-crawl profile (Table 4, WC rows: recall .10 / .61 / .23 /
    /// .11 / .62; Table 5: 79 % of Spanish crawl URLs in .com/.org).
    pub fn web_crawl() -> Self {
        Self {
            kind: DatasetKind::WebCrawl,
            languages: [
                LanguageProfile {
                    own_cctld: 0.10,
                    com: 0.62,
                    org: 0.15,
                    net: 0.06,
                    english_looking: 0.0,
                    hyphenation: 0.05,
                },
                LanguageProfile {
                    own_cctld: 0.61,
                    com: 0.22,
                    org: 0.04,
                    net: 0.03,
                    english_looking: 0.25,
                    hyphenation: 0.25,
                },
                LanguageProfile {
                    own_cctld: 0.23,
                    com: 0.50,
                    org: 0.10,
                    net: 0.05,
                    english_looking: 0.40,
                    hyphenation: 0.10,
                },
                LanguageProfile {
                    own_cctld: 0.11,
                    com: 0.65,
                    org: 0.14,
                    net: 0.03,
                    english_looking: 0.50,
                    hyphenation: 0.08,
                },
                LanguageProfile {
                    own_cctld: 0.62,
                    com: 0.24,
                    org: 0.05,
                    net: 0.03,
                    english_looking: 0.20,
                    hyphenation: 0.08,
                },
            ],
            shared_domain: 0.20,
            pool_domain: 0.55,
            query: 0.20,
            mean_path_depth: 2.4,
        }
    }

    /// The profile for a given [`DatasetKind`].
    pub fn for_kind(kind: DatasetKind) -> Self {
        match kind {
            DatasetKind::Odp => Self::odp(),
            DatasetKind::SearchEngineResults => Self::ser(),
            DatasetKind::WebCrawl => Self::web_crawl(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urlid_lexicon::ALL_LANGUAGES;

    #[test]
    fn all_profiles_are_valid_distributions() {
        for kind in DatasetKind::all() {
            let p = DatasetProfile::for_kind(kind);
            assert_eq!(p.kind, kind);
            for lang in ALL_LANGUAGES {
                let lp = p.language(lang);
                assert!(lp.is_valid(), "{kind:?}/{lang} profile invalid: {lp:?}");
                assert!(lp.other_tld() >= 0.0);
            }
            assert!((0.0..=1.0).contains(&p.shared_domain));
            assert!((0.0..=1.0).contains(&p.pool_domain));
        }
    }

    #[test]
    fn cctld_rates_match_table4_shape() {
        // German and Italian are strongly bound to their ccTLDs; English
        // and Spanish are not (especially in the crawl).
        let odp = DatasetProfile::odp();
        assert!(odp.language(Language::German).own_cctld > 0.7);
        assert!(odp.language(Language::English).own_cctld < 0.2);
        let wc = DatasetProfile::web_crawl();
        assert!(wc.language(Language::Spanish).own_cctld < 0.15);
        assert!(wc.language(Language::Italian).own_cctld > 0.5);
        // SER is the "cleanest" set: every language has a higher ccTLD
        // share than in the crawl.
        let ser = DatasetProfile::ser();
        for lang in ALL_LANGUAGES {
            assert!(ser.language(lang).own_cctld >= wc.language(lang).own_cctld);
        }
    }

    #[test]
    fn english_urls_never_look_english_flagged() {
        for kind in DatasetKind::all() {
            let p = DatasetProfile::for_kind(kind);
            assert_eq!(p.language(Language::English).english_looking, 0.0);
        }
    }

    #[test]
    fn german_hyphenates_about_five_times_more_than_english() {
        let p = DatasetProfile::odp();
        let ratio =
            p.language(Language::German).hyphenation / p.language(Language::English).hyphenation;
        assert!((4.0..=6.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn odp_has_the_largest_shared_domain_fraction() {
        assert!(DatasetProfile::odp().shared_domain > DatasetProfile::ser().shared_domain);
        assert!(DatasetProfile::odp().shared_domain > DatasetProfile::web_crawl().shared_domain);
    }

    #[test]
    fn short_names() {
        assert_eq!(DatasetKind::Odp.short_name(), "ODP");
        assert_eq!(DatasetKind::SearchEngineResults.short_name(), "SER");
        assert_eq!(DatasetKind::WebCrawl.short_name(), "WC");
    }
}
