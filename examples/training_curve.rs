//! A quick look at the Section 6 question: how much training data do the
//! different feature sets need? (Figure 2 in the paper; the full sweep
//! over all algorithm/feature combinations is produced by the experiment
//! harness in `urlid-bench`.)
//!
//! Run with:
//! ```sh
//! cargo run --release --example training_curve
//! ```

use urlid::eval::{domain_memorization_curve, training_curve};
use urlid::prelude::*;

fn main() {
    let corpus = PaperCorpus::generate(5, CorpusScale::small());
    let training = corpus.combined_training();
    let test = &corpus.web_crawl;
    let fractions = [0.01, 0.1, 1.0];

    println!(
        "training-size sweep on the crawl test set ({} training URLs at 100%)\n",
        training.len()
    );
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "fraction", "words F", "trigrams F", "ccTLD+ F"
    );

    let words = training_curve(&training, test, &fractions, |reduced| {
        train_classifier_set(
            reduced,
            &TrainingConfig::new(FeatureSetKind::Words, Algorithm::NaiveBayes),
        )
    });
    let trigrams = training_curve(&training, test, &fractions, |reduced| {
        train_classifier_set(
            reduced,
            &TrainingConfig::new(FeatureSetKind::Trigrams, Algorithm::NaiveBayes),
        )
    });
    let cctld = training_curve(&training, test, &fractions, |reduced| {
        train_classifier_set(
            reduced,
            &TrainingConfig::new(FeatureSetKind::Words, Algorithm::CcTldPlus),
        )
    });

    for (i, &f) in fractions.iter().enumerate() {
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>12.3}",
            format!("{:.1}%", f * 100.0),
            words[i].mean_f_measure(),
            trigrams[i].mean_f_measure(),
            cctld[i].mean_f_measure(),
        );
    }

    println!("\ndomain memorisation (Figure 3): % of crawl-test URLs whose domain was seen");
    for (f, pct) in domain_memorization_curve(&training, test, &fractions) {
        println!(
            "  {:>6.1}% of training data -> {:>5.1}% of test domains seen",
            f * 100.0,
            pct
        );
    }

    println!(
        "\nExpected shape (paper): trigrams beat words when little training data is\n\
         available; words win once the training set is large enough to memorise hosts;\n\
         the TLD heuristic is flat because it uses no training data at all."
    );
}
