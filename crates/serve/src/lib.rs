//! # urlid-serve
//!
//! The network serving layer for URL-based language identification — the
//! deployment the paper motivates: classification fast enough to run
//! *before* a page is fetched, inline in a crawler or frontend serving
//! path, under heavy traffic.
//!
//! Everything is built on the standard library only (the build container
//! has no crates.io access, so no tokio/hyper/mio — the same vendoring
//! philosophy as the rest of the workspace):
//!
//! * [`sys`] — the pluggable I/O engines behind one `Backend` trait: a
//!   hand-rolled **io_uring** engine (raw `io_uring_setup`/`enter`
//!   syscalls, mmap'd SQ/CQ rings, one batched submission per loop
//!   iteration) next to the readiness pollers (epoll on Linux,
//!   `poll(2)` on other unix targets), the self-pipe waker, and the
//!   `SO_REUSEPORT` listener binder behind the reactor sharding (the
//!   one module with `unsafe` in it). `--io auto` probes io_uring at
//!   boot and falls back to epoll where the kernel or a sandbox denies
//!   it;
//! * [`http`] — a minimal HTTP/1.1 codec whose server side is an
//!   **incremental parser** (feed bytes → `NeedMore | Request | Error`)
//!   that tolerates partial reads, pipelined requests and slow clients
//!   without ever blocking a thread;
//! * `conn` / `reactor` / `pool` (internal) — the **event-driven
//!   connection engine**: per-connection state machines multiplexed by
//!   `N` reactor threads (each owning its own `SO_REUSEPORT` listener,
//!   connection slab, wake pipe, and cache shard set — connections
//!   never migrate between reactors), with fully parsed requests
//!   dispatched to a scoring pool sized to the CPU count and per-reactor
//!   admission control shedding overload as `503`s. Thousands of
//!   mostly-idle keep-alive connections are served by `reactors + cores`
//!   threads total;
//! * [`cache`] — a mutex-striped, capacity-bounded LRU **result cache**
//!   keyed by normalised URL — partitionable into per-reactor shard
//!   sets — so repeated URLs skip tokenisation and feature extraction
//!   entirely (asserted by an integration test through
//!   [`urlid_features::CountingExtractor`]);
//! * [`metrics`] — request counters, connection gauges (open / idle /
//!   accepted / timed-out), the end-to-end latency histogram, and the
//!   **stage-span plane**: per-stage log-linear histograms
//!   (parse / queue / cache / extract / score / write, shared
//!   `urlid-telemetry` buckets) plus a striped fixed-size trace ring
//!   with request-id correlation — all behind relaxed atomics and
//!   try-lock ring writes, exported by `GET /metrics` (JSON by
//!   default, Prometheus text on `Accept: text/plain`) and
//!   `GET /admin/trace`;
//! * [`server`] — routing, the shared [`server::ServerState`] with
//!   **atomic model hot-reload** (`POST /admin/reload` swaps an
//!   [`std::sync::Arc`]-held model with zero dropped requests; the cache
//!   is epoch-tagged so stale entries never serve), and the
//!   spawn/shutdown API over the engine;
//! * [`loadgen`] — a keep-alive load generator replaying a
//!   corpus-generated URL mix — closed-loop throughput scenarios, a
//!   many-idle-connections scenario, and an **open-loop saturation
//!   scenario** (fixed arrival rate above capacity, admission-control
//!   `503`s counted apart from errors) — emitting a machine-readable,
//!   multi-scenario `BENCH_serve.json` (throughput, p50/p99 latency,
//!   cache hit rate, per-reactor breakdown).
//!
//! ## Endpoints
//!
//! | Endpoint              | Method | Body                        | Response                                     |
//! |-----------------------|--------|-----------------------------|----------------------------------------------|
//! | `/identify`           | POST   | `{"url": "..."}`            | per-language scores, decisions, best, cached |
//! | `/identify_batch`     | POST   | `{"urls": ["...", ...]}`    | one result per URL (parallel scoring)        |
//! | `/healthz`            | GET    | —                           | status, model config, uptime                 |
//! | `/metrics`            | GET    | —                           | counters, cache, latency + per-stage histograms; JSON by default, Prometheus text 0.0.4 on `Accept: text/plain` |
//! | `/admin/trace`        | GET    | —                           | last buffered stage spans with request ids   |
//! | `/admin/reload`       | POST   | `{"path": "...", "format": "auto\|json\|binary"}` (opt.) | swaps the model, bumps the cache epoch; reports `format`, `weights`, `load_ms` |
//!
//! ## Quickstart
//!
//! ```no_run
//! use urlid_serve::server::{spawn, ServeConfig, ServerState};
//! use std::sync::Arc;
//!
//! // `ModelSource` sniffs the format: JSON interchange or the
//! // zero-copy `.urlm` binary (which mmap-loads in milliseconds).
//! let source = urlid::ModelSource::detect("model.urlm").unwrap();
//! let identifier = source.load_identifier().unwrap();
//! let state = Arc::new(ServerState::new(
//!     identifier,
//!     Some("model.urlm".into()),
//!     65_536,
//! ));
//! let handle = spawn(&ServeConfig::default(), state).unwrap();
//! println!("serving on http://{}", handle.addr());
//! handle.join();
//! ```

// `unsafe` is confined to the raw syscall wrappers and the io_uring
// engine in `sys` (which carries its own `allow`); everything above
// the `Backend` trait is safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod conn;
pub mod http;
pub mod loadgen;
pub mod metrics;
mod pool;
mod reactor;
pub mod server;
pub mod sys;

pub use cache::{normalize_url, ResultCache};
pub use loadgen::{
    run_loadgen, run_suite, BenchReport, BenchSuite, LoadgenConfig, SERVE_BENCH_SCHEMA,
};
pub use metrics::Metrics;
pub use server::{default_reactors, spawn, PoolTopology, ServeConfig, ServerHandle, ServerState};
