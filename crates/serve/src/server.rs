//! Server state, request routing, and the engine spawn/shutdown API.
//!
//! ## Threading model
//!
//! One **reactor thread** (the internal `reactor` module) owns every
//! socket: it accepts connections, feeds bytes into per-connection
//! incremental parsers, and writes responses — all over non-blocking
//! I/O behind a readiness poller (epoll on Linux, `poll(2)` elsewhere;
//! see [`crate::sys`]). Fully parsed requests are dispatched to a small
//! **scoring pool** (the internal `pool` module) sized to the CPU
//! count, whose
//! threads only ever run compute. Total thread budget: `1 + cores`,
//! independent of the number of open connections — thousands of
//! mostly-idle keep-alive clients cost slab slots, not threads. (The
//! previous engine parked one blocking worker thread per keep-alive
//! connection, capping concurrent connections at the pool size.)
//!
//! ## Hot reload
//!
//! The model lives in a private `ModelSlot` behind an `RwLock`: request
//! handlers take a read lock just long enough to clone the
//! `Arc<LanguageIdentifier>` and the epoch, then score without any lock
//! held. `POST /admin/reload` loads the new bundle *before* taking the
//! write lock, so the lock is held only for the pointer swap — in-flight
//! requests finish on the model they started with and no request is ever
//! dropped. The epoch bump atomically invalidates the result cache (see
//! [`crate::cache`]).

use crate::cache::{normalize_url, CachedScores, ResultCache};
use crate::http::{Request, MAX_BODY_BYTES};
use crate::metrics::Metrics;
use crate::pool::ScoringPool;
use crate::reactor::Reactor;
use crate::sys::{WakePipe, Waker};
use serde::Value;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use urlid::LanguageIdentifier;
use urlid_classifiers::LanguageClassifierSet;
use urlid_features::ExtractScratch;
use urlid_lexicon::ALL_LANGUAGES;
use urlid_telemetry::{duration_micros, PromWriter, Stage};

/// Content type of every JSON response.
const CONTENT_TYPE_JSON: &str = "application/json";
/// Content type of the Prometheus text exposition (format 0.0.4).
const CONTENT_TYPE_PROM: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Server configuration (everything has serving-friendly defaults).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (tests, loadgen).
    pub addr: String,
    /// Scoring-pool threads; 0 means one per available core. These
    /// threads are pure compute — connections no longer pin threads, so
    /// there is nothing to over-provision.
    pub scoring_threads: usize,
    /// Number of cache shards (mutex stripes).
    pub cache_shards: usize,
    /// A connection with no bytes moving for this long is evicted by
    /// the reactor — mid-request (slowloris) and between requests
    /// alike. Connections whose request is in the scoring pool are
    /// exempt. An eviction costs a slab slot, never a thread, so this
    /// can be generous.
    pub idle_timeout: Duration,
    /// Maximum accepted `Content-Length`; larger declarations are
    /// answered with `413` before any body byte is buffered.
    pub max_body_bytes: usize,
    /// How long a graceful shutdown waits for in-flight requests to
    /// finish and flush before force-closing what remains.
    pub drain_timeout: Duration,
    /// Stage-span recording (per-stage histograms, the trace ring).
    /// Counters and the end-to-end latency histogram stay on even when
    /// this is off; turning it off exists for A/B overhead runs
    /// (`urlid serve --telemetry off`).
    pub telemetry: bool,
    /// Requests slower than this (end-to-end, microseconds) emit one
    /// rate-limited key=value line to stderr; `0` disables the slow
    /// log entirely.
    pub slow_request_micros: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            scoring_threads: 0,
            cache_shards: ResultCache::DEFAULT_SHARDS,
            idle_timeout: Duration::from_secs(5),
            max_body_bytes: MAX_BODY_BYTES,
            drain_timeout: Duration::from_secs(2),
            telemetry: true,
            slow_request_micros: 100_000,
        }
    }
}

/// Per-request trace context threaded through [`route`]: which trace
/// stripe to record into, the request id, and the stage durations the
/// handlers measured (the scoring-pool worker reads these back for the
/// slow-request log line).
pub(crate) struct RequestTrace {
    /// Request id assigned at parse completion.
    pub request_id: u64,
    /// Trace-ring stripe of the recording thread (`1 + worker_index`).
    pub stripe: usize,
    /// Result-cache probe duration in microseconds.
    pub cache_us: u64,
    /// Feature-extraction duration in microseconds (cache miss only).
    pub extract_us: u64,
    /// Scoring duration in microseconds (cache miss only).
    pub score_us: u64,
}

impl RequestTrace {
    pub(crate) fn new(request_id: u64, stripe: usize) -> Self {
        RequestTrace {
            request_id,
            stripe,
            cache_us: 0,
            extract_us: 0,
            score_us: 0,
        }
    }
}

/// The hot-swappable model: identifier + epoch + the path it came from.
struct ModelSlot {
    identifier: Arc<LanguageIdentifier>,
    epoch: u64,
    path: Option<PathBuf>,
}

/// Everything the request handlers share: the model slot, the result
/// cache and the metrics. Constructed once and passed to [`spawn`] in an
/// `Arc`; tests reach the cache and metrics through it.
pub struct ServerState {
    slot: RwLock<ModelSlot>,
    cache: ResultCache,
    metrics: Metrics,
    /// Serve the compiled plane's quantised `f32` weight lane instead of
    /// the exact `f64` default. Remembered here so `/admin/reload`
    /// re-applies the lane to every freshly loaded model.
    f32_weights: bool,
}

impl ServerState {
    /// Read the model slot, recovering from lock poisoning: the slot
    /// only ever holds fully swapped `Arc`s (the write section is three
    /// assignments), so a panic elsewhere must not cascade into every
    /// scoring worker that reads the model afterwards.
    fn read_slot(&self) -> std::sync::RwLockReadGuard<'_, ModelSlot> {
        self.slot
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// A serving state for a trained identifier. `model_path` is where
    /// `POST /admin/reload` reloads from when the request names no path
    /// (pass `None` for states built from in-memory models).
    pub fn new(
        identifier: LanguageIdentifier,
        model_path: Option<PathBuf>,
        cache_capacity: usize,
    ) -> Self {
        Self::with_shards(
            identifier,
            model_path,
            cache_capacity,
            ResultCache::DEFAULT_SHARDS,
        )
    }

    /// [`ServerState::new`] with an explicit shard count.
    pub fn with_shards(
        identifier: LanguageIdentifier,
        model_path: Option<PathBuf>,
        cache_capacity: usize,
        cache_shards: usize,
    ) -> Self {
        Self::with_weights(identifier, model_path, cache_capacity, cache_shards, false)
    }

    /// [`ServerState::with_shards`] plus a weight-lane choice: with
    /// `f32_weights` the identifier's compiled plane is re-compiled to
    /// the quantised `f32` lane (half the matrix bytes, documented score
    /// tolerance, identical accept/reject decisions in practice — see
    /// the README's compiled-plane section), and every model swapped in
    /// by `POST /admin/reload` gets the same treatment.
    pub fn with_weights(
        mut identifier: LanguageIdentifier,
        model_path: Option<PathBuf>,
        cache_capacity: usize,
        cache_shards: usize,
        f32_weights: bool,
    ) -> Self {
        if f32_weights {
            identifier.classifier_set_mut().compile_f32();
        }
        Self {
            slot: RwLock::new(ModelSlot {
                identifier: Arc::new(identifier),
                epoch: 0,
                path: model_path,
            }),
            cache: ResultCache::new(cache_capacity, cache_shards),
            metrics: Metrics::new(),
            f32_weights,
        }
    }

    /// The current model and its epoch (consistent snapshot).
    pub fn model(&self) -> (Arc<LanguageIdentifier>, u64) {
        let slot = self.read_slot();
        (Arc::clone(&slot.identifier), slot.epoch)
    }

    /// Model, epoch *and* source path under a single lock hold, so a
    /// concurrent reload can never produce a torn epoch/path pairing in
    /// `/healthz`, `/metrics` or reload responses.
    fn model_snapshot(&self) -> (Arc<LanguageIdentifier>, u64, Option<PathBuf>) {
        let slot = self.read_slot();
        (Arc::clone(&slot.identifier), slot.epoch, slot.path.clone())
    }

    /// The result cache (exposed for metrics and tests).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// The serving metrics (exposed for tests).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Swap in a model loaded from `path` (or from the slot's stored
    /// path when `None`). Returns the new epoch. The old model keeps
    /// serving until the swap; on any error it keeps serving, period.
    pub fn reload(&self, path: Option<PathBuf>) -> Result<u64, String> {
        let path = match path.or_else(|| self.read_slot().path.clone()) {
            Some(p) => p,
            None => {
                return Err(
                    "no model path to reload from (start with --model or pass {\"path\": ...})"
                        .into(),
                )
            }
        };
        // Load and build the identifier *outside* the write lock.
        let bundle = urlid::ModelBundle::load(&path)
            .map_err(|e| format!("cannot reload {}: {e}", path.display()))?;
        let mut identifier = bundle.into_identifier();
        if self.f32_weights {
            identifier.classifier_set_mut().compile_f32();
        }
        let identifier = Arc::new(identifier);
        let epoch = {
            let mut slot = self
                .slot
                .write()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            slot.identifier = identifier;
            slot.epoch += 1;
            slot.path = Some(path);
            slot.epoch
        };
        // The epoch bump already invalidates stale entries; clearing just
        // releases their memory promptly.
        self.cache.clear();
        self.metrics.reloads.fetch_add(1, Ordering::Relaxed);
        Ok(epoch)
    }

    /// Score one normalised URL, through the cache. Cache misses score
    /// through the calling worker's reusable [`ExtractScratch`], so the
    /// extract-and-score path allocates nothing in steady state — the
    /// stage spans recorded along the way keep that property (atomic
    /// histogram bumps plus a copy into a pre-allocated trace slot).
    fn scores_cached(
        &self,
        key: &str,
        scratch: &mut ExtractScratch,
        trace: &mut RequestTrace,
    ) -> (CachedScores, bool) {
        let (identifier, epoch) = self.model();
        let cache_started = Instant::now();
        let hit = self.cache.get(key, epoch);
        trace.cache_us = duration_micros(cache_started.elapsed());
        self.metrics
            .record_stage_end(trace.stripe, trace.request_id, Stage::Cache, trace.cache_us);
        if let Some(scores) = hit {
            return (scores, true);
        }
        // With telemetry off the plain entry point runs — the timed
        // variant executes the exact same float operations (it shares
        // the extraction/scoring helpers), the split just reads the
        // clock between them.
        let scores = if self.metrics.telemetry_enabled() {
            let (scores, split) = identifier
                .classifier_set()
                .score_all_with_split(key, scratch);
            trace.extract_us = split.extract_micros;
            trace.score_us = split.score_micros;
            self.metrics.record_stage_end(
                trace.stripe,
                trace.request_id,
                Stage::Extract,
                split.extract_micros,
            );
            self.metrics.record_stage_end(
                trace.stripe,
                trace.request_id,
                Stage::Score,
                split.score_micros,
            );
            scores
        } else {
            identifier.classifier_set().score_all_with(key, scratch)
        };
        self.cache.insert(key, epoch, scores);
        (scores, false)
    }

    /// Score a batch of normalised URLs: cache lookups first, then one
    /// parallel `score_batch` fan-out over the misses. The batch path
    /// records the cache probe as one cache-stage span and the whole
    /// fan-out as one score-stage span (extraction happens inside the
    /// per-core workers and is not split out here).
    fn scores_cached_batch(
        &self,
        keys: &[String],
        trace: &mut RequestTrace,
    ) -> Vec<(CachedScores, bool)> {
        let (identifier, epoch) = self.model();
        let cache_started = Instant::now();
        let mut out: Vec<Option<(CachedScores, bool)>> = keys
            .iter()
            .map(|k| self.cache.get(k, epoch).map(|s| (s, true)))
            .collect();
        let miss_indices: Vec<usize> = (0..keys.len()).filter(|&i| out[i].is_none()).collect();
        trace.cache_us = duration_micros(cache_started.elapsed());
        self.metrics
            .record_stage_end(trace.stripe, trace.request_id, Stage::Cache, trace.cache_us);
        if !miss_indices.is_empty() {
            let miss_urls: Vec<&str> = miss_indices.iter().map(|&i| keys[i].as_str()).collect();
            // The existing scoped-thread batch path: one extraction per
            // URL, fanned out over all cores.
            let score_started = Instant::now();
            let scored = identifier.classifier_set().score_batch(&miss_urls);
            trace.score_us = duration_micros(score_started.elapsed());
            self.metrics.record_stage_end(
                trace.stripe,
                trace.request_id,
                Stage::Score,
                trace.score_us,
            );
            for (&i, scores) in miss_indices.iter().zip(scored) {
                self.cache.insert(&keys[i], epoch, scores);
                out[i] = Some((scores, false));
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every index scored"))
            .collect()
    }
}

// ---------------------------------------------------------------------
// Response building
// ---------------------------------------------------------------------

/// Serialise a `{"error": ...}` body (shared with the connection state
/// machine, which answers protocol violations without a handler).
pub(crate) fn error_body(message: &str) -> String {
    let mut o = Value::object();
    o.insert("error", Value::Str(message.to_owned()));
    serde_json::to_string(&o).expect("error body serialises")
}

/// One URL's result object (shared by `/identify` and `/identify_batch`).
/// Decisions and the best language are derived from the scores alone
/// (sign convention), which is what makes score-only caching sufficient.
fn result_value(key: &str, scores: &CachedScores, cached: bool) -> Value {
    let mut score_map = Value::object();
    let mut accepted = Vec::new();
    for lang in ALL_LANGUAGES {
        let score = scores[lang.index()];
        score_map.insert(
            lang.iso_code(),
            match score {
                Some(s) => Value::Float(s),
                None => Value::Null,
            },
        );
        // The sign convention (decision == score > 0) is proptested for
        // every algorithm, so decisions are free given the scores.
        if score.is_some_and(|s| s > 0.0) {
            accepted.push(Value::Str(lang.iso_code().to_owned()));
        }
    }
    let best = LanguageClassifierSet::best_of(scores);
    let mut o = Value::object();
    o.insert("url", Value::Str(key.to_owned()));
    o.insert(
        "best",
        match best {
            Some(lang) => Value::Str(lang.iso_code().to_owned()),
            None => Value::Null,
        },
    );
    o.insert("accepted", Value::Array(accepted));
    o.insert("scores", score_map);
    o.insert("cached", Value::Bool(cached));
    o
}

fn model_value(identifier: &LanguageIdentifier, epoch: u64, path: Option<&PathBuf>) -> Value {
    let config = identifier.config();
    let mut o = Value::object();
    o.insert(
        "algorithm",
        Value::Str(config.algorithm.abbrev().to_owned()),
    );
    // Models loaded from a bundle are always compiled; the flag makes
    // the serving representation observable in /healthz and /metrics.
    o.insert(
        "compiled",
        Value::Bool(identifier.classifier_set().is_compiled()),
    );
    o.insert(
        "features",
        Value::Str(config.feature_set.short_label().to_owned()),
    );
    o.insert("epoch", Value::Uint(epoch));
    // Which weight lane the compiled plane serves: exact "f64" or the
    // opt-in quantised "f32" (`urlid serve --weights f32`).
    o.insert(
        "weights",
        Value::Str(identifier.classifier_set().weight_lane().to_owned()),
    );
    o.insert(
        "path",
        match path {
            Some(p) => Value::Str(p.display().to_string()),
            None => Value::Null,
        },
    );
    o
}

// ---------------------------------------------------------------------
// Request handlers
// ---------------------------------------------------------------------

fn parse_json(body: &str) -> Result<Value, String> {
    serde_json::from_str::<Value>(body).map_err(|e| format!("invalid JSON body: {e}"))
}

fn handle_identify(
    state: &ServerState,
    req: &Request,
    scratch: &mut ExtractScratch,
    trace: &mut RequestTrace,
) -> (u16, String) {
    let parsed = match parse_json(&req.body) {
        Ok(v) => v,
        Err(e) => return (400, error_body(&e)),
    };
    let Some(Value::Str(url)) = parsed.get("url") else {
        return (400, error_body("body must be {\"url\": \"...\"}"));
    };
    let key = normalize_url(url);
    if key.is_empty() {
        return (400, error_body("empty url"));
    }
    let (scores, cached) = state.scores_cached(&key, scratch, trace);
    let body =
        serde_json::to_string(&result_value(&key, &scores, cached)).expect("response serialises");
    state.metrics.identify.fetch_add(1, Ordering::Relaxed);
    (200, body)
}

fn handle_identify_batch(
    state: &ServerState,
    req: &Request,
    trace: &mut RequestTrace,
) -> (u16, String) {
    let parsed = match parse_json(&req.body) {
        Ok(v) => v,
        Err(e) => return (400, error_body(&e)),
    };
    let Some(Value::Array(raw_urls)) = parsed.get("urls") else {
        return (400, error_body("body must be {\"urls\": [\"...\", ...]}"));
    };
    let mut keys = Vec::with_capacity(raw_urls.len());
    for v in raw_urls {
        match v {
            Value::Str(url) => {
                let key = normalize_url(url);
                if key.is_empty() {
                    return (400, error_body("empty url in batch"));
                }
                keys.push(key);
            }
            _ => return (400, error_body("urls must all be strings")),
        }
    }
    let results = state.scores_cached_batch(&keys, trace);
    let mut hits = 0u64;
    let items: Vec<Value> = keys
        .iter()
        .zip(&results)
        .map(|(key, (scores, cached))| {
            hits += u64::from(*cached);
            result_value(key, scores, *cached)
        })
        .collect();
    let mut o = Value::object();
    o.insert("count", Value::Uint(items.len() as u64));
    o.insert("cache_hits", Value::Uint(hits));
    o.insert("results", Value::Array(items));
    let body = serde_json::to_string(&o).expect("response serialises");
    state.metrics.identify_batch.fetch_add(1, Ordering::Relaxed);
    state
        .metrics
        .batch_urls
        .fetch_add(keys.len() as u64, Ordering::Relaxed);
    (200, body)
}

fn handle_healthz(state: &ServerState) -> (u16, String) {
    state.metrics.healthz.fetch_add(1, Ordering::Relaxed);
    let (identifier, epoch, path) = state.model_snapshot();
    let mut o = Value::object();
    o.insert("status", Value::Str("ok".to_owned()));
    o.insert("uptime_secs", Value::Float(state.metrics.uptime_secs()));
    o.insert("model", model_value(&identifier, epoch, path.as_ref()));
    (200, serde_json::to_string(&o).expect("response serialises"))
}

/// Does this `Accept` header ask for the Prometheus text exposition?
/// JSON stays the default: only an explicit `text/plain` (what
/// Prometheus sends) or an OpenMetrics media type switches formats.
fn wants_prometheus(accept: Option<&str>) -> bool {
    let Some(accept) = accept else {
        return false;
    };
    let accept = accept.to_ascii_lowercase();
    accept.contains("text/plain") || accept.contains("application/openmetrics-text")
}

fn handle_metrics(state: &ServerState, req: &Request) -> (u16, &'static str, String) {
    state.metrics.metrics.fetch_add(1, Ordering::Relaxed);
    if wants_prometheus(req.accept.as_deref()) {
        return (200, CONTENT_TYPE_PROM, prometheus_text(state));
    }
    let (identifier, epoch, path) = state.model_snapshot();
    let mut cache = Value::object();
    cache.insert("hits", Value::Uint(state.cache.hits()));
    cache.insert("misses", Value::Uint(state.cache.misses()));
    cache.insert("hit_rate", Value::Float(state.cache.hit_rate()));
    cache.insert("entries", Value::Uint(state.cache.len() as u64));
    cache.insert("capacity", Value::Uint(state.cache.capacity() as u64));
    let mut model = model_value(&identifier, epoch, path.as_ref());
    model.insert(
        "reloads",
        Value::Uint(state.metrics.reloads.load(Ordering::Relaxed)),
    );
    let mut o = Value::object();
    o.insert("uptime_secs", Value::Float(state.metrics.uptime_secs()));
    o.insert("requests", state.metrics.requests_value());
    o.insert("connections", state.metrics.connections_value());
    o.insert("threads", state.metrics.threads_value());
    o.insert("cache", cache);
    o.insert("latency", state.metrics.latency_value());
    o.insert("stages", state.metrics.stages_value());
    o.insert("model", model);
    (
        200,
        CONTENT_TYPE_JSON,
        serde_json::to_string(&o).expect("response serialises"),
    )
}

/// Render every serving metric as Prometheus text exposition 0.0.4.
/// The body is rebuilt per scrape from the same atomics the JSON view
/// reads; `urlid_telemetry::prometheus::lint` accepts it (enforced by
/// a test in `tests/server_http.rs`).
pub fn prometheus_text(state: &ServerState) -> String {
    let m = &state.metrics;
    let (identifier, epoch, path) = state.model_snapshot();
    let load = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
    let mut w = PromWriter::new();

    w.gauge(
        "urlid_uptime_seconds",
        "Seconds since the server started.",
        m.uptime_secs(),
    );
    w.family(
        "urlid_requests_total",
        "counter",
        "Requests served, by endpoint.",
    );
    for (endpoint, counter) in [
        ("identify", &m.identify),
        ("identify_batch", &m.identify_batch),
        ("healthz", &m.healthz),
        ("metrics", &m.metrics),
    ] {
        w.sample(
            "urlid_requests_total",
            &[("endpoint", endpoint)],
            load(counter) as f64,
        );
    }
    w.counter(
        "urlid_batch_urls_total",
        "URLs scored through /identify_batch.",
        load(&m.batch_urls),
    );
    w.counter(
        "urlid_errors_total",
        "Requests answered with a 4xx/5xx status (protocol rejects included).",
        load(&m.errors),
    );
    w.counter(
        "urlid_reloads_total",
        "Successful model hot-reloads.",
        load(&m.reloads),
    );
    w.counter(
        "urlid_connections_accepted_total",
        "Connections accepted since start.",
        load(&m.connections_accepted),
    );
    w.counter(
        "urlid_connections_timed_out_total",
        "Connections evicted by the idle timeout.",
        load(&m.connections_timed_out),
    );
    let open = load(&m.connections_open);
    let busy = load(&m.connections_busy);
    w.gauge(
        "urlid_connections_open",
        "Connections currently registered in the reactor.",
        open as f64,
    );
    w.gauge(
        "urlid_connections_idle",
        "Open connections with no request in the scoring pool.",
        open.saturating_sub(busy) as f64,
    );
    let scoring = load(&m.scoring_threads);
    w.family("urlid_threads", "gauge", "Server threads, by role.");
    w.sample("urlid_threads", &[("role", "reactor")], 1.0);
    w.sample("urlid_threads", &[("role", "scoring")], scoring as f64);

    w.counter(
        "urlid_cache_hits_total",
        "Result-cache hits.",
        state.cache.hits(),
    );
    w.counter(
        "urlid_cache_misses_total",
        "Result-cache misses.",
        state.cache.misses(),
    );
    w.gauge(
        "urlid_cache_entries",
        "Result-cache entries currently stored.",
        state.cache.len() as f64,
    );
    w.gauge(
        "urlid_cache_capacity",
        "Result-cache capacity.",
        state.cache.capacity() as f64,
    );

    let config = identifier.config();
    w.family(
        "urlid_model_info",
        "gauge",
        "Model identity as labels; the value is always 1.",
    );
    let epoch_str = epoch.to_string();
    let path_str = path
        .as_ref()
        .map(|p| p.display().to_string())
        .unwrap_or_default();
    w.sample(
        "urlid_model_info",
        &[
            ("algorithm", config.algorithm.abbrev()),
            ("features", config.feature_set.short_label()),
            ("weights", identifier.classifier_set().weight_lane()),
            ("epoch", epoch_str.as_str()),
            ("path", path_str.as_str()),
        ],
        1.0,
    );

    w.family(
        "urlid_request_latency_seconds",
        "histogram",
        "End-to-end latency of /identify and /identify_batch (rejects included).",
    );
    w.histogram_series(
        "urlid_request_latency_seconds",
        &[],
        &m.latency.snapshot(),
        1e-6,
    );
    w.family(
        "urlid_stage_duration_seconds",
        "histogram",
        "Per-stage request pipeline durations.",
    );
    for stage in Stage::ALL {
        w.histogram_series(
            "urlid_stage_duration_seconds",
            &[("stage", stage.name())],
            &m.stage_histogram(stage).snapshot(),
            1e-6,
        );
    }
    w.finish()
}

/// `GET /admin/trace`: the last buffered stage spans, oldest first,
/// with request-id correlation — enough to reconstruct where any
/// recent request spent its time.
fn handle_trace(state: &ServerState) -> (u16, String) {
    let spans = state.metrics.trace_snapshot();
    let items: Vec<Value> = spans
        .iter()
        .map(|s| {
            let mut o = Value::object();
            o.insert("request_id", Value::Uint(s.request_id));
            o.insert("stage", Value::Str(s.stage.name().to_owned()));
            o.insert("start_us", Value::Uint(s.start_micros));
            o.insert("duration_us", Value::Uint(s.duration_micros));
            o
        })
        .collect();
    let mut o = Value::object();
    o.insert("count", Value::Uint(items.len() as u64));
    o.insert("telemetry", Value::Bool(state.metrics.telemetry_enabled()));
    o.insert("spans", Value::Array(items));
    (200, serde_json::to_string(&o).expect("response serialises"))
}

fn handle_reload(state: &ServerState, req: &Request) -> (u16, String) {
    let path = if req.body.trim().is_empty() {
        None
    } else {
        match parse_json(&req.body) {
            Ok(v) => match v.get("path") {
                Some(Value::Str(p)) => Some(PathBuf::from(p)),
                Some(_) => return (400, error_body("path must be a string")),
                None => None,
            },
            Err(e) => return (400, error_body(&e)),
        }
    };
    match state.reload(path) {
        Ok(_) => {
            let (identifier, epoch, path) = state.model_snapshot();
            let mut o = Value::object();
            o.insert("reloaded", Value::Bool(true));
            o.insert("model", model_value(&identifier, epoch, path.as_ref()));
            (200, serde_json::to_string(&o).expect("response serialises"))
        }
        Err(message) => (500, error_body(&message)),
    }
}

/// Route one request to its handler (runs on a scoring-pool thread,
/// which owns `scratch` — one reusable extraction buffer per worker —
/// and `trace` — the stage-span context for this request). Returns
/// status, content type, and body.
pub(crate) fn route(
    state: &ServerState,
    req: &Request,
    scratch: &mut ExtractScratch,
    trace: &mut RequestTrace,
) -> (u16, &'static str, String) {
    let (status, content_type, body) = match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/identify") => {
            let (status, body) = handle_identify(state, req, scratch, trace);
            (status, CONTENT_TYPE_JSON, body)
        }
        ("POST", "/identify_batch") => {
            let (status, body) = handle_identify_batch(state, req, trace);
            (status, CONTENT_TYPE_JSON, body)
        }
        ("GET", "/healthz") => {
            let (status, body) = handle_healthz(state);
            (status, CONTENT_TYPE_JSON, body)
        }
        ("GET", "/metrics") => handle_metrics(state, req),
        ("GET", "/admin/trace") => {
            let (status, body) = handle_trace(state);
            (status, CONTENT_TYPE_JSON, body)
        }
        ("POST", "/admin/reload") => {
            let (status, body) = handle_reload(state, req);
            (status, CONTENT_TYPE_JSON, body)
        }
        (
            _,
            "/identify" | "/identify_batch" | "/healthz" | "/metrics" | "/admin/trace"
            | "/admin/reload",
        ) => (405, CONTENT_TYPE_JSON, error_body("method not allowed")),
        _ => (404, CONTENT_TYPE_JSON, error_body("not found")),
    };
    if status >= 400 {
        state.metrics.errors.fetch_add(1, Ordering::Relaxed);
    }
    (status, content_type, body)
}

// ---------------------------------------------------------------------
// Engine spawn / shutdown
// ---------------------------------------------------------------------

/// A running server: its address, its shared state, and the handles
/// needed to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
    waker: Arc<Waker>,
    reactor: Option<JoinHandle<()>>,
    pool: ScoringPool,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared serving state.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Serve until the process exits (the CLI path).
    pub fn join(mut self) {
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        self.pool.join();
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests
    /// (bounded by the configured drain timeout), stop the pool, and
    /// return. The reactor is woken through the self-pipe — no
    /// throwaway connection involved.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.waker.wake();
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        // The reactor exiting dropped the job sender; the workers have
        // drained their queue and are on their way out.
        self.pool.join();
    }
}

/// Start the server: bind, spawn the reactor thread and the scoring
/// pool, and return immediately with a [`ServerHandle`].
pub fn spawn(config: &ServeConfig, state: Arc<ServerState>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let scoring_threads = if config.scoring_threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        config.scoring_threads
    };
    state
        .metrics()
        .scoring_threads
        .store(scoring_threads as u64, Ordering::Relaxed);
    state.metrics().set_telemetry_enabled(config.telemetry);
    // 250ms minimum gap between slow-log lines: a pathological burst
    // costs at most four stderr lines per second.
    state
        .metrics()
        .slow
        .configure(config.slow_request_micros, 250_000);

    let (wake_pipe, waker) = WakePipe::new()?;
    let waker = Arc::new(waker);
    let (completion_tx, completion_rx) = mpsc::channel();
    let pending = Arc::new(std::sync::atomic::AtomicI64::new(0));
    let (mut pool, job_tx) = ScoringPool::spawn(
        scoring_threads,
        Arc::clone(&state),
        completion_tx,
        Arc::clone(&pending),
        Arc::clone(&waker),
    )?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let reactor = Reactor::new(
        listener,
        wake_pipe,
        job_tx,
        completion_rx,
        pending,
        Arc::clone(&state),
        Arc::clone(&shutdown),
        config,
    )?;
    let reactor_thread = std::thread::Builder::new()
        .name("urlid-serve-reactor".to_owned())
        .spawn(move || reactor.run());
    let reactor_thread = match reactor_thread {
        Ok(handle) => handle,
        Err(e) => {
            // Reactor never started: release the workers before failing.
            pool.join();
            return Err(e);
        }
    };

    Ok(ServerHandle {
        addr,
        state,
        shutdown,
        waker,
        reactor: Some(reactor_thread),
        pool,
    })
}
