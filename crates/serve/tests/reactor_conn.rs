//! Connection-engine behaviors only a real socket can prove: slow
//! clients that must not hold threads, pipelining, idle eviction,
//! many-idle-connection multiplexing, oversized-body rejection before
//! allocation, graceful shutdown draining in-flight work, and the
//! multi-reactor guarantees (connection affinity, reload visibility
//! across cache shard sets, sibling survival of a reactor panic).

use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use urlid::prelude::*;
use urlid_serve::http;
use urlid_serve::server::{spawn, IoBackend, ServeConfig, ServerHandle, ServerState};
use urlid_serve::ResultCache;

fn trained_identifier() -> LanguageIdentifier {
    let mut generator = UrlGenerator::new(5);
    let odp = odp_dataset(&mut generator, CorpusScale::tiny());
    LanguageIdentifier::train_paper_best(&odp.train)
}

fn start_server(config: &ServeConfig) -> ServerHandle {
    let state = Arc::new(ServerState::new(trained_identifier(), None, 4096));
    spawn(config, state).expect("bind on 127.0.0.1:0")
}

/// Run a test body once per I/O engine: the epoll leg always, the
/// uring leg when this kernel/sandbox allows it (skipped with a logged
/// reason otherwise, so the suite stays green everywhere). Every
/// behaviour in this file must hold identically on both engines —
/// that equivalence is what lets `--io auto` pick either.
fn for_each_io(test: impl Fn(IoBackend)) {
    test(IoBackend::Epoll);
    match urlid_serve::sys::uring::probe() {
        Ok(()) => test(IoBackend::Uring),
        Err(reason) => eprintln!("skipping the --io uring leg: {reason}"),
    }
}

/// A default config pinned to one I/O engine.
fn io_config(io: IoBackend) -> ServeConfig {
    ServeConfig {
        io,
        ..ServeConfig::default()
    }
}

fn identify(addr: SocketAddr, url: &str) -> (u16, String) {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let body = format!("{{\"url\": \"{url}\"}}");
    http::write_request(&mut writer, "POST", "/identify", Some(&body)).expect("write");
    http::read_response(&mut reader).expect("read")
}

fn request_json(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, Value) {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    http::write_request(&mut writer, method, path, body).expect("write");
    let (status, body) = http::read_response(&mut reader).expect("read");
    (status, serde_json::from_str(&body).expect("JSON response"))
}

fn uint_of(value: &Value, key: &str) -> u64 {
    match value.get(key) {
        Some(Value::Uint(n)) => *n,
        Some(Value::Int(n)) if *n >= 0 => *n as u64,
        other => panic!("expected unsigned {key}, got {other:?}"),
    }
}

/// A slowloris client delivers its request one byte at a time with
/// pauses; the reactor buffers it in the connection's parser (a slab
/// slot, not a thread) and answers normally once the request completes
/// — all while other clients keep being served.
#[test]
fn slowloris_byte_at_a_time_request_is_served_without_holding_a_thread() {
    for_each_io(slowloris_byte_at_a_time_request_is_served_on);
}

fn slowloris_byte_at_a_time_request_is_served_on(io: IoBackend) {
    let server = start_server(&io_config(io));
    let addr = server.addr();

    let slow = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let body = "{\"url\": \"http://www.wetterbericht.de/langsam\"}";
        let request = format!(
            "POST /identify HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        for chunk in request.as_bytes().chunks(7) {
            stream.write_all(chunk).expect("drip");
            stream.flush().ok();
            std::thread::sleep(Duration::from_millis(3));
        }
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        http::read_response(&mut reader).expect("slow client gets a response")
    });

    // While the slow client drips, fast clients are not blocked — with
    // the old thread-per-connection engine and a single-thread pool,
    // this is exactly the case that starved.
    for i in 0..10 {
        let (status, _) = identify(addr, &format!("http://www.seite{i}.de/wetter"));
        assert_eq!(status, 200, "fast request {i} during slowloris");
    }

    let (status, body) = slow.join().expect("slow client");
    assert_eq!(status, 200);
    assert!(body.contains("\"scores\""));
    server.shutdown();
}

/// The body arriving in a separate packet from the head (and itself
/// split) parses into one request.
#[test]
fn split_content_length_body_is_reassembled() {
    for_each_io(split_content_length_body_is_reassembled_on);
}

fn split_content_length_body_is_reassembled_on(io: IoBackend) {
    let server = start_server(&io_config(io));
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let body = "{\"url\": \"http://www.beispiel.de/geteilt\"}";
    let head = format!(
        "POST /identify HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("head");
    stream.flush().ok();
    std::thread::sleep(Duration::from_millis(20));
    let (first, second) = body.as_bytes().split_at(body.len() / 2);
    stream.write_all(first).expect("first half");
    stream.flush().ok();
    std::thread::sleep(Duration::from_millis(20));
    stream.write_all(second).expect("second half");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let (status, response) = http::read_response(&mut reader).expect("response");
    assert_eq!(status, 200);
    assert!(response.contains("\"best\""));
    server.shutdown();
}

/// Three pipelined requests written back-to-back in a single packet
/// come back as three ordered responses on the same connection.
#[test]
fn pipelined_requests_on_one_connection_answer_in_order() {
    for_each_io(pipelined_requests_answer_in_order_on);
}

fn pipelined_requests_answer_in_order_on(io: IoBackend) {
    let server = start_server(&io_config(io));
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut wire = String::new();
    let urls = [
        "http://www.erste-seite.de/",
        "http://www.deuxieme-page.fr/",
        "http://www.tercera-pagina.es/",
    ];
    for url in &urls {
        let body = format!("{{\"url\": \"{url}\"}}");
        wire.push_str(&format!(
            "POST /identify HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ));
    }
    stream.write_all(wire.as_bytes()).expect("pipeline");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    for url in &urls {
        let (status, body) = http::read_response(&mut reader).expect("response");
        assert_eq!(status, 200);
        let parsed: Value = serde_json::from_str(&body).expect("JSON");
        // Responses come back in request order: each carries its URL
        // (normalised, so compare the registrable part).
        match parsed.get("url") {
            Some(Value::Str(u)) => assert!(
                url.contains(u.trim_start_matches("http://").trim_end_matches('/')),
                "expected {url}, got {u}"
            ),
            other => panic!("no url in response: {other:?}"),
        }
    }
    server.shutdown();
}

/// A large pipelining burst — far more requests than one vectored write
/// can carry — still answers every request, in order, on one
/// connection. The client deliberately delays its reads so responses
/// pile up in the connection's segment queue and drain through the
/// `writev` batching path.
#[test]
fn large_pipelined_burst_drains_through_vectored_writes() {
    for_each_io(large_pipelined_burst_drains_on);
}

fn large_pipelined_burst_drains_on(io: IoBackend) {
    let server = start_server(&io_config(io));
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let count = 64;
    let mut wire = String::new();
    for i in 0..count {
        let body = format!("{{\"url\": \"http://www.seite-{i}.de/wetter\"}}");
        wire.push_str(&format!(
            "POST /identify HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ));
    }
    stream.write_all(wire.as_bytes()).expect("burst");
    // Let responses queue up behind the kernel's socket buffer before
    // reading anything back.
    std::thread::sleep(Duration::from_millis(100));
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    for i in 0..count {
        let (status, body) = http::read_response(&mut reader).expect("response");
        assert_eq!(status, 200, "request {i}");
        let parsed: Value = serde_json::from_str(&body).expect("JSON");
        match parsed.get("url") {
            Some(Value::Str(u)) => {
                assert!(u.contains(&format!("seite-{i}.")), "request {i}: got {u}")
            }
            other => panic!("no url in response {i}: {other:?}"),
        }
    }
    server.shutdown();
}

/// A connection idle past the timeout is evicted by the reactor (and
/// counted); mid-header slowloris drips that stall count the same way.
#[test]
fn idle_connections_are_evicted_after_the_timeout() {
    for_each_io(idle_connections_are_evicted_on);
}

fn idle_connections_are_evicted_on(io: IoBackend) {
    let config = ServeConfig {
        idle_timeout: Duration::from_millis(200),
        io,
        ..ServeConfig::default()
    };
    let server = start_server(&config);

    // One totally silent connection, one stalled mid-headers.
    let silent = TcpStream::connect(server.addr()).expect("connect");
    let mut stalled = TcpStream::connect(server.addr()).expect("connect");
    stalled
        .write_all(b"POST /identify HTTP/1.1\r\nContent-")
        .expect("partial");

    std::thread::sleep(Duration::from_millis(700));

    for (name, stream) in [("silent", &silent), ("stalled", &stalled)] {
        let mut reader = stream.try_clone().expect("clone");
        reader
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        let mut buf = [0u8; 64];
        match reader.read(&mut buf) {
            Ok(0) => {} // clean EOF: evicted
            Ok(n) => panic!("{name}: expected eviction, read {n} bytes"),
            Err(e) => assert!(
                matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
                ),
                "{name}: unexpected error {e:?}"
            ),
        }
    }
    let timed_out = server.state().metrics().connections_timed_out_total();
    assert!(timed_out >= 2, "timed_out gauge saw {timed_out}");
    server.shutdown();
}

/// 256 idle keep-alive connections cost slab slots, not threads:
/// requests on other connections keep completing, the connection
/// gauges see the population, and every idle connection still serves
/// afterwards.
#[test]
fn hundreds_of_idle_connections_do_not_block_active_traffic() {
    for_each_io(hundreds_of_idle_connections_do_not_block_on);
}

fn hundreds_of_idle_connections_do_not_block_on(io: IoBackend) {
    let server = start_server(&io_config(io));
    let addr = server.addr();

    // Open 256 keep-alive connections, prove each one once.
    let mut idle = Vec::new();
    for i in 0..256 {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let body = format!("{{\"url\": \"http://www.seite{}.de/\"}}", i % 13);
        http::write_request(&mut writer, "POST", "/identify", Some(&body)).expect("write");
        let (status, _) = http::read_response(&mut reader).expect("read");
        assert_eq!(status, 200, "idle open {i}");
        idle.push((writer, reader));
    }

    // Active traffic on fresh connections completes while all 256 sit
    // idle — with the old engine's pool this would deadlock (every
    // worker pinned to an idle keep-alive connection).
    for i in 0..25 {
        let (status, _) = identify(addr, &format!("http://www.aktiv{i}.de/wetter"));
        assert_eq!(status, 200, "active request {i}");
    }

    // The gauges see the idle population.
    let open = server.state().metrics().connections_open_total();
    assert!(open >= 256, "open gauge saw {open}");

    // Every idle connection still serves.
    for (i, (writer, reader)) in idle.iter_mut().enumerate() {
        let body = format!("{{\"url\": \"http://www.wieder{}.de/\"}}", i % 7);
        http::write_request(writer, "POST", "/identify", Some(&body)).expect("write");
        let (status, _) = http::read_response(reader).expect("read");
        assert_eq!(status, 200, "idle sweep {i}");
    }
    server.shutdown();
}

/// An oversized `Content-Length` declaration is refused with `413`
/// before any body is accepted — the client has only sent headers.
#[test]
fn oversized_content_length_is_rejected_before_the_body_is_sent() {
    for_each_io(oversized_content_length_is_rejected_on);
}

fn oversized_content_length_is_rejected_on(io: IoBackend) {
    let config = ServeConfig {
        max_body_bytes: 1024,
        io,
        ..ServeConfig::default()
    };
    let server = start_server(&config);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    // Declare 1 GiB; send nothing after the head.
    stream
        .write_all(b"POST /identify HTTP/1.1\r\nContent-Length: 1073741824\r\n\r\n")
        .expect("head");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let (status, body) = http::read_response(&mut reader).expect("response");
    assert_eq!(status, 413);
    assert!(body.contains("error"));
    // The connection is closed afterwards (the stream cannot be
    // resynchronised past an unsent body).
    let mut buf = [0u8; 16];
    let mut tail = stream.try_clone().expect("clone");
    tail.set_read_timeout(Some(Duration::from_secs(2))).ok();
    assert_eq!(tail.read(&mut buf).unwrap_or(0), 0, "connection closes");
    server.shutdown();
}

/// A client that sends its request and immediately half-closes the
/// write side (send-then-`shutdown(WR)`, a common one-shot pattern)
/// still gets its response — and the EOF-readable socket must not
/// wedge the reactor while the request sits in the scoring pool.
#[test]
fn half_closed_client_still_receives_its_response() {
    for_each_io(half_closed_client_still_receives_on);
}

fn half_closed_client_still_receives_on(io: IoBackend) {
    let server = start_server(&io_config(io));
    let stream = TcpStream::connect(server.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    http::write_request(
        &mut writer,
        "POST",
        "/identify",
        Some("{\"url\": \"http://www.halbgeschlossen.de/\"}"),
    )
    .expect("write");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let (status, body) = http::read_response(&mut reader).expect("response after half-close");
    assert_eq!(status, 200);
    assert!(body.contains("\"scores\""));
    // Other clients are unaffected while (and after) the half-closed
    // connection winds down.
    let (status, _) = identify(server.addr(), "http://www.andere.de/");
    assert_eq!(status, 200);
    server.shutdown();
}

/// A raw protocol violation gets a JSON `400` and the connection is
/// dropped — never a panic, never a wedged slot.
#[test]
fn malformed_request_line_gets_400_and_close() {
    for_each_io(malformed_request_line_gets_400_on);
}

fn malformed_request_line_gets_400_on(io: IoBackend) {
    let server = start_server(&io_config(io));
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.write_all(b"BANANA\r\n\r\n").expect("garbage");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    assert!(
        status_line.starts_with("HTTP/1.1 400"),
        "got {status_line:?}"
    );
    // Server is unharmed.
    let (status, _) = identify(server.addr(), "http://www.gesund.de/");
    assert_eq!(status, 200);
    server.shutdown();
}

/// Graceful shutdown: a request already in the scoring pool finishes
/// and flushes before the server comes down; idle connections are
/// closed; the listener stops accepting.
#[test]
fn shutdown_drains_in_flight_requests_and_closes_idle_connections() {
    for_each_io(shutdown_drains_in_flight_requests_on);
}

fn shutdown_drains_in_flight_requests_on(io: IoBackend) {
    let server = start_server(&io_config(io));
    let addr = server.addr();

    // An idle bystander connection (proven once).
    let (status, _) = {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        http::write_request(
            &mut writer,
            "POST",
            "/identify",
            Some("{\"url\": \"http://www.zuschauer.de/\"}"),
        )
        .expect("write");
        let response = http::read_response(&mut reader).expect("read");
        // Keep the raw stream alive past shutdown to observe the close.
        let mut buf = [0u8; 16];
        let mut observer = stream.try_clone().expect("clone");
        observer.set_read_timeout(Some(Duration::from_secs(5))).ok();
        std::thread::spawn(move || {
            // EOF (or reset) once the drain closes idle connections.
            let _ = observer.read(&mut buf);
        });
        response
    };
    assert_eq!(status, 200);

    // A long-running batch request: hundreds of unique URLs keep the
    // scoring pool busy while shutdown begins.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let urls: Vec<String> = (0..1500)
        .map(|i| format!("\"http://www.lange-liste-{i}.de/seite/{i}\""))
        .collect();
    let body = format!("{{\"urls\": [{}]}}", urls.join(", "));
    http::write_request(&mut writer, "POST", "/identify_batch", Some(&body)).expect("write");

    // Give the reactor a moment to parse and dispatch, then shut down
    // while the batch is (very likely) still scoring.
    std::thread::sleep(Duration::from_millis(30));
    let shutdown_thread = std::thread::spawn(move || server.shutdown());

    let (status, response) = http::read_response(&mut reader).expect("in-flight response");
    assert_eq!(status, 200, "in-flight batch failed during shutdown");
    let parsed: Value = serde_json::from_str(&response).expect("JSON");
    match parsed.get("count") {
        Some(Value::Uint(n)) => assert_eq!(*n, 1500),
        Some(Value::Int(n)) => assert_eq!(*n, 1500),
        other => panic!("bad count {other:?}"),
    }
    shutdown_thread.join().expect("shutdown");

    // The listener is gone: new connections are refused (or accepted
    // by the OS backlog and immediately dead — never served).
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(stream) => {
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            let served = http::write_request(
                &mut writer,
                "POST",
                "/identify",
                Some("{\"url\": \"http://www.zu-spaet.de/\"}"),
            )
            .and_then(|()| http::read_response(&mut reader));
            assert!(served.is_err(), "server answered after shutdown");
        }
    }
}

// ---------------------------------------------------------------------
// Multi-reactor guarantees
// ---------------------------------------------------------------------

/// Connections never migrate between reactors: every response on one
/// keep-alive connection carries the same `X-Urlid-Reactor` tag, and
/// the per-reactor accept counters account for every connection the
/// totals saw.
#[test]
fn connections_stay_pinned_to_their_accepting_reactor() {
    for_each_io(connections_stay_pinned_on);
}

fn connections_stay_pinned_on(io: IoBackend) {
    let config = ServeConfig {
        reactors: 2,
        io,
        ..ServeConfig::default()
    };
    let server = start_server(&config);
    let addr = server.addr();

    for c in 0..12 {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let mut home: Option<u64> = None;
        for i in 0..10 {
            let body = format!("{{\"url\": \"http://www.seite{}.de/pfad/{c}\"}}", i % 5);
            http::write_request(&mut writer, "POST", "/identify", Some(&body)).expect("write");
            let (status, reactor, _) =
                http::read_response_tagged(&mut reader).expect("tagged response");
            assert_eq!(status, 200, "conn {c} request {i}");
            let reactor = reactor.expect("X-Urlid-Reactor header present");
            assert!(reactor < 2, "conn {c}: reactor tag {reactor} out of range");
            match home {
                None => home = Some(reactor),
                Some(first) => assert_eq!(
                    reactor, first,
                    "conn {c} migrated from reactor {first} to {reactor} at request {i}"
                ),
            }
        }
    }

    // The per-reactor accept counters cover every accepted connection.
    let (status, metrics) = request_json(addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    let connections = metrics.get("connections").expect("connections section");
    let Some(Value::Array(per_reactor)) = connections.get("per_reactor") else {
        panic!("connections.per_reactor must be an array");
    };
    assert_eq!(per_reactor.len(), 2);
    let summed: u64 = per_reactor.iter().map(|r| uint_of(r, "accepted")).sum();
    assert_eq!(summed, uint_of(connections, "accepted"));
    server.shutdown();
}

fn train_and_save(algorithm: Algorithm, dir: &std::path::Path) -> std::path::PathBuf {
    let mut generator = UrlGenerator::new(17);
    let train = odp_dataset(&mut generator, CorpusScale::tiny()).train;
    let config = TrainingConfig::new(FeatureSetKind::Words, algorithm).with_maxent_iterations(8);
    let bundle = ModelBundle::train(&train, &config).expect("trainable config");
    let path = dir.join(format!("reactor-{algorithm:?}.json"));
    bundle.save_json(&path).expect("save bundle");
    path
}

/// `/admin/reload` under concurrent hammering across two reactors with
/// two cache shard sets serves zero stale-epoch hits: every in-flight
/// request succeeds, and after the final swap every URL scores exactly
/// like a fresh server holding the final model — a single surviving
/// old-epoch entry in either shard set would show up as a score
/// mismatch (NB and RE score scales differ by construction).
#[test]
fn reload_invalidates_every_cache_shard_set_across_reactors() {
    for_each_io(reload_invalidates_every_cache_shard_set_on);
}

fn reload_invalidates_every_cache_shard_set_on(io: IoBackend) {
    let dir = std::env::temp_dir().join("urlid-reactor-reload-test");
    std::fs::create_dir_all(&dir).unwrap();
    let nb_path = train_and_save(Algorithm::NaiveBayes, &dir);
    let re_path = train_and_save(Algorithm::RelativeEntropy, &dir);

    let bundle = ModelBundle::load_json(&nb_path).unwrap();
    let state = Arc::new(ServerState::with_topology(
        bundle.into_identifier(),
        Some(nb_path.clone()),
        4096,
        ResultCache::DEFAULT_SHARDS,
        2,
        false,
    ));
    let config = ServeConfig {
        reactors: 2,
        io,
        ..ServeConfig::default()
    };
    let server = spawn(&config, state).expect("bind");
    let addr = server.addr();

    const HAMMERS: usize = 4;
    const REQUESTS_PER_HAMMER: usize = 120;
    const UNIQUE_URLS: usize = 23;
    std::thread::scope(|scope| {
        let hammers: Vec<_> = (0..HAMMERS)
            .map(|h| {
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let mut writer = stream.try_clone().expect("clone");
                    let mut reader = BufReader::new(stream);
                    for i in 0..REQUESTS_PER_HAMMER {
                        let body = format!(
                            "{{\"url\": \"http://www.seite{}.de/wetter\"}}",
                            i % UNIQUE_URLS
                        );
                        http::write_request(&mut writer, "POST", "/identify", Some(&body))
                            .expect("write");
                        let (status, _) = http::read_response(&mut reader).expect("read");
                        assert_eq!(status, 200, "hammer {h} request {i} failed during reload");
                    }
                })
            })
            .collect();

        for (round, path) in [&re_path, &nb_path, &re_path].iter().enumerate() {
            std::thread::sleep(Duration::from_millis(20));
            let body = format!("{{\"path\": \"{}\"}}", path.display());
            let (status, response) = request_json(addr, "POST", "/admin/reload", Some(&body));
            assert_eq!(status, 200, "reload {round}");
            assert_eq!(response.get("reloaded"), Some(&Value::Bool(true)));
        }

        for hammer in hammers {
            hammer.join().expect("hammer");
        }
    });

    // Reference: a fresh server holding only the final (RE) model.
    let reference_state = Arc::new(ServerState::new(
        ModelBundle::load_json(&re_path).unwrap().into_identifier(),
        None,
        4096,
    ));
    let reference = spawn(&io_config(io), reference_state).expect("bind reference");
    for i in 0..UNIQUE_URLS {
        let body = format!("{{\"url\": \"http://www.seite{i}.de/wetter\"}}");
        let (status, swapped) = request_json(addr, "POST", "/identify", Some(&body));
        assert_eq!(status, 200);
        let (status, fresh) = request_json(reference.addr(), "POST", "/identify", Some(&body));
        assert_eq!(status, 200);
        assert_eq!(
            swapped.get("scores"),
            fresh.get("scores"),
            "url {i}: stale-epoch scores survived the reload in some shard set"
        );
    }
    reference.shutdown();
    server.shutdown();
}

/// 1024 idle keep-alive connections split across two reactors are all
/// evicted on idle-timeout — every reactor runs its own eviction sweep
/// over its own slab.
#[test]
fn thousand_idle_keepalives_across_reactors_evict_on_timeout() {
    for_each_io(thousand_idle_keepalives_evict_on);
}

fn thousand_idle_keepalives_evict_on(io: IoBackend) {
    let config = ServeConfig {
        reactors: 2,
        idle_timeout: Duration::from_millis(300),
        io,
        ..ServeConfig::default()
    };
    let server = start_server(&config);
    let addr = server.addr();

    // Open 1024 keep-alive connections; prove every 16th one serves so
    // the population is genuinely established, not just SYN-accepted.
    let mut idle = Vec::new();
    for i in 0..1024 {
        let stream = TcpStream::connect(addr).expect("connect");
        if i % 16 == 0 {
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let body = format!("{{\"url\": \"http://www.seite{}.de/\"}}", i % 13);
            http::write_request(&mut writer, "POST", "/identify", Some(&body)).expect("write");
            let (status, _) = http::read_response(&mut reader).expect("read");
            assert_eq!(status, 200, "idle open {i}");
        }
        idle.push(stream);
    }

    std::thread::sleep(Duration::from_millis(1500));
    let timed_out = server.state().metrics().connections_timed_out_total();
    assert!(timed_out >= 1024, "timed_out total saw {timed_out}/1024");
    let open = server.state().metrics().connections_open_total();
    assert_eq!(open, 0, "open gauge still shows {open} after eviction");
    drop(idle);
    server.shutdown();
}

/// A panicking reactor must not strand its siblings: the panic is
/// caught at the thread boundary, the whole server drains, `join`
/// reports exactly one failed reactor, and the `reactors_failed`
/// gauge agrees.
#[test]
fn reactor_panic_is_contained_and_drains_the_siblings() {
    for_each_io(reactor_panic_is_contained_on);
}

fn reactor_panic_is_contained_on(io: IoBackend) {
    let config = ServeConfig {
        reactors: 2,
        fail_after_accepts: Some(0),
        drain_timeout: Duration::from_millis(200),
        io,
        ..ServeConfig::default()
    };
    let server = start_server(&config);
    let addr = server.addr();
    let state = Arc::clone(server.state());

    // The first accept on whichever reactor the kernel picks trips the
    // injected panic; the connection dies without a response.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let served = http::write_request(
        &mut writer,
        "POST",
        "/identify",
        Some("{\"url\": \"http://www.absturz.de/\"}"),
    )
    .and_then(|()| http::read_response(&mut reader));
    assert!(served.is_err(), "request served by a panicking reactor");

    // join() must come back (the sibling drains and exits) and report
    // the single failed reactor; the gauge saw it too.
    let failed = server.join();
    assert_eq!(failed, 1, "exactly one reactor died");
    assert_eq!(
        state
            .metrics()
            .reactors_failed
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
}
