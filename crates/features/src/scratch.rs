//! Reusable per-thread scratch buffers for allocation-free extraction.
//!
//! The classification hot path (a crawler filtering millions of frontier
//! URLs) extracts features from every URL. The naive path allocates one
//! `String` per token (or per n-gram) per URL; with a scratch buffer the
//! tokenizer lowercases into a single reusable buffer and the vocabulary
//! hits are collected into a reusable index buffer, so tokenisation does
//! **zero per-URL `String` allocation**. Only the resulting
//! [`crate::SparseVector`] is allocated (it is the returned value).
//!
//! One `ExtractScratch` per thread is enough; the batch classification
//! API in `urlid-classifiers` creates one per worker thread.

/// Reusable buffers threaded through [`crate::FeatureExtractor::transform_with`].
#[derive(Debug, Default)]
pub struct ExtractScratch {
    /// Lowercased-token buffer (reused across tokens and URLs).
    pub token: String,
    /// Padded-token buffer for n-gram windows.
    pub padded: String,
    /// Vocabulary-index hits of the current URL.
    pub indices: Vec<u32>,
    /// Reusable output vector for compiled extraction
    /// ([`crate::CompiledTransform::extract_into`]): with it, a warm
    /// word/trigram extraction allocates nothing at all.
    pub vector: crate::SparseVector,
    /// Rank-order scoring scratch (the rank-sorted view of a vector).
    pub ranked: Vec<(u32, f64)>,
    /// Byte scratch for per-token character encodings (the fused
    /// Markov pass).
    pub bytes: Vec<u8>,
}

impl ExtractScratch {
    /// A fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_start_empty_and_are_reusable() {
        let mut s = ExtractScratch::new();
        assert!(s.token.is_empty() && s.padded.is_empty() && s.indices.is_empty());
        s.token.push_str("abc");
        s.indices.push(3);
        s.indices.clear();
        assert!(s.indices.is_empty());
        assert!(s.indices.capacity() >= 1, "capacity is retained");
    }
}
