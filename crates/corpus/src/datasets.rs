//! Data-set builders mirroring Table 1 of the paper.
//!
//! | Data set | Language | Training size | Test size |
//! |----------|----------|---------------|-----------|
//! | ODP      | each     | ≈145,000      | ≈4,900    |
//! | SER      | each     | ≈99,700       | ≈1,000    |
//! | Web crawl| En/Ge/Fr/Sp/It | 0       | 1082/81/57/19/21 |
//!
//! The builders accept a [`CorpusScale`] so that laptop-scale experiments
//! (the default for the benches) and full paper-scale runs use the same
//! code path. The web-crawl test set is never scaled below its (already
//! tiny) paper size unless an explicit factor < 1 is requested.

use crate::content::ContentGenerator;
use crate::generator::UrlGenerator;
use crate::profiles::DatasetProfile;
use serde::{Deserialize, Serialize};
use urlid_features::{Dataset, LabeledUrl, TrainTestSplit};
use urlid_lexicon::ALL_LANGUAGES;

/// Paper-scale ODP training size per language.
pub const ODP_TRAIN_PER_LANGUAGE: usize = 145_000;
/// Paper-scale ODP test size per language.
pub const ODP_TEST_PER_LANGUAGE: usize = 4_900;
/// Paper-scale SER training size per language.
pub const SER_TRAIN_PER_LANGUAGE: usize = 99_700;
/// Paper-scale SER test size per language.
pub const SER_TEST_PER_LANGUAGE: usize = 1_000;
/// Paper web-crawl test sizes per language (En, Ge, Fr, Sp, It).
pub const WEB_CRAWL_SIZES: [usize; 5] = [1_082, 81, 57, 19, 21];

/// A scale factor applied to the paper's data-set sizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorpusScale(pub f64);

impl CorpusScale {
    /// The paper's full sizes (≈1.2 M training URLs).
    pub fn paper() -> Self {
        Self(1.0)
    }

    /// A laptop-scale default (≈2 % of the paper's sizes — roughly 3,000
    /// training URLs per language per set), small enough for seconds-long
    /// experiments while keeping every distributional property.
    pub fn small() -> Self {
        Self(0.02)
    }

    /// A very small scale for unit tests.
    pub fn tiny() -> Self {
        Self(0.004)
    }

    /// Apply the scale to a paper-size count (at least 5 URLs survive).
    pub fn apply(&self, paper_size: usize) -> usize {
        ((paper_size as f64 * self.0).round() as usize).max(5)
    }
}

impl Default for CorpusScale {
    fn default() -> Self {
        Self::small()
    }
}

/// Generate the ODP data set (training + test) at the given scale.
pub fn odp_dataset(generator: &mut UrlGenerator, scale: CorpusScale) -> TrainTestSplit {
    let profile = DatasetProfile::odp();
    build_split(
        generator,
        &profile,
        "odp",
        scale.apply(ODP_TRAIN_PER_LANGUAGE),
        scale.apply(ODP_TEST_PER_LANGUAGE),
    )
}

/// Generate the search-engine-results data set (training + test).
pub fn ser_dataset(generator: &mut UrlGenerator, scale: CorpusScale) -> TrainTestSplit {
    let profile = DatasetProfile::ser();
    build_split(
        generator,
        &profile,
        "ser",
        scale.apply(SER_TRAIN_PER_LANGUAGE),
        scale.apply(SER_TEST_PER_LANGUAGE),
    )
}

/// Generate the hand-labelled web-crawl test set (test only, strongly
/// English-skewed: 1082/81/57/19/21 at paper scale).
pub fn web_crawl_dataset(generator: &mut UrlGenerator, scale: CorpusScale) -> Dataset {
    let profile = DatasetProfile::web_crawl();
    let mut dataset = Dataset::new("web-crawl");
    for lang in ALL_LANGUAGES {
        let n = if scale.0 >= 1.0 {
            WEB_CRAWL_SIZES[lang.index()]
        } else {
            // Keep the skew but never drop a language entirely.
            ((WEB_CRAWL_SIZES[lang.index()] as f64 * scale.0.max(0.2)).round() as usize).max(4)
        };
        for url in generator.generate_many(lang, &profile, n) {
            dataset.urls.push(LabeledUrl::new(url, lang));
        }
    }
    dataset
}

fn build_split(
    generator: &mut UrlGenerator,
    profile: &DatasetProfile,
    name: &str,
    train_per_lang: usize,
    test_per_lang: usize,
) -> TrainTestSplit {
    let mut train = Dataset::new(format!("{name}-train"));
    let mut test = Dataset::new(format!("{name}-test"));
    for lang in ALL_LANGUAGES {
        for url in generator.generate_many(lang, profile, train_per_lang) {
            train.urls.push(LabeledUrl::new(url, lang));
        }
        for url in generator.generate_many(lang, profile, test_per_lang) {
            test.urls.push(LabeledUrl::new(url, lang));
        }
    }
    TrainTestSplit { train, test }
}

/// All three data sets generated from one shared generator (so that domain
/// pools — and hence domain memorisation across sets — behave like on the
/// real web).
#[derive(Debug, Clone)]
pub struct PaperCorpus {
    /// The ODP training/test split.
    pub odp: TrainTestSplit,
    /// The search-engine-results training/test split.
    pub ser: TrainTestSplit,
    /// The web-crawl test set.
    pub web_crawl: Dataset,
}

impl PaperCorpus {
    /// Generate the full corpus from a seed at the given scale.
    pub fn generate(seed: u64, scale: CorpusScale) -> Self {
        let mut generator = UrlGenerator::new(seed);
        let odp = odp_dataset(&mut generator, scale);
        let ser = ser_dataset(&mut generator, scale);
        let web_crawl = web_crawl_dataset(&mut generator, scale);
        Self {
            odp,
            ser,
            web_crawl,
        }
    }

    /// The combined training set (ODP train + SER train), which is what
    /// the paper trains its classifiers on (≈245k positive URLs per
    /// language at full scale).
    pub fn combined_training(&self) -> Dataset {
        let mut combined = Dataset::new("odp+ser-train");
        combined.urls.extend(self.odp.train.urls.iter().cloned());
        combined.urls.extend(self.ser.train.urls.iter().cloned());
        combined
    }

    /// The three test sets, in paper order, with their display names.
    pub fn test_sets(&self) -> [(&'static str, &Dataset); 3] {
        [
            ("ODP", &self.odp.test),
            ("SER", &self.ser.test),
            ("WC", &self.web_crawl),
        ]
    }
}

/// Attach synthetic page content to every URL of a training set
/// (Section 7: content is only ever used for training, never for test).
pub fn attach_content(dataset: &mut Dataset, content: &mut ContentGenerator) {
    for url in &mut dataset.urls {
        url.content = Some(content.generate(url.language));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urlid_lexicon::Language;

    #[test]
    fn scale_application() {
        assert_eq!(CorpusScale::paper().apply(1000), 1000);
        assert_eq!(CorpusScale(0.1).apply(1000), 100);
        assert_eq!(CorpusScale(0.0001).apply(1000), 5, "floor of 5");
        assert_eq!(CorpusScale::default().0, CorpusScale::small().0);
    }

    #[test]
    fn odp_and_ser_splits_have_balanced_languages() {
        let mut g = UrlGenerator::new(1);
        let odp = odp_dataset(&mut g, CorpusScale::tiny());
        let per_lang_train = CorpusScale::tiny().apply(ODP_TRAIN_PER_LANGUAGE);
        let per_lang_test = CorpusScale::tiny().apply(ODP_TEST_PER_LANGUAGE);
        assert_eq!(odp.train.language_counts(), [per_lang_train; 5]);
        assert_eq!(odp.test.language_counts(), [per_lang_test; 5]);
        let ser = ser_dataset(&mut g, CorpusScale::tiny());
        assert_eq!(
            ser.train.len(),
            5 * CorpusScale::tiny().apply(SER_TRAIN_PER_LANGUAGE)
        );
    }

    #[test]
    fn web_crawl_is_english_skewed() {
        let mut g = UrlGenerator::new(2);
        let wc = web_crawl_dataset(&mut g, CorpusScale::paper());
        assert_eq!(wc.language_counts(), WEB_CRAWL_SIZES);
        let wc_small = web_crawl_dataset(&mut g, CorpusScale::small());
        let counts = wc_small.language_counts();
        assert!(counts[Language::English.index()] > 10 * counts[Language::Spanish.index()] / 2);
        assert!(counts.iter().all(|&c| c >= 4));
    }

    #[test]
    fn paper_corpus_builds_all_three_sets() {
        let corpus = PaperCorpus::generate(3, CorpusScale::tiny());
        assert!(!corpus.odp.train.is_empty());
        assert!(!corpus.ser.test.is_empty());
        assert!(!corpus.web_crawl.is_empty());
        let combined = corpus.combined_training();
        assert_eq!(
            combined.len(),
            corpus.odp.train.len() + corpus.ser.train.len()
        );
        assert_eq!(corpus.test_sets()[2].0, "WC");
    }

    #[test]
    fn corpus_generation_is_deterministic() {
        let a = PaperCorpus::generate(7, CorpusScale::tiny());
        let b = PaperCorpus::generate(7, CorpusScale::tiny());
        assert_eq!(a.odp.train, b.odp.train);
        assert_eq!(a.web_crawl, b.web_crawl);
        let c = PaperCorpus::generate(8, CorpusScale::tiny());
        assert_ne!(a.odp.train, c.odp.train);
    }

    #[test]
    fn attach_content_adds_text_of_the_right_language() {
        let mut g = UrlGenerator::new(4);
        let mut split = odp_dataset(&mut g, CorpusScale::tiny());
        let mut content = ContentGenerator::with_seed(5);
        attach_content(&mut split.train, &mut content);
        assert!(split.train.urls.iter().all(|u| u.content.is_some()));
        // Test set stays content-free by construction.
        assert!(split.test.urls.iter().all(|u| u.content.is_none()));
    }

    #[test]
    fn training_and_test_sets_share_domains() {
        // The domain-memorisation premise of Section 6.
        let mut g = UrlGenerator::new(6);
        let odp = odp_dataset(&mut g, CorpusScale::small());
        let train_domains: std::collections::HashSet<String> = odp
            .train
            .urls
            .iter()
            .filter_map(|u| urlid_tokenize::ParsedUrl::parse(&u.url).registered_domain())
            .collect();
        let seen = odp
            .test
            .urls
            .iter()
            .filter(|u| {
                urlid_tokenize::ParsedUrl::parse(&u.url)
                    .registered_domain()
                    .map(|d| train_domains.contains(&d))
                    .unwrap_or(false)
            })
            .count();
        let frac = seen as f64 / odp.test.len() as f64;
        assert!(
            frac > 0.4,
            "expected substantial domain overlap, got {frac:.2}"
        );
        assert!(frac < 0.99, "but not total overlap, got {frac:.2}");
    }
}
