//! Word (token) features — Section 3.1, "Words as features".
//!
//! Each distinct token observed in the training URLs becomes one feature
//! dimension; the value of a dimension for a given URL is the number of
//! times the token occurs in that URL. Out-of-vocabulary tokens at test
//! time are dropped. Algorithms using word features "keep counters for the
//! number of times a certain token is seen in the URLs of a given
//! language", learning for example that `cnn` or `gov` indicate English
//! while `produits` or `recherche` indicate French.
//!
//! When a training example carries page content (Section 7), the content
//! is tokenised with the same tokenizer and its tokens are added to the
//! training-time feature vector — the paper's "artificial lengthening of
//! the URL".

use crate::compiled::CompiledTransform;
use crate::dataset::LabeledUrl;
use crate::extractor::{FeatureExtractor, FeatureSetKind, ShardedFit};
use crate::intern::InternedVocabulary;
use crate::scratch::ExtractScratch;
use crate::vector::SparseVector;
use crate::vocabulary::{Vocabulary, VocabularyBuilder};
use serde::{Deserialize, Serialize};
use urlid_tokenize::Tokenizer;

/// Configuration for the word feature extractor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WordFeatureConfig {
    /// Minimum number of training occurrences for a token to enter the
    /// vocabulary (1 keeps every token, matching the paper).
    pub min_count: u64,
    /// Whether to use page content of training examples when available
    /// (the Section 7 experiment).
    pub use_training_content: bool,
}

impl Default for WordFeatureConfig {
    fn default() -> Self {
        Self {
            min_count: 1,
            use_training_content: false,
        }
    }
}

/// Word-feature extractor.
///
/// ```
/// use urlid_features::{FeatureExtractor, LabeledUrl, WordFeatureExtractor};
/// use urlid_lexicon::Language;
///
/// let training = vec![
///     LabeledUrl::new("http://www.recherche-produits.fr/", Language::French),
///     LabeledUrl::new("http://www.weather-news.co.uk/", Language::English),
/// ];
/// let mut ex = WordFeatureExtractor::default();
/// ex.fit(&training);
/// let v = ex.transform("http://www.recherche.fr/produits");
/// assert!(v.sum() >= 3.0); // recherche, fr, produits all in vocabulary
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WordFeatureExtractor {
    config: WordFeatureConfig,
    vocabulary: Vocabulary,
    tokenizer: Tokenizer,
}

impl WordFeatureExtractor {
    /// Create an extractor with the given configuration.
    pub fn new(config: WordFeatureConfig) -> Self {
        Self {
            config,
            vocabulary: Vocabulary::new(),
            tokenizer: Tokenizer::default(),
        }
    }

    /// Create an extractor that also uses training-example page content
    /// when present (Section 7 of the paper).
    pub fn with_training_content() -> Self {
        Self::new(WordFeatureConfig {
            use_training_content: true,
            ..WordFeatureConfig::default()
        })
    }

    /// The learnt vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocabulary
    }

    /// Tokens of a training example (URL tokens plus, if enabled and
    /// available, content tokens).
    fn training_tokens(&self, example: &LabeledUrl) -> Vec<String> {
        let mut tokens = self.tokenizer.tokenize(&example.url);
        if self.config.use_training_content {
            if let Some(content) = &example.content {
                tokens.extend(self.tokenizer.tokenize(content));
            }
        }
        tokens
    }

    fn vector_of_tokens(&self, tokens: &[String]) -> SparseVector {
        SparseVector::from_counts(tokens.iter().filter_map(|t| self.vocabulary.get(t)))
    }
}

impl FeatureExtractor for WordFeatureExtractor {
    fn fit(&mut self, training: &[LabeledUrl]) {
        let counts = self.observe_shard(training);
        self.finish_fit(Some(counts));
    }

    fn transform(&self, url: &str) -> SparseVector {
        let tokens = self.tokenizer.tokenize(url);
        self.vector_of_tokens(&tokens)
    }

    fn transform_with(&self, url: &str, scratch: &mut ExtractScratch) -> SparseVector {
        let ExtractScratch { token, indices, .. } = scratch;
        indices.clear();
        self.tokenizer.for_each_token(url, token, |tok| {
            if let Some(i) = self.vocabulary.get(tok) {
                indices.push(i);
            }
        });
        SparseVector::from_index_buffer(indices)
    }

    fn transform_training(&self, example: &LabeledUrl) -> SparseVector {
        let tokens = self.training_tokens(example);
        self.vector_of_tokens(&tokens)
    }

    fn compile_transform(&self) -> Option<CompiledTransform> {
        Some(CompiledTransform::Words {
            vocab: InternedVocabulary::from_vocabulary(&self.vocabulary),
            tokenizer: self.tokenizer.clone(),
        })
    }

    fn dim(&self) -> usize {
        self.vocabulary.len()
    }

    fn feature_name(&self, index: u32) -> Option<String> {
        self.vocabulary.name(index).map(|s| format!("word:{s}"))
    }

    fn kind(&self) -> FeatureSetKind {
        FeatureSetKind::Words
    }
}

impl ShardedFit for WordFeatureExtractor {
    type Partial = VocabularyBuilder;

    fn observe_shard(&self, shard: &[LabeledUrl]) -> VocabularyBuilder {
        let mut builder = VocabularyBuilder::new(self.config.min_count);
        for example in shard {
            builder.observe_all(self.training_tokens(example));
        }
        builder
    }

    fn merge_partials(
        &self,
        mut acc: VocabularyBuilder,
        next: VocabularyBuilder,
    ) -> VocabularyBuilder {
        acc.merge(next);
        acc
    }

    fn finish_fit(&mut self, merged: Option<VocabularyBuilder>) {
        self.vocabulary = merged
            .unwrap_or_else(|| VocabularyBuilder::new(self.config.min_count))
            .build();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urlid_lexicon::Language;

    fn training() -> Vec<LabeledUrl> {
        vec![
            LabeledUrl::new("http://www.wetter-online.de/berlin", Language::German),
            LabeledUrl::new("http://www.weather.co.uk/london", Language::English),
            LabeledUrl::new("http://www.meteo.fr/paris", Language::French),
        ]
    }

    #[test]
    fn fit_builds_vocabulary_from_tokens() {
        let mut ex = WordFeatureExtractor::default();
        ex.fit(&training());
        // www/http are filtered, so the vocabulary only has real tokens.
        assert!(ex.vocabulary().get("wetter").is_some());
        assert!(ex.vocabulary().get("weather").is_some());
        assert!(ex.vocabulary().get("www").is_none());
        assert!(ex.vocabulary().get("http").is_none());
        assert_eq!(ex.kind(), FeatureSetKind::Words);
        assert!(ex.dim() >= 10);
    }

    #[test]
    fn transform_counts_token_occurrences() {
        let mut ex = WordFeatureExtractor::default();
        ex.fit(&training());
        let v = ex.transform("http://berlin.de/berlin/wetter");
        let berlin_idx = ex.vocabulary().get("berlin").unwrap();
        assert_eq!(v.get(berlin_idx), 2.0);
        let wetter_idx = ex.vocabulary().get("wetter").unwrap();
        assert_eq!(v.get(wetter_idx), 1.0);
    }

    #[test]
    fn out_of_vocabulary_tokens_are_dropped() {
        let mut ex = WordFeatureExtractor::default();
        ex.fit(&training());
        let v = ex.transform("http://totallyunseen.example.xyz/nothing");
        // "de" etc. not present; none of these tokens were in training.
        assert!(v.is_empty());
    }

    #[test]
    fn unfitted_extractor_returns_empty_vectors() {
        let ex = WordFeatureExtractor::default();
        assert_eq!(ex.dim(), 0);
        assert!(ex.transform("http://www.example.de/").is_empty());
    }

    #[test]
    fn min_count_prunes_hapax_tokens() {
        let mut ex = WordFeatureExtractor::new(WordFeatureConfig {
            min_count: 2,
            use_training_content: false,
        });
        let mut data = training();
        data.push(LabeledUrl::new("http://www.wetter.de/", Language::German));
        ex.fit(&data);
        assert!(ex.vocabulary().get("wetter").is_some(), "seen twice");
        assert!(ex.vocabulary().get("meteo").is_none(), "seen once");
    }

    #[test]
    fn training_content_expands_vocabulary_only_when_enabled() {
        let data = vec![LabeledUrl::with_content(
            "http://www.page.de/",
            Language::German,
            "heute scheint die sonne",
        )];
        let mut plain = WordFeatureExtractor::default();
        plain.fit(&data);
        assert!(plain.vocabulary().get("sonne").is_none());

        let mut with_content = WordFeatureExtractor::with_training_content();
        with_content.fit(&data);
        assert!(with_content.vocabulary().get("sonne").is_some());
        // transform (test time) still only sees the URL.
        let v = with_content.transform("http://www.page.de/");
        let sonne = with_content.vocabulary().get("sonne").unwrap();
        assert_eq!(v.get(sonne), 0.0);
        // transform_training sees URL + content.
        let tv = with_content.transform_training(&data[0]);
        assert_eq!(tv.get(sonne), 1.0);
    }

    #[test]
    fn feature_names_are_prefixed() {
        let mut ex = WordFeatureExtractor::default();
        ex.fit(&training());
        let idx = ex.vocabulary().get("paris").unwrap();
        assert_eq!(ex.feature_name(idx).unwrap(), "word:paris");
        assert!(ex.feature_name(10_000).is_none());
    }

    #[test]
    fn serde_round_trip_preserves_vocabulary() {
        let mut ex = WordFeatureExtractor::default();
        ex.fit(&training());
        let json = serde_json::to_string(&ex).unwrap();
        let back: WordFeatureExtractor = serde_json::from_str(&json).unwrap();
        assert_eq!(back.dim(), ex.dim());
        assert_eq!(
            back.transform("http://www.weather.co.uk/"),
            ex.transform("http://www.weather.co.uk/")
        );
    }
}
