//! # urlid-serve
//!
//! The network serving layer for URL-based language identification — the
//! deployment the paper motivates: classification fast enough to run
//! *before* a page is fetched, inline in a crawler or frontend serving
//! path, under heavy traffic.
//!
//! Everything is built on the standard library only (the build container
//! has no crates.io access, so no tokio/hyper — the same vendoring
//! philosophy as the rest of the workspace):
//!
//! * [`http`] — a minimal HTTP/1.1 codec over [`std::net::TcpStream`]
//!   (request parsing, response writing, keep-alive), shared by the
//!   server, the load generator and the integration tests;
//! * [`cache`] — a mutex-striped, capacity-bounded LRU **result cache**
//!   keyed by normalised URL, so repeated URLs skip tokenisation and
//!   feature extraction entirely (asserted by an integration test through
//!   [`urlid_features::CountingExtractor`]);
//! * [`metrics`] — request counters and a log-scale latency histogram
//!   behind relaxed atomics, exported by `GET /metrics`;
//! * [`server`] — a fixed worker-thread-pool server exposing the JSON
//!   API, with **atomic model hot-reload**: `POST /admin/reload` swaps an
//!   [`std::sync::Arc`]-held model loaded via `urlid::persistence` with
//!   zero dropped requests (readers clone the `Arc` under a briefly-held
//!   read lock; the cache is epoch-tagged so stale entries never serve);
//! * [`loadgen`] — a keep-alive load generator replaying a
//!   corpus-generated URL mix and emitting a machine-readable
//!   `BENCH_serve.json` (throughput, p50/p99 latency, cache hit rate).
//!
//! ## Endpoints
//!
//! | Endpoint              | Method | Body                        | Response                                     |
//! |-----------------------|--------|-----------------------------|----------------------------------------------|
//! | `/identify`           | POST   | `{"url": "..."}`            | per-language scores, decisions, best, cached |
//! | `/identify_batch`     | POST   | `{"urls": ["...", ...]}`    | one result per URL (parallel scoring)        |
//! | `/healthz`            | GET    | —                           | status, model config, uptime                 |
//! | `/metrics`            | GET    | —                           | counters, cache hit rate, latency histogram  |
//! | `/admin/reload`       | POST   | `{"path": "..."}` (opt.)    | swaps the model, bumps the cache epoch       |
//!
//! ## Quickstart
//!
//! ```no_run
//! use urlid_serve::server::{spawn, ServeConfig, ServerState};
//! use std::sync::Arc;
//!
//! let bundle = urlid::ModelBundle::load("model.json").unwrap();
//! let state = Arc::new(ServerState::new(
//!     bundle.into_identifier(),
//!     Some("model.json".into()),
//!     65_536,
//! ));
//! let handle = spawn(&ServeConfig::default(), state).unwrap();
//! println!("serving on http://{}", handle.addr());
//! handle.join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod server;

pub use cache::{normalize_url, ResultCache};
pub use loadgen::{run_loadgen, BenchReport, LoadgenConfig};
pub use metrics::Metrics;
pub use server::{spawn, ServeConfig, ServerHandle, ServerState};
