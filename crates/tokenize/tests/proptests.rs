//! Property-based tests for the tokenizer, n-gram extraction and URL parser.

use proptest::prelude::*;
use urlid_tokenize::{
    ngram::{token_ngrams, token_trigrams, trigrams_of_url_tokens, url_trigrams},
    token::is_special_word,
    tokenize_url, ParsedUrl, Tokenizer,
};

proptest! {
    /// The tokenizer never panics and every produced token obeys the filter
    /// rules, for arbitrary (including non-URL) input.
    #[test]
    fn tokenizer_output_obeys_invariants(input in ".{0,200}") {
        let tokens = tokenize_url(&input);
        for t in &tokens {
            prop_assert!(t.len() >= 2, "token too short: {t:?}");
            prop_assert!(t.chars().all(|c| c.is_ascii_lowercase()), "token not lowercase ascii: {t:?}");
            prop_assert!(!is_special_word(t), "special word leaked: {t:?}");
        }
    }

    /// Tokenisation is idempotent: tokenising the concatenation of the
    /// tokens (joined with '/') gives back the same tokens.
    #[test]
    fn tokenization_is_idempotent(input in "[a-zA-Z0-9./_-]{0,120}") {
        let tokens = tokenize_url(&input);
        let rejoined = tokens.join("/");
        let again = tokenize_url(&rejoined);
        prop_assert_eq!(tokens, again);
    }

    /// Every trigram of a non-empty ASCII token has length exactly 3 and the
    /// number of trigrams equals the token length.
    #[test]
    fn trigram_shape(token in "[a-zA-Z]{1,40}") {
        let tris = token_trigrams(&token);
        prop_assert_eq!(tris.len(), token.len());
        for t in &tris {
            prop_assert_eq!(t.chars().count(), 3);
        }
        // First gram starts with a pad, last ends with a pad.
        prop_assert!(tris.first().unwrap().starts_with(' '));
        prop_assert!(tris.last().unwrap().ends_with(' '));
    }

    /// n-gram extraction never panics for arbitrary n in 1..=6 and arbitrary
    /// ASCII tokens, and all produced grams have length n (or the padded
    /// token length if shorter).
    #[test]
    fn ngram_lengths(token in "[a-z]{0,20}", n in 1usize..=6) {
        let grams = token_ngrams(&token, n);
        if token.is_empty() {
            prop_assert!(grams.is_empty());
        } else {
            for g in &grams {
                prop_assert!(g.chars().count() == n || g.chars().count() == token.len() + 2);
            }
        }
    }

    /// URL-level trigrams and token-level trigrams never panic and are
    /// consistent: every token-level trigram's letters appear in the URL.
    #[test]
    fn url_trigram_consistency(input in "[a-z0-9./-]{0,100}") {
        let _ = url_trigrams(&input);
        let tris = trigrams_of_url_tokens(&input);
        let lower = input.to_ascii_lowercase();
        for t in tris {
            let letters: String = t.chars().filter(|c| *c != ' ').collect();
            prop_assert!(lower.contains(&letters), "{letters:?} not in {lower:?}");
        }
    }

    /// The URL parser never panics, and host/path decomposition loses no
    /// slash-separated structure for well-formed http URLs.
    #[test]
    fn url_parser_never_panics(input in ".{0,200}") {
        let _ = ParsedUrl::parse(&input);
    }

    /// For canonical synthetic URLs, the parser reconstructs host and path
    /// faithfully.
    #[test]
    fn url_parser_roundtrip(
        host in "[a-z]{1,10}(\\.[a-z]{1,10}){1,3}",
        path in "(/[a-z0-9-]{1,8}){0,4}",
    ) {
        let url = format!("http://{host}{path}");
        let parsed = ParsedUrl::parse(&url);
        prop_assert_eq!(parsed.host(), host.as_str());
        prop_assert_eq!(parsed.path(), path.as_str());
        prop_assert!(parsed.tld().is_some());
        let reg = parsed.registered_domain().unwrap();
        prop_assert!(host.ends_with(&reg));
    }

    /// The zero-copy iterator and the allocating API agree.
    #[test]
    fn iter_and_tokenize_agree(input in ".{0,150}") {
        let t = Tokenizer::default();
        let a: Vec<String> = t.iter(&input).map(|s| s.to_ascii_lowercase()).collect();
        let b = t.tokenize(&input);
        prop_assert_eq!(a, b);
    }
}
