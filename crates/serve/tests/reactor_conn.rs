//! Connection-engine behaviors only a real socket can prove: slow
//! clients that must not hold threads, pipelining, idle eviction,
//! many-idle-connection multiplexing, oversized-body rejection before
//! allocation, and graceful shutdown draining in-flight work.

use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use urlid::prelude::*;
use urlid_serve::http;
use urlid_serve::server::{spawn, ServeConfig, ServerHandle, ServerState};

fn trained_identifier() -> LanguageIdentifier {
    let mut generator = UrlGenerator::new(5);
    let odp = odp_dataset(&mut generator, CorpusScale::tiny());
    LanguageIdentifier::train_paper_best(&odp.train)
}

fn start_server(config: &ServeConfig) -> ServerHandle {
    let state = Arc::new(ServerState::new(trained_identifier(), None, 4096));
    spawn(config, state).expect("bind on 127.0.0.1:0")
}

fn identify(addr: SocketAddr, url: &str) -> (u16, String) {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let body = format!("{{\"url\": \"{url}\"}}");
    http::write_request(&mut writer, "POST", "/identify", Some(&body)).expect("write");
    http::read_response(&mut reader).expect("read")
}

/// A slowloris client delivers its request one byte at a time with
/// pauses; the reactor buffers it in the connection's parser (a slab
/// slot, not a thread) and answers normally once the request completes
/// — all while other clients keep being served.
#[test]
fn slowloris_byte_at_a_time_request_is_served_without_holding_a_thread() {
    let server = start_server(&ServeConfig::default());
    let addr = server.addr();

    let slow = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let body = "{\"url\": \"http://www.wetterbericht.de/langsam\"}";
        let request = format!(
            "POST /identify HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        for chunk in request.as_bytes().chunks(7) {
            stream.write_all(chunk).expect("drip");
            stream.flush().ok();
            std::thread::sleep(Duration::from_millis(3));
        }
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        http::read_response(&mut reader).expect("slow client gets a response")
    });

    // While the slow client drips, fast clients are not blocked — with
    // the old thread-per-connection engine and a single-thread pool,
    // this is exactly the case that starved.
    for i in 0..10 {
        let (status, _) = identify(addr, &format!("http://www.seite{i}.de/wetter"));
        assert_eq!(status, 200, "fast request {i} during slowloris");
    }

    let (status, body) = slow.join().expect("slow client");
    assert_eq!(status, 200);
    assert!(body.contains("\"scores\""));
    server.shutdown();
}

/// The body arriving in a separate packet from the head (and itself
/// split) parses into one request.
#[test]
fn split_content_length_body_is_reassembled() {
    let server = start_server(&ServeConfig::default());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let body = "{\"url\": \"http://www.beispiel.de/geteilt\"}";
    let head = format!(
        "POST /identify HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("head");
    stream.flush().ok();
    std::thread::sleep(Duration::from_millis(20));
    let (first, second) = body.as_bytes().split_at(body.len() / 2);
    stream.write_all(first).expect("first half");
    stream.flush().ok();
    std::thread::sleep(Duration::from_millis(20));
    stream.write_all(second).expect("second half");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let (status, response) = http::read_response(&mut reader).expect("response");
    assert_eq!(status, 200);
    assert!(response.contains("\"best\""));
    server.shutdown();
}

/// Three pipelined requests written back-to-back in a single packet
/// come back as three ordered responses on the same connection.
#[test]
fn pipelined_requests_on_one_connection_answer_in_order() {
    let server = start_server(&ServeConfig::default());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut wire = String::new();
    let urls = [
        "http://www.erste-seite.de/",
        "http://www.deuxieme-page.fr/",
        "http://www.tercera-pagina.es/",
    ];
    for url in &urls {
        let body = format!("{{\"url\": \"{url}\"}}");
        wire.push_str(&format!(
            "POST /identify HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ));
    }
    stream.write_all(wire.as_bytes()).expect("pipeline");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    for url in &urls {
        let (status, body) = http::read_response(&mut reader).expect("response");
        assert_eq!(status, 200);
        let parsed: Value = serde_json::from_str(&body).expect("JSON");
        // Responses come back in request order: each carries its URL
        // (normalised, so compare the registrable part).
        match parsed.get("url") {
            Some(Value::Str(u)) => assert!(
                url.contains(u.trim_start_matches("http://").trim_end_matches('/')),
                "expected {url}, got {u}"
            ),
            other => panic!("no url in response: {other:?}"),
        }
    }
    server.shutdown();
}

/// A large pipelining burst — far more requests than one vectored write
/// can carry — still answers every request, in order, on one
/// connection. The client deliberately delays its reads so responses
/// pile up in the connection's segment queue and drain through the
/// `writev` batching path.
#[test]
fn large_pipelined_burst_drains_through_vectored_writes() {
    let server = start_server(&ServeConfig::default());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let count = 64;
    let mut wire = String::new();
    for i in 0..count {
        let body = format!("{{\"url\": \"http://www.seite-{i}.de/wetter\"}}");
        wire.push_str(&format!(
            "POST /identify HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ));
    }
    stream.write_all(wire.as_bytes()).expect("burst");
    // Let responses queue up behind the kernel's socket buffer before
    // reading anything back.
    std::thread::sleep(Duration::from_millis(100));
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    for i in 0..count {
        let (status, body) = http::read_response(&mut reader).expect("response");
        assert_eq!(status, 200, "request {i}");
        let parsed: Value = serde_json::from_str(&body).expect("JSON");
        match parsed.get("url") {
            Some(Value::Str(u)) => {
                assert!(u.contains(&format!("seite-{i}.")), "request {i}: got {u}")
            }
            other => panic!("no url in response {i}: {other:?}"),
        }
    }
    server.shutdown();
}

/// A connection idle past the timeout is evicted by the reactor (and
/// counted); mid-header slowloris drips that stall count the same way.
#[test]
fn idle_connections_are_evicted_after_the_timeout() {
    let config = ServeConfig {
        idle_timeout: Duration::from_millis(200),
        ..ServeConfig::default()
    };
    let server = start_server(&config);

    // One totally silent connection, one stalled mid-headers.
    let silent = TcpStream::connect(server.addr()).expect("connect");
    let mut stalled = TcpStream::connect(server.addr()).expect("connect");
    stalled
        .write_all(b"POST /identify HTTP/1.1\r\nContent-")
        .expect("partial");

    std::thread::sleep(Duration::from_millis(700));

    for (name, stream) in [("silent", &silent), ("stalled", &stalled)] {
        let mut reader = stream.try_clone().expect("clone");
        reader
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        let mut buf = [0u8; 64];
        match reader.read(&mut buf) {
            Ok(0) => {} // clean EOF: evicted
            Ok(n) => panic!("{name}: expected eviction, read {n} bytes"),
            Err(e) => assert!(
                matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
                ),
                "{name}: unexpected error {e:?}"
            ),
        }
    }
    let timed_out = server
        .state()
        .metrics()
        .connections_timed_out
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(timed_out >= 2, "timed_out gauge saw {timed_out}");
    server.shutdown();
}

/// 256 idle keep-alive connections cost slab slots, not threads:
/// requests on other connections keep completing, the connection
/// gauges see the population, and every idle connection still serves
/// afterwards.
#[test]
fn hundreds_of_idle_connections_do_not_block_active_traffic() {
    let server = start_server(&ServeConfig::default());
    let addr = server.addr();

    // Open 256 keep-alive connections, prove each one once.
    let mut idle = Vec::new();
    for i in 0..256 {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let body = format!("{{\"url\": \"http://www.seite{}.de/\"}}", i % 13);
        http::write_request(&mut writer, "POST", "/identify", Some(&body)).expect("write");
        let (status, _) = http::read_response(&mut reader).expect("read");
        assert_eq!(status, 200, "idle open {i}");
        idle.push((writer, reader));
    }

    // Active traffic on fresh connections completes while all 256 sit
    // idle — with the old engine's pool this would deadlock (every
    // worker pinned to an idle keep-alive connection).
    for i in 0..25 {
        let (status, _) = identify(addr, &format!("http://www.aktiv{i}.de/wetter"));
        assert_eq!(status, 200, "active request {i}");
    }

    // The gauges see the idle population.
    let open = server
        .state()
        .metrics()
        .connections_open
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(open >= 256, "open gauge saw {open}");

    // Every idle connection still serves.
    for (i, (writer, reader)) in idle.iter_mut().enumerate() {
        let body = format!("{{\"url\": \"http://www.wieder{}.de/\"}}", i % 7);
        http::write_request(writer, "POST", "/identify", Some(&body)).expect("write");
        let (status, _) = http::read_response(reader).expect("read");
        assert_eq!(status, 200, "idle sweep {i}");
    }
    server.shutdown();
}

/// An oversized `Content-Length` declaration is refused with `413`
/// before any body is accepted — the client has only sent headers.
#[test]
fn oversized_content_length_is_rejected_before_the_body_is_sent() {
    let config = ServeConfig {
        max_body_bytes: 1024,
        ..ServeConfig::default()
    };
    let server = start_server(&config);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    // Declare 1 GiB; send nothing after the head.
    stream
        .write_all(b"POST /identify HTTP/1.1\r\nContent-Length: 1073741824\r\n\r\n")
        .expect("head");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let (status, body) = http::read_response(&mut reader).expect("response");
    assert_eq!(status, 413);
    assert!(body.contains("error"));
    // The connection is closed afterwards (the stream cannot be
    // resynchronised past an unsent body).
    let mut buf = [0u8; 16];
    let mut tail = stream.try_clone().expect("clone");
    tail.set_read_timeout(Some(Duration::from_secs(2))).ok();
    assert_eq!(tail.read(&mut buf).unwrap_or(0), 0, "connection closes");
    server.shutdown();
}

/// A client that sends its request and immediately half-closes the
/// write side (send-then-`shutdown(WR)`, a common one-shot pattern)
/// still gets its response — and the EOF-readable socket must not
/// wedge the reactor while the request sits in the scoring pool.
#[test]
fn half_closed_client_still_receives_its_response() {
    let server = start_server(&ServeConfig::default());
    let stream = TcpStream::connect(server.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    http::write_request(
        &mut writer,
        "POST",
        "/identify",
        Some("{\"url\": \"http://www.halbgeschlossen.de/\"}"),
    )
    .expect("write");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let (status, body) = http::read_response(&mut reader).expect("response after half-close");
    assert_eq!(status, 200);
    assert!(body.contains("\"scores\""));
    // Other clients are unaffected while (and after) the half-closed
    // connection winds down.
    let (status, _) = identify(server.addr(), "http://www.andere.de/");
    assert_eq!(status, 200);
    server.shutdown();
}

/// A raw protocol violation gets a JSON `400` and the connection is
/// dropped — never a panic, never a wedged slot.
#[test]
fn malformed_request_line_gets_400_and_close() {
    let server = start_server(&ServeConfig::default());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.write_all(b"BANANA\r\n\r\n").expect("garbage");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    assert!(
        status_line.starts_with("HTTP/1.1 400"),
        "got {status_line:?}"
    );
    // Server is unharmed.
    let (status, _) = identify(server.addr(), "http://www.gesund.de/");
    assert_eq!(status, 200);
    server.shutdown();
}

/// Graceful shutdown: a request already in the scoring pool finishes
/// and flushes before the server comes down; idle connections are
/// closed; the listener stops accepting.
#[test]
fn shutdown_drains_in_flight_requests_and_closes_idle_connections() {
    let server = start_server(&ServeConfig::default());
    let addr = server.addr();

    // An idle bystander connection (proven once).
    let (status, _) = {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        http::write_request(
            &mut writer,
            "POST",
            "/identify",
            Some("{\"url\": \"http://www.zuschauer.de/\"}"),
        )
        .expect("write");
        let response = http::read_response(&mut reader).expect("read");
        // Keep the raw stream alive past shutdown to observe the close.
        let mut buf = [0u8; 16];
        let mut observer = stream.try_clone().expect("clone");
        observer.set_read_timeout(Some(Duration::from_secs(5))).ok();
        std::thread::spawn(move || {
            // EOF (or reset) once the drain closes idle connections.
            let _ = observer.read(&mut buf);
        });
        response
    };
    assert_eq!(status, 200);

    // A long-running batch request: hundreds of unique URLs keep the
    // scoring pool busy while shutdown begins.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let urls: Vec<String> = (0..1500)
        .map(|i| format!("\"http://www.lange-liste-{i}.de/seite/{i}\""))
        .collect();
    let body = format!("{{\"urls\": [{}]}}", urls.join(", "));
    http::write_request(&mut writer, "POST", "/identify_batch", Some(&body)).expect("write");

    // Give the reactor a moment to parse and dispatch, then shut down
    // while the batch is (very likely) still scoring.
    std::thread::sleep(Duration::from_millis(30));
    let shutdown_thread = std::thread::spawn(move || server.shutdown());

    let (status, response) = http::read_response(&mut reader).expect("in-flight response");
    assert_eq!(status, 200, "in-flight batch failed during shutdown");
    let parsed: Value = serde_json::from_str(&response).expect("JSON");
    match parsed.get("count") {
        Some(Value::Uint(n)) => assert_eq!(*n, 1500),
        Some(Value::Int(n)) => assert_eq!(*n, 1500),
        other => panic!("bad count {other:?}"),
    }
    shutdown_thread.join().expect("shutdown");

    // The listener is gone: new connections are refused (or accepted
    // by the OS backlog and immediately dead — never served).
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(stream) => {
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            let served = http::write_request(
                &mut writer,
                "POST",
                "/identify",
                Some("{\"url\": \"http://www.zu-spaet.de/\"}"),
            )
            .and_then(|()| http::read_response(&mut reader));
            assert!(served.is_err(), "server answered after shutdown");
        }
    }
}
