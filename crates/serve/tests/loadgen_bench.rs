//! The acceptance run: the load generator against a locally started
//! server completes and emits a multi-scenario `BENCH_serve.json` with
//! throughput, p50/p99 latency, the cache hit rate and the server's
//! thread budget — including a scenario holding mostly-idle keep-alive
//! connections open through the hammer.

use serde::Value;
use std::sync::Arc;
use urlid::prelude::*;
use urlid_serve::server::{spawn, ServeConfig, ServerState};
use urlid_serve::{run_loadgen, run_suite, LoadgenConfig};

fn start_server() -> urlid_serve::ServerHandle {
    let mut generator = UrlGenerator::new(5);
    let odp = odp_dataset(&mut generator, CorpusScale::tiny());
    let identifier = LanguageIdentifier::train_paper_best(&odp.train);
    let state = Arc::new(ServerState::new(identifier, None, 8192));
    spawn(&ServeConfig::default(), state).expect("bind")
}

#[test]
fn loadgen_completes_and_emits_bench_json() {
    let server = start_server();
    let out = std::env::temp_dir().join("urlid-loadgen-test-BENCH_serve.json");
    std::fs::remove_file(&out).ok();
    let config = LoadgenConfig {
        name: "test_3conn".to_owned(),
        addr: server.addr().to_string(),
        requests: 600,
        concurrency: 3,
        idle_connections: 0,
        unique_urls: 50,
        seed: 11,
        arrival_rps: 0.0,
        out: Some(out.clone()),
    };
    let report = run_loadgen(&config).expect("loadgen run");
    server.shutdown();

    assert_eq!(report.requests, 600);
    assert_eq!(report.errors, 0);
    assert_eq!(report.scenario, "test_3conn");
    assert!(report.duration_secs > 0.0);
    assert!(report.throughput_rps > 0.0);
    assert!(report.latency.p50_ms > 0.0);
    assert!(report.latency.p50_ms <= report.latency.p99_ms);
    assert!(report.latency.p99_ms <= report.latency.p999_ms);
    assert!(report.latency.p999_ms <= report.latency.max_ms);
    // The server's whole thread budget is the reactor set plus a
    // CPU-count-sized scoring pool — the report certifies it.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get()) as u64;
    let reactors = urlid_serve::default_reactors() as u64;
    assert_eq!(report.reactors, reactors);
    assert_eq!(report.server_threads, reactors + cores);
    // 600 requests over 50 unique URLs: the cache must be doing real work.
    assert!(
        report.cache.hit_rate > 0.5,
        "hit rate {} too low for a 12x-repeated URL pool",
        report.cache.hit_rate
    );
    assert_eq!(report.cache.hits + report.cache.misses, 600);

    // The emitted file is machine-readable and has the documented shape.
    let text = std::fs::read_to_string(&out).expect("BENCH_serve.json written");
    let parsed: Value = serde_json::from_str(&text).expect("valid JSON");
    assert_eq!(parsed.get("bench"), Some(&Value::Str("serve".into())));
    assert_eq!(parsed.get("schema"), Some(&Value::Int(5)));
    for key in [
        "scenario",
        "unix_time",
        "requests",
        "errors",
        "concurrency",
        "idle_connections",
        "unique_urls",
        "duration_secs",
        "throughput_rps",
        "admission_rejects",
        "server_threads",
        "reactors",
        "io_backend",
        "per_reactor",
    ] {
        assert!(parsed.get(key).is_some(), "missing {key}");
    }
    let latency = parsed.get("latency").expect("latency section");
    for key in ["p50_ms", "p90_ms", "p99_ms", "p999_ms", "mean_ms", "max_ms"] {
        assert!(latency.get(key).is_some(), "missing latency.{key}");
    }
    let cache = parsed.get("cache").expect("cache section");
    for key in ["hits", "misses", "hit_rate"] {
        assert!(cache.get(key).is_some(), "missing cache.{key}");
    }
    // The report names the reactor I/O engine the server actually ran
    // (the default config auto-probes, so either engine is legitimate).
    match parsed.get("io_backend") {
        Some(Value::Str(io)) => assert!(
            matches!(io.as_str(), "uring" | "epoll" | "poll"),
            "unexpected io_backend {io:?}"
        ),
        other => panic!("io_backend must be a string, got {other:?}"),
    }
    std::fs::remove_file(&out).ok();
}

#[test]
fn suite_with_idle_connections_runs_scenarios_back_to_back() {
    let server = start_server();
    let out = std::env::temp_dir().join("urlid-loadgen-suite-BENCH_serve.json");
    std::fs::remove_file(&out).ok();
    let base = LoadgenConfig {
        addr: server.addr().to_string(),
        requests: 300,
        concurrency: 2,
        unique_urls: 40,
        seed: 3,
        out: None,
        ..LoadgenConfig::default()
    };
    let scenarios = vec![
        LoadgenConfig {
            name: "small_baseline".to_owned(),
            ..base.clone()
        },
        LoadgenConfig {
            name: "small_idle".to_owned(),
            idle_connections: 64,
            ..base
        },
    ];
    let suite = run_suite(&scenarios, Some(&out)).expect("suite run");
    server.shutdown();

    assert_eq!(suite.scenarios.len(), 2);
    let baseline = &suite.scenarios[0];
    let idle = &suite.scenarios[1];
    assert_eq!(baseline.scenario, "small_baseline");
    assert_eq!(baseline.errors, 0);
    assert_eq!(baseline.requests, 300);
    assert_eq!(idle.scenario, "small_idle");
    // Zero errors across the hammer, the 64 idle opens and the final
    // idle sweep — every idle connection survived and still served.
    assert_eq!(idle.errors, 0);
    assert_eq!(idle.idle_connections, 64);
    assert_eq!(idle.requests, 300 + 64 + 64);

    // The suite file holds both scenarios.
    let text = std::fs::read_to_string(&out).expect("suite written");
    let parsed: Value = serde_json::from_str(&text).expect("valid JSON");
    let Some(Value::Array(entries)) = parsed.get("scenarios") else {
        panic!("scenarios must be an array");
    };
    assert_eq!(entries.len(), 2);
    std::fs::remove_file(&out).ok();
}
