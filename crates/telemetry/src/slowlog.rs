//! Threshold-gated, rate-limited slow-request logging decisions.
//!
//! The hot path asks [`SlowLog::should_log`] with a request's total
//! duration; the answer is `true` only when the duration crosses the
//! configured threshold *and* the minimum gap since the last emitted
//! line has elapsed (a compare-and-swap keeps concurrent workers from
//! flooding stderr together). Formatting/printing stays with the
//! caller — this type only makes the decision without locking.

use std::sync::atomic::{AtomicU64, Ordering};

/// Decision state for the slow-request log.
pub struct SlowLog {
    threshold_micros: AtomicU64,
    min_gap_micros: AtomicU64,
    last_emit_micros: AtomicU64,
}

impl Default for SlowLog {
    fn default() -> Self {
        Self::new()
    }
}

impl SlowLog {
    /// Disabled (threshold 0) with a 250ms default gap.
    pub fn new() -> Self {
        SlowLog {
            threshold_micros: AtomicU64::new(0),
            min_gap_micros: AtomicU64::new(250_000),
            last_emit_micros: AtomicU64::new(u64::MAX),
        }
    }

    /// Set the slow threshold (0 disables) and the minimum gap between
    /// emitted lines, both in microseconds.
    pub fn configure(&self, threshold_micros: u64, min_gap_micros: u64) {
        self.threshold_micros
            .store(threshold_micros, Ordering::Relaxed);
        self.min_gap_micros.store(min_gap_micros, Ordering::Relaxed);
        self.last_emit_micros.store(u64::MAX, Ordering::Relaxed);
    }

    /// Current threshold in microseconds (0 = disabled).
    pub fn threshold_micros(&self) -> u64 {
        self.threshold_micros.load(Ordering::Relaxed)
    }

    /// Should a request of `total_micros` duration, observed at
    /// `now_micros` (monotonic, e.g. since process start), be logged?
    /// At most one caller wins per gap window.
    pub fn should_log(&self, total_micros: u64, now_micros: u64) -> bool {
        let threshold = self.threshold_micros.load(Ordering::Relaxed);
        if threshold == 0 || total_micros < threshold {
            return false;
        }
        let gap = self.min_gap_micros.load(Ordering::Relaxed);
        let last = self.last_emit_micros.load(Ordering::Relaxed);
        if last != u64::MAX && now_micros.saturating_sub(last) < gap {
            return false;
        }
        self.last_emit_micros
            .compare_exchange(last, now_micros, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        let s = SlowLog::new();
        assert!(!s.should_log(10_000_000, 0));
    }

    #[test]
    fn threshold_and_rate_limit() {
        let s = SlowLog::new();
        s.configure(100_000, 250_000);
        assert!(!s.should_log(99_999, 1_000));
        assert!(s.should_log(100_000, 1_000), "first slow request logs");
        assert!(!s.should_log(500_000, 2_000), "inside gap window");
        assert!(s.should_log(500_000, 251_001), "gap elapsed");
    }
}
