//! The training pipeline of Section 4.1.
//!
//! "For each language we trained the classifiers on the set of all
//! available positive training samples (about 250k) and a random subset of
//! equal size of negative samples, i.e., of URLs belonging to the four
//! other languages. Using all roughly 1.25M URLs to train each binary
//! classifier would have led to too conservative classifiers as the
//! negative samples (1M) would have dominated."
//!
//! [`train_classifier_set`] therefore:
//!
//! 1. fits one feature extractor of the requested family on the *whole*
//!    training set (the vocabulary / trained dictionaries are shared by
//!    the five binary classifiers);
//! 2. for every language, collects the positive feature vectors and an
//!    equal-sized random sample of negative ones;
//! 3. trains the requested algorithm and wraps the result together with
//!    the shared extractor into a [`urlid_classifiers::UrlClassifier`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use urlid_classifiers::{
    Algorithm, CcTldClassifier, DecisionTree, DecisionTreeConfig, KNearestNeighbors, KnnConfig,
    LanguageClassifierSet, MaxEnt, MaxEntConfig, NaiveBayes, NaiveBayesConfig, RelativeEntropy,
    RelativeEntropyConfig, UrlClassifier, VectorClassifier,
};
use urlid_features::{
    CustomFeatureExtractor, CustomFeatureSet, Dataset, FeatureExtractor, FeatureSetKind,
    SparseVector, TrigramFeatureExtractor, WordFeatureExtractor,
};
use urlid_lexicon::Language;

/// Configuration for training one (feature set, algorithm) combination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Which feature family to use.
    pub feature_set: FeatureSetKind,
    /// Which learning algorithm to use.
    pub algorithm: Algorithm,
    /// Which custom feature subset to use when `feature_set` is `Custom`.
    pub custom_features: CustomFeatureSet,
    /// Ratio of negative to positive training samples (paper: 1.0).
    pub negative_ratio: f64,
    /// Seed for negative sampling.
    pub seed: u64,
    /// Iterations for Maximum Entropy training (paper: 40; 2 in the
    /// Section 7 content experiment).
    pub maxent_iterations: usize,
    /// Use the page content of training examples when present (Section 7).
    pub use_training_content: bool,
}

impl TrainingConfig {
    /// A configuration with the paper's defaults for the given feature
    /// set / algorithm combination.
    pub fn new(feature_set: FeatureSetKind, algorithm: Algorithm) -> Self {
        Self {
            feature_set,
            algorithm,
            custom_features: CustomFeatureSet::Selected15,
            negative_ratio: 1.0,
            seed: 0xBA9_2008,
            maxent_iterations: 40,
            use_training_content: false,
        }
    }

    /// The paper's overall best single configuration: Naive Bayes on word
    /// features (Section 5.3).
    pub fn paper_best() -> Self {
        Self::new(FeatureSetKind::Words, Algorithm::NaiveBayes)
    }

    /// Builder-style: set the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: train on page content too (Section 7).
    pub fn with_training_content(mut self) -> Self {
        self.use_training_content = true;
        self
    }

    /// Builder-style: use the full 74 custom features instead of the
    /// selected 15.
    pub fn with_full_custom_features(mut self) -> Self {
        self.custom_features = CustomFeatureSet::Full74;
        self
    }

    /// Builder-style: set the Maximum Entropy iteration count.
    pub fn with_maxent_iterations(mut self, iterations: usize) -> Self {
        self.maxent_iterations = iterations;
        self
    }
}

/// The concrete extractor for a feature family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum AnyExtractor {
    Words(WordFeatureExtractor),
    Trigrams(TrigramFeatureExtractor),
    Custom(CustomFeatureExtractor),
}

impl AnyExtractor {
    pub(crate) fn build(config: &TrainingConfig) -> Self {
        match config.feature_set {
            FeatureSetKind::Words => {
                if config.use_training_content {
                    AnyExtractor::Words(WordFeatureExtractor::with_training_content())
                } else {
                    AnyExtractor::Words(WordFeatureExtractor::default())
                }
            }
            FeatureSetKind::Trigrams => {
                if config.use_training_content {
                    AnyExtractor::Trigrams(TrigramFeatureExtractor::with_training_content())
                } else {
                    AnyExtractor::Trigrams(TrigramFeatureExtractor::default())
                }
            }
            FeatureSetKind::Custom => {
                AnyExtractor::Custom(CustomFeatureExtractor::new(config.custom_features))
            }
        }
    }
}

impl FeatureExtractor for AnyExtractor {
    fn fit(&mut self, training: &[urlid_features::LabeledUrl]) {
        match self {
            AnyExtractor::Words(e) => e.fit(training),
            AnyExtractor::Trigrams(e) => e.fit(training),
            AnyExtractor::Custom(e) => e.fit(training),
        }
    }
    fn transform(&self, url: &str) -> SparseVector {
        match self {
            AnyExtractor::Words(e) => e.transform(url),
            AnyExtractor::Trigrams(e) => e.transform(url),
            AnyExtractor::Custom(e) => e.transform(url),
        }
    }
    fn transform_with(
        &self,
        url: &str,
        scratch: &mut urlid_features::ExtractScratch,
    ) -> SparseVector {
        match self {
            AnyExtractor::Words(e) => e.transform_with(url, scratch),
            AnyExtractor::Trigrams(e) => e.transform_with(url, scratch),
            AnyExtractor::Custom(e) => e.transform_with(url, scratch),
        }
    }
    fn transform_training(&self, example: &urlid_features::LabeledUrl) -> SparseVector {
        match self {
            AnyExtractor::Words(e) => e.transform_training(example),
            AnyExtractor::Trigrams(e) => e.transform_training(example),
            AnyExtractor::Custom(e) => e.transform_training(example),
        }
    }
    fn dim(&self) -> usize {
        match self {
            AnyExtractor::Words(e) => e.dim(),
            AnyExtractor::Trigrams(e) => e.dim(),
            AnyExtractor::Custom(e) => e.dim(),
        }
    }
    fn feature_name(&self, index: u32) -> Option<String> {
        match self {
            AnyExtractor::Words(e) => e.feature_name(index),
            AnyExtractor::Trigrams(e) => e.feature_name(index),
            AnyExtractor::Custom(e) => e.feature_name(index),
        }
    }
    fn kind(&self) -> FeatureSetKind {
        match self {
            AnyExtractor::Words(e) => e.kind(),
            AnyExtractor::Trigrams(e) => e.kind(),
            AnyExtractor::Custom(e) => e.kind(),
        }
    }
}

/// The concrete trained model for any of the learning algorithms.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum AnyModel {
    NaiveBayes(NaiveBayes),
    RelativeEntropy(RelativeEntropy),
    MaxEnt(MaxEnt),
    DecisionTree(DecisionTree),
    Knn(KNearestNeighbors),
}

impl VectorClassifier for AnyModel {
    fn score(&self, features: &SparseVector) -> f64 {
        match self {
            AnyModel::NaiveBayes(m) => m.score(features),
            AnyModel::RelativeEntropy(m) => m.score(features),
            AnyModel::MaxEnt(m) => m.score(features),
            AnyModel::DecisionTree(m) => m.score(features),
            AnyModel::Knn(m) => m.score(features),
        }
    }
}

/// A shared fitted extractor paired with one trained model.
pub(crate) struct TrainedUrlClassifier {
    pub(crate) extractor: Arc<AnyExtractor>,
    pub(crate) model: AnyModel,
}

impl UrlClassifier for TrainedUrlClassifier {
    fn classify_url(&self, url: &str) -> bool {
        self.model.classify(&self.extractor.transform(url))
    }
    fn score_url(&self, url: &str) -> f64 {
        self.model.score(&self.extractor.transform(url))
    }
}

/// Collect the positive vectors of `lang` and an equal-size (times
/// `negative_ratio`) random sample of negative vectors.
pub(crate) fn sample_vectors(
    training: &Dataset,
    extractor: &AnyExtractor,
    lang: Language,
    config: &TrainingConfig,
) -> (Vec<SparseVector>, Vec<SparseVector>) {
    let mut rng = StdRng::seed_from_u64(config.seed ^ ((lang.index() as u64 + 1) * 0x9E37_79B9));
    let mut positives = Vec::new();
    let mut negative_pool: Vec<&urlid_features::LabeledUrl> = Vec::new();
    for example in &training.urls {
        if example.language == lang {
            positives.push(extractor.transform_training(example));
        } else {
            negative_pool.push(example);
        }
    }
    let target = ((positives.len() as f64) * config.negative_ratio).round() as usize;
    let negatives: Vec<SparseVector> = if negative_pool.len() <= target {
        negative_pool
            .iter()
            .map(|e| extractor.transform_training(e))
            .collect()
    } else {
        // Partial Fisher–Yates: draw `target` distinct indices.
        let mut indices: Vec<usize> = (0..negative_pool.len()).collect();
        for i in 0..target {
            let j = rng.random_range(i..indices.len());
            indices.swap(i, j);
        }
        indices[..target]
            .iter()
            .map(|&i| extractor.transform_training(negative_pool[i]))
            .collect()
    };
    (positives, negatives)
}

pub(crate) fn train_model(
    positives: &[SparseVector],
    negatives: &[SparseVector],
    dim: usize,
    config: &TrainingConfig,
) -> AnyModel {
    match config.algorithm {
        Algorithm::NaiveBayes => AnyModel::NaiveBayes(NaiveBayes::train(
            positives,
            negatives,
            NaiveBayesConfig::for_dim(dim),
        )),
        Algorithm::RelativeEntropy => AnyModel::RelativeEntropy(RelativeEntropy::train(
            positives,
            negatives,
            RelativeEntropyConfig::for_dim(dim),
        )),
        Algorithm::MaxEnt => AnyModel::MaxEnt(MaxEnt::train(
            positives,
            negatives,
            MaxEntConfig::with_iterations(dim, config.maxent_iterations),
        )),
        Algorithm::DecisionTree => AnyModel::DecisionTree(DecisionTree::train(
            positives,
            negatives,
            DecisionTreeConfig::for_dim(dim),
        )),
        Algorithm::KNearestNeighbors => AnyModel::Knn(KNearestNeighbors::train(
            positives,
            negatives,
            KnnConfig::default(),
        )),
        Algorithm::CcTld | Algorithm::CcTldPlus => {
            unreachable!("ccTLD baselines are handled before feature extraction")
        }
    }
}

/// Train the binary classifier for one language.
pub fn train_language_classifier(
    training: &Dataset,
    lang: Language,
    config: &TrainingConfig,
) -> Box<dyn UrlClassifier> {
    match config.algorithm {
        Algorithm::CcTld | Algorithm::CcTldPlus => {
            return Box::new(CcTldClassifier::for_algorithm(config.algorithm, lang));
        }
        _ => {}
    }
    let mut extractor = AnyExtractor::build(config);
    extractor.fit(&training.urls);
    let (positives, negatives) = sample_vectors(training, &extractor, lang, config);
    let model = train_model(&positives, &negatives, extractor.dim(), config);
    Box::new(TrainedUrlClassifier {
        extractor: Arc::new(extractor),
        model,
    })
}

/// Train all five binary classifiers (sharing one fitted extractor).
///
/// The returned set holds the extractor *once* and five
/// [`VectorClassifier`] models, so classification extracts features
/// exactly once per URL and scores all languages from the same vector
/// (the single-pass pipeline).
pub fn train_classifier_set(training: &Dataset, config: &TrainingConfig) -> LanguageClassifierSet {
    match config.algorithm {
        Algorithm::CcTld | Algorithm::CcTldPlus => {
            return LanguageClassifierSet::build(|lang| {
                Box::new(CcTldClassifier::for_algorithm(config.algorithm, lang))
            });
        }
        _ => {}
    }
    let mut extractor = AnyExtractor::build(config);
    extractor.fit(&training.urls);
    let extractor = Arc::new(extractor);
    LanguageClassifierSet::build_vector(Arc::clone(&extractor) as _, |lang| {
        let (positives, negatives) = sample_vectors(training, &extractor, lang, config);
        Box::new(train_model(&positives, &negatives, extractor.dim(), config))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use urlid_corpus::{odp_dataset, CorpusScale, UrlGenerator};
    use urlid_eval::evaluate_classifier_set;

    fn tiny_corpus() -> (Dataset, Dataset) {
        let mut g = UrlGenerator::new(11);
        let odp = odp_dataset(&mut g, CorpusScale::tiny());
        (odp.train, odp.test)
    }

    #[test]
    fn naive_bayes_words_learns_the_task() {
        let (train, test) = tiny_corpus();
        let set = train_classifier_set(&train, &TrainingConfig::paper_best());
        let result = evaluate_classifier_set(&set, &test);
        assert!(
            result.mean_f_measure() > 0.70,
            "NB+words should reach a reasonable F even on a tiny corpus, got {:.3}",
            result.mean_f_measure()
        );
    }

    #[test]
    fn every_algorithm_and_feature_set_trains_and_beats_chance() {
        let (train, test) = tiny_corpus();
        for feature_set in [
            FeatureSetKind::Words,
            FeatureSetKind::Trigrams,
            FeatureSetKind::Custom,
        ] {
            for algorithm in [Algorithm::NaiveBayes, Algorithm::RelativeEntropy] {
                let config = TrainingConfig::new(feature_set, algorithm);
                let set = train_classifier_set(&train, &config);
                let result = evaluate_classifier_set(&set, &test);
                assert!(
                    result.mean_f_measure() > 0.40,
                    "{feature_set:?}/{algorithm:?} too weak: {:.3}",
                    result.mean_f_measure()
                );
            }
        }
    }

    #[test]
    fn cctld_configs_skip_feature_training() {
        let (train, test) = tiny_corpus();
        let set = train_classifier_set(
            &train,
            &TrainingConfig::new(FeatureSetKind::Words, Algorithm::CcTld),
        );
        let result = evaluate_classifier_set(&set, &test);
        // High precision, poor recall for English (the paper's Table 4).
        let en = result.metrics(Language::English);
        assert!(en.precision > 0.8);
        assert!(en.recall < 0.4);
    }

    #[test]
    fn single_language_classifier_agrees_with_set() {
        let (train, _test) = tiny_corpus();
        let config = TrainingConfig::paper_best();
        let set = train_classifier_set(&train, &config);
        let single = train_language_classifier(&train, Language::German, &config);
        // Same training data, same seed: decisions must agree.
        for url in [
            "http://www.wetter-nachrichten.de/berlin",
            "http://www.weather-news.co.uk/london",
        ] {
            assert_eq!(
                single.classify_url(url),
                set.classify(url, Language::German),
                "{url}"
            );
        }
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let (train, test) = tiny_corpus();
        let config = TrainingConfig::paper_best().with_seed(7);
        let a = evaluate_classifier_set(&train_classifier_set(&train, &config), &test);
        let b = evaluate_classifier_set(&train_classifier_set(&train, &config), &test);
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn builder_methods_set_fields() {
        let c = TrainingConfig::new(FeatureSetKind::Custom, Algorithm::DecisionTree)
            .with_seed(9)
            .with_full_custom_features()
            .with_maxent_iterations(2)
            .with_training_content();
        assert_eq!(c.seed, 9);
        assert_eq!(c.custom_features, CustomFeatureSet::Full74);
        assert_eq!(c.maxent_iterations, 2);
        assert!(c.use_training_content);
    }
}
