//! Vendored minimal stand-in for the `serde_json` crate.
//!
//! Serialises the vendored [`serde::Value`] data model to compact JSON
//! and parses JSON text back into it. Covers the full JSON grammar
//! (objects, arrays, strings with escapes, numbers, booleans, null);
//! floats are written with Rust's shortest round-trip formatting.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A serialisation or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serialise a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialise a value to a human-readable, indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Parse a JSON string into any deserialisable type.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(x: f64, out: &mut String) {
    if x.is_finite() {
        // `{:?}` is Rust's shortest representation that round-trips.
        let s = format!("{x:?}");
        out.push_str(&s);
    } else {
        // JSON has no infinities/NaN; serde_json writes null.
        out.push_str("null");
    }
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Uint(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(*x, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_value_pretty(value: &Value, out: &mut String, depth: usize) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_value_pretty(item, out, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_value_pretty(v, out, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("lone surrogate"));
                                }
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| Error::new("truncated \\u escape"))?;
                                let hex2 = std::str::from_utf8(hex2)
                                    .map_err(|_| Error::new("bad \\u escape"))?;
                                let low = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| Error::new("bad \\u escape"))?;
                                self.pos += 4;
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("bad surrogate pair"))?
                            } else {
                                char::from_u32(code).ok_or_else(|| Error::new("bad \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::Int(n))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::Uint(n))
        } else {
            // Integer overflow: fall back to float like serde_json's
            // arbitrary-precision-off behaviour.
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<u32>(" 42 ").unwrap(), 42);
        assert_eq!(from_str::<f64>("-1.5e2").unwrap(), -150.0);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a \"quoted\" line\nwith\ttabs and unicode: \u{20ac}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>("\"\\u20ac\"").unwrap(), "\u{20ac}");
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1f600}"
        );
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![(1u32, 2.5f64), (3, 4.0)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2.5],[3,4.0]]");
        assert_eq!(from_str::<Vec<(u32, f64)>>(&json).unwrap(), v);
        let o: Option<String> = Some("x".into());
        assert_eq!(to_string(&o).unwrap(), "\"x\"");
        assert_eq!(from_str::<Option<String>>("null").unwrap(), None);
    }

    #[test]
    fn float_precision_survives() {
        for x in [0.1, 1.0 / 3.0, f64::MAX, 1e-300, -0.0] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {json}");
        }
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u32>>("[1,2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u32>("{}").is_err());
        assert!(from_str::<u32>("1 2").is_err());
    }

    #[test]
    fn pretty_printing_parses_back() {
        let v = vec![vec![1u32, 2], vec![]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }
}
