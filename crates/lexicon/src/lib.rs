//! # urlid-lexicon
//!
//! Language definitions and lexical resources for URL-based language
//! identification (Baykan, Henzinger, Weber — VLDB 2008).
//!
//! The paper's custom feature set (Section 3.1) relies on a handful of
//! lexical resources:
//!
//! * **country-code top-level domain (ccTLD) tables** mapping TLDs to the
//!   official language of the corresponding country (Section 3.2) —
//!   [`cctld`];
//! * **spelling dictionaries** (the paper uses OpenOffice dictionaries) —
//!   here substituted by embedded frequent-word lists per language —
//!   [`dictionary`] / [`wordlists`];
//! * **city-name dictionaries** built from Wikipedia lists — [`cities`];
//! * **language-specific stop words** used by the paper to construct the
//!   search-engine-result data set — [`stopwords`];
//! * **trained dictionaries** learnt from the training URLs themselves
//!   (a token is added for language *X* if it occurs in ≥ 0.01 % of *X*'s
//!   URLs and ≥ 80 % of the URLs containing it are in *X*) — [`trained`].
//!
//! The central type is [`Language`], a five-variant enum covering the
//! languages studied in the paper: English, German, French, Spanish and
//! Italian.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cctld;
pub mod cities;
pub mod dictionary;
pub mod language;
pub mod stopwords;
pub mod trained;
pub mod wordlists;

pub use cctld::{CcTldTable, TldClass};
pub use dictionary::{Dictionary, DictionarySet};
pub use language::{Language, LanguageParseError, ALL_LANGUAGES};
pub use trained::{TrainedDictionary, TrainedDictionaryBuilder, TrainedDictionaryConfig};
