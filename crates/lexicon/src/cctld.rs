//! Country-code top-level domain tables.
//!
//! Section 3.2 of the paper defines the ccTLD baseline:
//!
//! > Concretely, for French it uses the ccTLDs fr (France), tn (Tunisia),
//! > dz (Algeria), and mg (Madagascar). For German it uses de (Germany)
//! > and at (Austria). For Italian it uses only it (Italy). For Spanish it
//! > uses es (Spain), cl (Chile), mx (Mexico), ar (Argentina), co
//! > (Colombia), pe (Peru), and ve (Venezuela). For English it uses au
//! > (Australia), ie (Ireland), nz (New Zealand), us, gov, mil (United
//! > States), and gb and uk (United Kingdom).
//!
//! The ccTLD+ variant additionally counts `.com` and `.org` as English.
//! This module provides the table as data; the baseline *classifiers*
//! built on top of it live in `urlid-classifiers::cctld`.

use crate::language::{Language, ALL_LANGUAGES};
use serde::{Deserialize, Serialize};

/// ccTLDs assigned to English by the paper.
pub const ENGLISH_CCTLDS: &[&str] = &["au", "ie", "nz", "us", "gov", "mil", "gb", "uk"];
/// ccTLDs assigned to German by the paper.
pub const GERMAN_CCTLDS: &[&str] = &["de", "at"];
/// ccTLDs assigned to French by the paper.
pub const FRENCH_CCTLDS: &[&str] = &["fr", "tn", "dz", "mg"];
/// ccTLDs assigned to Spanish by the paper.
pub const SPANISH_CCTLDS: &[&str] = &["es", "cl", "mx", "ar", "co", "pe", "ve"];
/// ccTLDs assigned to Italian by the paper.
pub const ITALIAN_CCTLDS: &[&str] = &["it"];

/// Generic TLDs tracked separately by the custom feature set (binary
/// features for `.net`, `.org`, `.com`); `.com` and `.org` are added to the
/// English set by the ccTLD+ heuristic.
pub const GENERIC_TLDS: &[&str] = &["com", "org", "net"];

/// How a TLD relates to the languages under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TldClass {
    /// A country-code TLD assigned to one of the five languages.
    CountryCode(Language),
    /// `.com`, `.org` or `.net`.
    Generic,
    /// Any other TLD (e.g. `.ru`, `.jp`, `.info`) — assigned to no language.
    Other,
}

/// The ccTLD → language table of Section 3.2.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CcTldTable {
    /// When true, `.com` and `.org` are counted as English (the ccTLD+
    /// heuristic).
    pub com_org_as_english: bool,
}

impl CcTldTable {
    /// The plain ccTLD table (no `.com`/`.org` mapping).
    pub fn cctld() -> Self {
        Self {
            com_org_as_english: false,
        }
    }

    /// The ccTLD+ table: `.com` and `.org` count as English.
    pub fn cctld_plus() -> Self {
        Self {
            com_org_as_english: true,
        }
    }

    /// The ccTLDs the paper assigns to `lang` (not including the
    /// `.com`/`.org` extension of ccTLD+).
    pub fn cctlds_for(lang: Language) -> &'static [&'static str] {
        match lang {
            Language::English => ENGLISH_CCTLDS,
            Language::German => GERMAN_CCTLDS,
            Language::French => FRENCH_CCTLDS,
            Language::Spanish => SPANISH_CCTLDS,
            Language::Italian => ITALIAN_CCTLDS,
        }
    }

    /// Classify a TLD string (without leading dot, case-insensitive).
    pub fn classify(&self, tld: &str) -> TldClass {
        let tld = tld.trim_start_matches('.').to_ascii_lowercase();
        for lang in ALL_LANGUAGES {
            if Self::cctlds_for(lang).contains(&tld.as_str()) {
                return TldClass::CountryCode(lang);
            }
        }
        if GENERIC_TLDS.contains(&tld.as_str()) {
            if self.com_org_as_english && (tld == "com" || tld == "org") {
                return TldClass::CountryCode(Language::English);
            }
            return TldClass::Generic;
        }
        TldClass::Other
    }

    /// The language this table assigns to a TLD, if any.
    pub fn language_of(&self, tld: &str) -> Option<Language> {
        match self.classify(tld) {
            TldClass::CountryCode(lang) => Some(lang),
            _ => None,
        }
    }

    /// Does `token` (e.g. a host label such as the `de` in
    /// `de.wikipedia.org`) match a ccTLD of `lang`? Used by the
    /// "generalised" custom features that look for country codes anywhere
    /// before the first slash.
    pub fn token_matches_language(token: &str, lang: Language) -> bool {
        let token = token.to_ascii_lowercase();
        Self::cctlds_for(lang).contains(&token.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cctld_lists_are_complete() {
        assert_eq!(ENGLISH_CCTLDS.len(), 8);
        assert_eq!(GERMAN_CCTLDS.len(), 2);
        assert_eq!(FRENCH_CCTLDS.len(), 4);
        assert_eq!(SPANISH_CCTLDS.len(), 7);
        assert_eq!(ITALIAN_CCTLDS.len(), 1);
    }

    #[test]
    fn classify_country_codes() {
        let t = CcTldTable::cctld();
        assert_eq!(t.classify("de"), TldClass::CountryCode(Language::German));
        assert_eq!(t.classify(".AT"), TldClass::CountryCode(Language::German));
        assert_eq!(t.classify("fr"), TldClass::CountryCode(Language::French));
        assert_eq!(t.classify("mx"), TldClass::CountryCode(Language::Spanish));
        assert_eq!(t.classify("it"), TldClass::CountryCode(Language::Italian));
        assert_eq!(t.classify("uk"), TldClass::CountryCode(Language::English));
        assert_eq!(t.classify("gov"), TldClass::CountryCode(Language::English));
    }

    #[test]
    fn generic_and_other_tlds() {
        let t = CcTldTable::cctld();
        assert_eq!(t.classify("com"), TldClass::Generic);
        assert_eq!(t.classify("org"), TldClass::Generic);
        assert_eq!(t.classify("net"), TldClass::Generic);
        assert_eq!(t.classify("ru"), TldClass::Other);
        assert_eq!(t.classify("jp"), TldClass::Other);
        assert_eq!(t.classify("info"), TldClass::Other);
        assert_eq!(t.language_of("com"), None);
    }

    #[test]
    fn cctld_plus_maps_com_org_to_english() {
        let t = CcTldTable::cctld_plus();
        assert_eq!(t.language_of("com"), Some(Language::English));
        assert_eq!(t.language_of("org"), Some(Language::English));
        // .net stays generic even under ccTLD+.
        assert_eq!(t.classify("net"), TldClass::Generic);
        // Country codes are unaffected.
        assert_eq!(t.language_of("de"), Some(Language::German));
    }

    #[test]
    fn no_tld_is_assigned_to_two_languages() {
        let mut seen = std::collections::HashSet::new();
        for lang in ALL_LANGUAGES {
            for tld in CcTldTable::cctlds_for(lang) {
                assert!(seen.insert(*tld), "tld {tld} assigned twice");
            }
        }
    }

    #[test]
    fn token_matching_is_case_insensitive() {
        assert!(CcTldTable::token_matches_language("DE", Language::German));
        assert!(CcTldTable::token_matches_language("fr", Language::French));
        assert!(!CcTldTable::token_matches_language("de", Language::French));
        assert!(!CcTldTable::token_matches_language(
            "wiki",
            Language::German
        ));
    }
}
