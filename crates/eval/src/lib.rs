//! # urlid-eval
//!
//! Evaluation machinery for the experiments of Baykan, Henzinger, Weber
//! (VLDB 2008):
//!
//! * [`metrics`] — the paper's evaluation measures (Section 4.2): recall
//!   `R = p(+|+)`, negative success ratio `p(−|−)`, the *balanced*
//!   precision `P` computed for `n₊ = n₋`, and the F-measure;
//! * [`confusion`] — 5×5 confusion matrices in the paper's format (rows =
//!   test-set language, columns = binary classifiers, cells = percentages,
//!   rows and columns need not sum to 100 %);
//! * [`evaluate`] — running a set of five binary URL classifiers (or
//!   pre-computed annotations, e.g. from the simulated humans) over a
//!   labelled test set;
//! * [`sweep`] — the Section 6 training-size sweep (Figure 2) and the
//!   domain-memorisation analysis (Figure 3);
//! * [`feature_selection`] — greedy step-wise forward feature selection as
//!   used in Section 3.1 to pick the 15 custom features;
//! * [`report`] — plain-text renderings of the paper's tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confusion;
pub mod evaluate;
pub mod feature_selection;
pub mod metrics;
pub mod report;
pub mod sweep;

pub use confusion::ConfusionMatrix;
pub use evaluate::{evaluate_annotations, evaluate_classifier_set, EvaluationResult};
pub use feature_selection::forward_selection;
pub use metrics::{BinaryCounts, BinaryMetrics, MacroMetrics};
pub use sweep::{domain_memorization_curve, training_curve, SweepPoint};
