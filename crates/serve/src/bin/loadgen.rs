//! `loadgen` — hammer a running `urlid serve` instance with a
//! corpus-generated URL mix and write `BENCH_serve.json`.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7878 [--requests 10000] [--concurrency 4]
//!         [--unique 2000] [--seed 7] [--out BENCH_serve.json]
//! ```

use std::process::ExitCode;
use urlid_serve::{run_loadgen, LoadgenConfig};

const USAGE: &str = "\
loadgen — load generator for the urlid serving layer

USAGE:
  loadgen --addr <host:port> [--requests <n>] [--concurrency <n>]
          [--unique <n>] [--seed <u64>] [--out <report.json>]
";

fn parse_config(argv: &[String]) -> Result<LoadgenConfig, String> {
    let mut config = LoadgenConfig::default();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument {:?}\n\n{USAGE}", argv[i]))?;
        if key == "help" {
            return Err(USAGE.to_owned());
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("missing value for --{key}"))?;
        match key {
            "addr" => config.addr = value.clone(),
            "requests" => {
                config.requests = value
                    .parse()
                    .map_err(|_| format!("bad --requests {value:?}"))?
            }
            "concurrency" => {
                config.concurrency = value
                    .parse()
                    .map_err(|_| format!("bad --concurrency {value:?}"))?
            }
            "unique" => {
                config.unique_urls = value
                    .parse()
                    .map_err(|_| format!("bad --unique {value:?}"))?
            }
            "seed" => config.seed = value.parse().map_err(|_| format!("bad --seed {value:?}"))?,
            "out" => config.out = Some(value.into()),
            other => return Err(format!("unknown flag --{other}\n\n{USAGE}")),
        }
        i += 2;
    }
    Ok(config)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_config(&argv) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match run_loadgen(&config) {
        Ok(report) => {
            eprintln!(
                "{} requests in {:.2}s -> {:.0} req/s, p50 {:.3} ms, p99 {:.3} ms, cache hit rate {:.1}% ({} errors)",
                report.requests,
                report.duration_secs,
                report.throughput_rps,
                report.latency.p50_ms,
                report.latency.p99_ms,
                report.cache.hit_rate * 100.0,
                report.errors,
            );
            if let Some(out) = &config.out {
                eprintln!("report written to {}", out.display());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("loadgen failed: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<LoadgenConfig, String> {
        parse_config(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_and_overrides() {
        let c = parse(&[]).unwrap();
        assert_eq!(c.requests, 10_000);
        let c = parse(&["--addr", "1.2.3.4:99", "--requests", "50", "--unique", "7"]).unwrap();
        assert_eq!(c.addr, "1.2.3.4:99");
        assert_eq!(c.requests, 50);
        assert_eq!(c.unique_urls, 7);
    }

    #[test]
    fn rejects_unknown_flags_and_bad_values() {
        assert!(parse(&["--nope", "1"]).is_err());
        assert!(parse(&["--requests", "many"]).is_err());
        assert!(parse(&["positional"]).is_err());
        assert!(parse(&["--help"]).unwrap_err().contains("USAGE"));
    }
}
