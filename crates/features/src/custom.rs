//! Custom-made features — Section 3.1, "Custom-made features".
//!
//! The paper builds 74 hand-designed features per URL, derived from
//! top-level-domain information and from dictionaries, "including small
//! variants where dictionaries were merged and where counters were
//! maintained separately before the first '/' of a URL and after". A
//! greedy forward feature selection for the decision tree then identifies
//! 15 features as the most relevant ones: for each of the five languages,
//! (a) the binary ccTLD-country-code-before-the-first-slash feature,
//! (b) the token count in the (OpenOffice) word dictionary and
//! (c) the token count in the trained dictionary.
//!
//! This module implements the full 74-feature vector and the selected
//! 15-feature subset ([`CustomFeatureSet`]). The exact composition of the
//! 74 features is necessarily a reconstruction (the paper lists the
//! ingredients but not every variant); the reconstruction uses exactly the
//! ingredients named in the paper and reproduces the documented count.

use crate::dataset::LabeledUrl;
use crate::extractor::{FeatureExtractor, FeatureSetKind, ShardedFit};
use crate::vector::SparseVector;
use serde::{Deserialize, Serialize};
use urlid_lexicon::{
    stopwords, CcTldTable, Dictionary, DictionarySet, Language, TrainedDictionary,
    TrainedDictionaryBuilder, ALL_LANGUAGES,
};
use urlid_tokenize::{ParsedUrl, Tokenizer, TokenizerConfig};

/// Number of per-language feature slots.
pub const PER_LANGUAGE_FEATURES: usize = 12;
/// Number of global (language-independent) feature slots.
pub const GLOBAL_FEATURES: usize = 14;
/// Total number of custom features (5 × 12 + 14 = 74, matching the paper).
pub const NUM_CUSTOM_FEATURES: usize = 5 * PER_LANGUAGE_FEATURES + GLOBAL_FEATURES;
/// Number of features in the selected subset (paper: 15).
pub const NUM_SELECTED_FEATURES: usize = 15;

/// Which custom feature set to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CustomFeatureSet {
    /// All 74 features.
    Full74,
    /// The 15 features selected by greedy forward selection (paper
    /// Section 3.1): per language, the ccTLD-before-first-slash binary
    /// feature, the word-dictionary count and the trained-dictionary count.
    #[default]
    Selected15,
}

impl CustomFeatureSet {
    /// Dimensionality of the feature set.
    pub fn dim(self) -> usize {
        match self {
            CustomFeatureSet::Full74 => NUM_CUSTOM_FEATURES,
            CustomFeatureSet::Selected15 => NUM_SELECTED_FEATURES,
        }
    }
}

/// Per-language feature slot indices within a language block.
mod slot {
    pub const TLD_SIMPLE: usize = 0;
    pub const TLD_BEFORE_SLASH: usize = 1;
    pub const CC_IN_PATH: usize = 2;
    pub const WORDS_HOST: usize = 3;
    pub const WORDS_PATH: usize = 4;
    pub const WORDS_TOTAL: usize = 5;
    pub const CITIES_HOST: usize = 6;
    pub const CITIES_TOTAL: usize = 7;
    pub const TRAINED_HOST: usize = 8;
    pub const TRAINED_PATH: usize = 9;
    pub const TRAINED_TOTAL: usize = 10;
    pub const STOPWORDS_TOTAL: usize = 11;
}

/// Names of the per-language slots, aligned with the `slot` module.
const SLOT_NAMES: [&str; PER_LANGUAGE_FEATURES] = [
    "tld_is_cctld",
    "cctld_token_before_first_slash",
    "cctld_token_in_path",
    "word_dict_hits_host",
    "word_dict_hits_path",
    "word_dict_hits_total",
    "city_dict_hits_host",
    "city_dict_hits_total",
    "trained_dict_hits_host",
    "trained_dict_hits_path",
    "trained_dict_hits_total",
    "stopword_hits_total",
];

/// Names of the global features.
const GLOBAL_NAMES: [&str; GLOBAL_FEATURES] = [
    "tld_is_com",
    "tld_is_org",
    "tld_is_net",
    "hyphen_count",
    "token_count_total",
    "token_count_host",
    "token_count_path",
    "avg_token_len",
    "max_token_len",
    "url_len",
    "path_depth",
    "digit_count",
    "has_query",
    "tld_is_other",
];

/// The custom-made feature extractor.
///
/// Fitting builds the trained dictionaries of Section 3.1 from the
/// labelled training URLs; everything else (ccTLD tables, word and city
/// dictionaries) is static.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CustomFeatureExtractor {
    feature_set: CustomFeatureSet,
    #[serde(skip, default = "DictionarySet::builtin_words")]
    word_dicts: DictionarySet,
    #[serde(skip, default = "DictionarySet::builtin_cities")]
    city_dicts: DictionarySet,
    #[serde(skip, default = "default_stopword_dicts")]
    stopword_dicts: DictionarySet,
    trained: TrainedDictionary,
    cctld: CcTldTable,
    #[serde(skip, default = "lossless_tokenizer")]
    lossless_tokenizer: Tokenizer,
    #[serde(skip, default)]
    tokenizer: Tokenizer,
}

fn default_stopword_dicts() -> DictionarySet {
    DictionarySet::build(|lang| {
        Dictionary::from_words(stopwords::stopwords_for(lang).iter().copied())
    })
}

fn lossless_tokenizer() -> Tokenizer {
    Tokenizer::new(TokenizerConfig {
        min_len: 1,
        drop_special_words: false,
        lowercase: true,
    })
}

impl Default for CustomFeatureExtractor {
    fn default() -> Self {
        Self::new(CustomFeatureSet::Selected15)
    }
}

impl CustomFeatureExtractor {
    /// Create an extractor producing the given feature set.
    pub fn new(feature_set: CustomFeatureSet) -> Self {
        Self {
            feature_set,
            word_dicts: DictionarySet::builtin_words(),
            city_dicts: DictionarySet::builtin_cities(),
            stopword_dicts: default_stopword_dicts(),
            trained: TrainedDictionary::empty(),
            cctld: CcTldTable::cctld(),
            lossless_tokenizer: lossless_tokenizer(),
            tokenizer: Tokenizer::default(),
        }
    }

    /// Create an extractor producing all 74 features.
    pub fn full() -> Self {
        Self::new(CustomFeatureSet::Full74)
    }

    /// Which feature set the extractor produces.
    pub fn feature_set(&self) -> CustomFeatureSet {
        self.feature_set
    }

    /// The trained dictionary learnt during [`FeatureExtractor::fit`].
    pub fn trained_dictionary(&self) -> &TrainedDictionary {
        &self.trained
    }

    /// Compute the full 74-feature dense vector for a URL.
    pub fn extract_full(&self, url: &str) -> Vec<f64> {
        let parsed = ParsedUrl::parse(url);
        let host_tokens: Vec<String> = self.lossless_tokenizer.tokenize(parsed.host());
        // Path tokens: everything after the first slash, including query.
        let after_host = {
            let mut s = String::new();
            s.push_str(parsed.path());
            if let Some(q) = parsed.query() {
                s.push('/');
                s.push_str(q);
            }
            s
        };
        let path_tokens: Vec<String> = self.lossless_tokenizer.tokenize(&after_host);
        // Filtered tokens (paper tokenisation) for dictionary counting.
        let host_words: Vec<String> = self.tokenizer.tokenize(parsed.host());
        let path_words: Vec<String> = self.tokenizer.tokenize(&after_host);

        let mut f = vec![0.0; NUM_CUSTOM_FEATURES];

        for lang in ALL_LANGUAGES {
            let base = lang.index() * PER_LANGUAGE_FEATURES;
            // TLD features.
            let tld_lang = parsed.tld().and_then(|t| self.cctld.language_of(t));
            f[base + slot::TLD_SIMPLE] = (tld_lang == Some(lang)) as u8 as f64;
            let before_slash_hit = host_tokens
                .iter()
                .any(|t| CcTldTable::token_matches_language(t, lang));
            f[base + slot::TLD_BEFORE_SLASH] = before_slash_hit as u8 as f64;
            let in_path_hit = path_tokens
                .iter()
                .any(|t| CcTldTable::token_matches_language(t, lang));
            f[base + slot::CC_IN_PATH] = in_path_hit as u8 as f64;
            // Word dictionary counts.
            let wd = self.word_dicts.get(lang);
            f[base + slot::WORDS_HOST] = wd.count_hits(&host_words) as f64;
            f[base + slot::WORDS_PATH] = wd.count_hits(&path_words) as f64;
            f[base + slot::WORDS_TOTAL] = f[base + slot::WORDS_HOST] + f[base + slot::WORDS_PATH];
            // City dictionary counts.
            let cd = self.city_dicts.get(lang);
            f[base + slot::CITIES_HOST] = cd.count_hits(&host_words) as f64;
            f[base + slot::CITIES_TOTAL] =
                f[base + slot::CITIES_HOST] + cd.count_hits(&path_words) as f64;
            // Trained dictionary counts.
            let td = self.trained.dictionary(lang);
            f[base + slot::TRAINED_HOST] = td.count_hits(&host_words) as f64;
            f[base + slot::TRAINED_PATH] = td.count_hits(&path_words) as f64;
            f[base + slot::TRAINED_TOTAL] =
                f[base + slot::TRAINED_HOST] + f[base + slot::TRAINED_PATH];
            // Stop-word counts.
            let sd = self.stopword_dicts.get(lang);
            f[base + slot::STOPWORDS_TOTAL] =
                sd.count_hits(&host_words) as f64 + sd.count_hits(&path_words) as f64;
        }

        // Global features.
        let g = 5 * PER_LANGUAGE_FEATURES;
        let tld = parsed.tld().unwrap_or("");
        f[g] = (tld == "com") as u8 as f64;
        f[g + 1] = (tld == "org") as u8 as f64;
        f[g + 2] = (tld == "net") as u8 as f64;
        f[g + 3] = parsed.hyphen_count() as f64;
        let all_words: Vec<&String> = host_words.iter().chain(path_words.iter()).collect();
        f[g + 4] = all_words.len() as f64;
        f[g + 5] = host_words.len() as f64;
        f[g + 6] = path_words.len() as f64;
        f[g + 7] = if all_words.is_empty() {
            0.0
        } else {
            all_words.iter().map(|w| w.len()).sum::<usize>() as f64 / all_words.len() as f64
        };
        f[g + 8] = all_words.iter().map(|w| w.len()).max().unwrap_or(0) as f64;
        f[g + 9] = url.len() as f64;
        f[g + 10] = parsed.path_depth() as f64;
        f[g + 11] = url.bytes().filter(|b| b.is_ascii_digit()).count() as f64;
        f[g + 12] = parsed.query().is_some() as u8 as f64;
        let tld_known = ALL_LANGUAGES
            .iter()
            .any(|&l| CcTldTable::cctlds_for(l).contains(&tld))
            || ["com", "org", "net"].contains(&tld);
        f[g + 13] = (!tld.is_empty() && !tld_known) as u8 as f64;

        f
    }

    /// Indices (into the 74-feature vector) of the selected 15 features.
    pub fn selected_indices() -> [usize; NUM_SELECTED_FEATURES] {
        let mut out = [0usize; NUM_SELECTED_FEATURES];
        let mut k = 0;
        for lang in ALL_LANGUAGES {
            let base = lang.index() * PER_LANGUAGE_FEATURES;
            out[k] = base + slot::TLD_BEFORE_SLASH;
            out[k + 1] = base + slot::WORDS_TOTAL;
            out[k + 2] = base + slot::TRAINED_TOTAL;
            k += 3;
        }
        out
    }

    /// Name of a feature in the *full* 74-feature space.
    pub fn full_feature_name(index: usize) -> Option<String> {
        if index < 5 * PER_LANGUAGE_FEATURES {
            let lang = Language::from_index(index / PER_LANGUAGE_FEATURES);
            let slot = index % PER_LANGUAGE_FEATURES;
            Some(format!("{}:{}", lang.iso_code(), SLOT_NAMES[slot]))
        } else if index < NUM_CUSTOM_FEATURES {
            Some(format!(
                "global:{}",
                GLOBAL_NAMES[index - 5 * PER_LANGUAGE_FEATURES]
            ))
        } else {
            None
        }
    }

    fn project(&self, full: Vec<f64>) -> Vec<f64> {
        match self.feature_set {
            CustomFeatureSet::Full74 => full,
            CustomFeatureSet::Selected15 => {
                Self::selected_indices().iter().map(|&i| full[i]).collect()
            }
        }
    }

    /// The dense feature vector in the configured feature set.
    pub fn extract(&self, url: &str) -> Vec<f64> {
        self.project(self.extract_full(url))
    }
}

impl FeatureExtractor for CustomFeatureExtractor {
    fn fit(&mut self, training: &[LabeledUrl]) {
        let counts = self.observe_shard(training);
        self.finish_fit(Some(counts));
    }

    fn transform(&self, url: &str) -> SparseVector {
        let dense = self.extract(url);
        SparseVector::from_pairs(
            dense
                .into_iter()
                .enumerate()
                .filter(|(_, v)| *v != 0.0)
                .map(|(i, v)| (i as u32, v)),
        )
    }

    fn dim(&self) -> usize {
        self.feature_set.dim()
    }

    fn feature_name(&self, index: u32) -> Option<String> {
        match self.feature_set {
            CustomFeatureSet::Full74 => Self::full_feature_name(index as usize),
            CustomFeatureSet::Selected15 => Self::selected_indices()
                .get(index as usize)
                .and_then(|&i| Self::full_feature_name(i)),
        }
    }

    fn kind(&self) -> FeatureSetKind {
        FeatureSetKind::Custom
    }
}

impl ShardedFit for CustomFeatureExtractor {
    type Partial = TrainedDictionaryBuilder;

    fn observe_shard(&self, shard: &[LabeledUrl]) -> TrainedDictionaryBuilder {
        let mut builder = TrainedDictionaryBuilder::default();
        for example in shard {
            builder.add_url(&example.url, example.language);
        }
        builder
    }

    fn merge_partials(
        &self,
        mut acc: TrainedDictionaryBuilder,
        next: TrainedDictionaryBuilder,
    ) -> TrainedDictionaryBuilder {
        acc.merge(next);
        acc
    }

    fn finish_fit(&mut self, merged: Option<TrainedDictionaryBuilder>) {
        self.trained = merged.unwrap_or_default().build();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training() -> Vec<LabeledUrl> {
        let mut v = Vec::new();
        for i in 0..30 {
            v.push(LabeledUrl::new(
                format!("http://home.arcor.de/nutzer{i}/seite"),
                Language::German,
            ));
            v.push(LabeledUrl::new(
                format!("http://www.galeon.com/usuario{i}/pagina"),
                Language::Spanish,
            ));
            v.push(LabeledUrl::new(
                format!("http://news{i}.co.uk/weather/story"),
                Language::English,
            ));
        }
        v
    }

    #[test]
    fn the_count_is_74() {
        assert_eq!(NUM_CUSTOM_FEATURES, 74);
        assert_eq!(NUM_SELECTED_FEATURES, 15);
        assert_eq!(CustomFeatureSet::Full74.dim(), 74);
        assert_eq!(CustomFeatureSet::Selected15.dim(), 15);
    }

    #[test]
    fn every_full_feature_has_a_name() {
        for i in 0..NUM_CUSTOM_FEATURES {
            assert!(
                CustomFeatureExtractor::full_feature_name(i).is_some(),
                "index {i}"
            );
        }
        assert!(CustomFeatureExtractor::full_feature_name(NUM_CUSTOM_FEATURES).is_none());
    }

    #[test]
    fn selected_indices_match_paper_description() {
        // 5 x ccTLD-before-slash, 5 x word-dict count, 5 x trained-dict count.
        let idx = CustomFeatureExtractor::selected_indices();
        let names: Vec<String> = idx
            .iter()
            .map(|&i| CustomFeatureExtractor::full_feature_name(i).unwrap())
            .collect();
        assert_eq!(
            names
                .iter()
                .filter(|n| n.contains("cctld_token_before_first_slash"))
                .count(),
            5
        );
        assert_eq!(
            names
                .iter()
                .filter(|n| n.contains("word_dict_hits_total"))
                .count(),
            5
        );
        assert_eq!(
            names
                .iter()
                .filter(|n| n.contains("trained_dict_hits_total"))
                .count(),
            5
        );
    }

    #[test]
    fn tld_features_fire_for_german_url() {
        let ex = CustomFeatureExtractor::full();
        let f = ex.extract_full("http://www.beispiel.de/seite");
        let de = Language::German.index() * PER_LANGUAGE_FEATURES;
        assert_eq!(f[de + slot::TLD_SIMPLE], 1.0);
        assert_eq!(f[de + slot::TLD_BEFORE_SLASH], 1.0);
        let en = Language::English.index() * PER_LANGUAGE_FEATURES;
        assert_eq!(f[en + slot::TLD_SIMPLE], 0.0);
    }

    #[test]
    fn generalized_tld_feature_sees_subdomain_country_code() {
        // Paper example: http://fr.search.yahoo.com has the French feature set.
        let ex = CustomFeatureExtractor::full();
        let f = ex.extract_full("http://fr.search.yahoo.com/");
        let fr = Language::French.index() * PER_LANGUAGE_FEATURES;
        assert_eq!(f[fr + slot::TLD_SIMPLE], 0.0, "TLD is .com, not .fr");
        assert_eq!(
            f[fr + slot::TLD_BEFORE_SLASH],
            1.0,
            "fr label before first slash"
        );
        // And http://de.wikipedia.org counts as German before-slash.
        let f2 = ex.extract_full("http://de.wikipedia.org/wiki/Berlin");
        let de = Language::German.index() * PER_LANGUAGE_FEATURES;
        assert_eq!(f2[de + slot::TLD_BEFORE_SLASH], 1.0);
    }

    #[test]
    fn dictionary_counts_fire() {
        let ex = CustomFeatureExtractor::full();
        let f = ex.extract_full("http://www.wasserbett-kaufen.com/angebote");
        let de = Language::German.index() * PER_LANGUAGE_FEATURES;
        assert!(
            f[de + slot::WORDS_TOTAL] >= 2.0,
            "wasserbett, kaufen, angebote are German words"
        );
        let en = Language::English.index() * PER_LANGUAGE_FEATURES;
        assert_eq!(f[en + slot::WORDS_TOTAL], 0.0);
    }

    #[test]
    fn city_dictionary_feature() {
        let ex = CustomFeatureExtractor::full();
        let f = ex.extract_full("http://www.hotel-heidelberg.de/zimmer");
        let de = Language::German.index() * PER_LANGUAGE_FEATURES;
        assert!(f[de + slot::CITIES_TOTAL] >= 1.0);
    }

    #[test]
    fn trained_dictionary_requires_fit() {
        let mut ex = CustomFeatureExtractor::full();
        let before = ex.extract_full("http://home.arcor.de/jemand");
        let de = Language::German.index() * PER_LANGUAGE_FEATURES;
        assert_eq!(before[de + slot::TRAINED_TOTAL], 0.0);
        ex.fit(&training());
        let after = ex.extract_full("http://home.arcor.de/jemand");
        assert!(
            after[de + slot::TRAINED_TOTAL] >= 1.0,
            "arcor learnt as German"
        );
    }

    #[test]
    fn global_features() {
        let ex = CustomFeatureExtractor::full();
        let f = ex.extract_full("http://www.wasserbett-test.com/billig-kaufen?farbe=blau");
        let g = 5 * PER_LANGUAGE_FEATURES;
        assert_eq!(f[g], 1.0, "tld is .com");
        assert_eq!(f[g + 1], 0.0);
        assert_eq!(f[g + 3], 2.0, "two hyphens");
        assert_eq!(f[g + 12], 1.0, "has query");
        assert!(f[g + 9] > 30.0, "url length");
    }

    #[test]
    fn selected15_transform_has_at_most_15_dims() {
        let mut ex = CustomFeatureExtractor::default();
        ex.fit(&training());
        assert_eq!(ex.dim(), 15);
        let v = ex.transform("http://home.arcor.de/jemand/seite");
        assert!(v.min_dim() <= 15);
        assert!(v.sum() > 0.0);
        assert_eq!(ex.kind(), FeatureSetKind::Custom);
    }

    #[test]
    fn feature_names_in_selected_space() {
        let ex = CustomFeatureExtractor::default();
        let name0 = ex.feature_name(0).unwrap();
        assert!(name0.starts_with("en:"), "{name0}");
        assert!(ex.feature_name(15).is_none());
    }

    #[test]
    fn extract_handles_garbage_urls() {
        let ex = CustomFeatureExtractor::full();
        for u in ["", "not a url", "http://", "12345", "http://???/"] {
            let f = ex.extract_full(u);
            assert_eq!(f.len(), NUM_CUSTOM_FEATURES);
            assert!(f.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn serde_round_trip_keeps_trained_dictionary() {
        let mut ex = CustomFeatureExtractor::default();
        ex.fit(&training());
        let json = serde_json::to_string(&ex).unwrap();
        let back: CustomFeatureExtractor = serde_json::from_str(&json).unwrap();
        assert_eq!(
            back.transform("http://home.arcor.de/x"),
            ex.transform("http://home.arcor.de/x")
        );
    }
}
