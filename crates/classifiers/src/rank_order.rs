//! Cavnar–Trenkle rank-order classifier.
//!
//! Section 2 of the paper: "Cavnar and Trenkle \[2\] use the aforementioned
//! rank-order statistic, which compares the different frequency ranks."
//! The paper's authors compared Markov models, rank-order statistics and
//! relative entropy in preliminary experiments and kept relative entropy
//! because it performed best; this module implements the rank-order
//! classifier so that the `ablations` experiment can reproduce that
//! preliminary comparison.
//!
//! The classical scheme: build, per class, the list of the `k` most
//! frequent features ("the language profile"), ordered by frequency. A
//! test document is turned into the same kind of ranked profile and scored
//! by the sum of rank displacements ("out-of-place" measure); features
//! missing from the class profile incur the maximum penalty. The document
//! is assigned to the class with the smaller total displacement.

use crate::compile::{CompileScorer, Lowering};
use crate::model::VectorClassifier;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use urlid_features::SparseVector;

/// Configuration for the rank-order classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankOrderConfig {
    /// Number of top features kept in each class profile (Cavnar–Trenkle
    /// classically use 300 n-grams).
    pub profile_size: usize,
}

impl Default for RankOrderConfig {
    fn default() -> Self {
        Self { profile_size: 300 }
    }
}

/// A class profile: feature index → rank (0 = most frequent).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
struct Profile {
    ranks: HashMap<u32, usize>,
}

impl Profile {
    /// Build the profile of the `k` most frequent features of a class.
    fn build(examples: &[SparseVector], k: usize) -> Self {
        let mut totals: HashMap<u32, f64> = HashMap::new();
        for v in examples {
            for (i, x) in v.iter() {
                *totals.entry(i).or_insert(0.0) += x;
            }
        }
        let mut sorted: Vec<(u32, f64)> = totals.into_iter().collect();
        // Sort by descending frequency, ties by index for determinism.
        // `total_cmp` instead of `partial_cmp(..).unwrap()`: a NaN total
        // (possible if a pathological extractor emits NaN) must not
        // panic the sort.
        sorted.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let ranks = sorted
            .into_iter()
            .take(k)
            .enumerate()
            .map(|(rank, (feature, _))| (feature, rank))
            .collect();
        Self { ranks }
    }

    fn len(&self) -> usize {
        self.ranks.len()
    }

    /// The out-of-place distance of a test profile to this class profile.
    fn out_of_place(&self, test_ranked: &[(u32, usize)], max_penalty: usize) -> f64 {
        test_ranked
            .iter()
            .map(|(feature, test_rank)| match self.ranks.get(feature) {
                Some(class_rank) => class_rank.abs_diff(*test_rank) as f64,
                None => max_penalty as f64,
            })
            .sum()
    }
}

/// A trained rank-order binary classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankOrder {
    positive: Profile,
    negative: Profile,
    config: RankOrderConfig,
}

impl RankOrder {
    /// Train from positive and negative example feature vectors.
    pub fn train(
        positives: &[SparseVector],
        negatives: &[SparseVector],
        config: RankOrderConfig,
    ) -> Self {
        assert!(config.profile_size >= 1, "profile size must be at least 1");
        assert!(
            !positives.is_empty() && !negatives.is_empty(),
            "rank-order needs at least one example of each class"
        );
        Self {
            positive: Profile::build(positives, config.profile_size),
            negative: Profile::build(negatives, config.profile_size),
            config,
        }
    }

    /// Number of profile entries actually stored (positive, negative).
    pub fn profile_sizes(&self) -> (usize, usize) {
        (self.positive.len(), self.negative.len())
    }

    /// Rank the features of a test vector by descending value.
    fn rank_test(features: &SparseVector) -> Vec<(u32, usize)> {
        let mut entries: Vec<(u32, f64)> = features.iter().collect();
        entries.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        entries
            .into_iter()
            .enumerate()
            .map(|(rank, (feature, _))| (feature, rank))
            .collect()
    }
}

impl VectorClassifier for RankOrder {
    fn score(&self, features: &SparseVector) -> f64 {
        if features.is_empty() {
            return -1.0;
        }
        let ranked = Self::rank_test(features);
        let max_penalty = self.config.profile_size;
        let d_pos = self.positive.out_of_place(&ranked, max_penalty);
        let d_neg = self.negative.out_of_place(&ranked, max_penalty);
        // Smaller distance to the positive profile means "yes"; normalise
        // by the number of test features so scores are comparable across
        // URLs of different lengths.
        (d_neg - d_pos) / ranked.len() as f64
    }

    fn as_compile(&self) -> Option<&dyn CompileScorer> {
        Some(self)
    }
}

impl CompileScorer for RankOrder {
    /// The profiles become dense per-feature rank lanes (−1.0 marks a
    /// feature outside the profile, incurring the out-of-place maximum
    /// penalty). Ranks are small integers, so the `f64` encoding — and
    /// the fused pass's float subtraction — is exact.
    fn lower(&self, dim: usize) -> Lowering {
        let dense = |profile: &Profile| -> Vec<f64> {
            let mut ranks = vec![-1.0f64; dim];
            for (&feature, &rank) in &profile.ranks {
                if (feature as usize) < dim {
                    ranks[feature as usize] = rank as f64;
                }
            }
            ranks
        };
        Lowering::RankOrder {
            rank_pos: dense(&self.positive),
            rank_neg: dense(&self.negative),
            max_penalty: self.config.profile_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().copied())
    }

    fn toy_training() -> (Vec<SparseVector>, Vec<SparseVector>) {
        // Positive class: features 0..3 frequent, 0 most frequent.
        let positives = vec![
            vec_of(&[(0, 3.0), (1, 2.0), (2, 1.0)]),
            vec_of(&[(0, 2.0), (1, 1.0), (3, 1.0)]),
            vec_of(&[(0, 4.0), (2, 2.0), (3, 1.0)]),
        ];
        // Negative class: features 4..7.
        let negatives = vec![
            vec_of(&[(4, 3.0), (5, 2.0), (6, 1.0)]),
            vec_of(&[(4, 2.0), (5, 1.0), (7, 1.0)]),
            vec_of(&[(4, 4.0), (6, 2.0), (7, 1.0)]),
        ];
        (positives, negatives)
    }

    #[test]
    fn separable_data_is_classified_correctly() {
        let (pos, neg) = toy_training();
        let ro = RankOrder::train(&pos, &neg, RankOrderConfig::default());
        assert!(ro.classify(&vec_of(&[(0, 2.0), (1, 1.0)])));
        assert!(!ro.classify(&vec_of(&[(4, 2.0), (5, 1.0)])));
    }

    #[test]
    fn profile_respects_size_limit() {
        let (pos, neg) = toy_training();
        let ro = RankOrder::train(&pos, &neg, RankOrderConfig { profile_size: 2 });
        let (p, n) = ro.profile_sizes();
        assert_eq!(p, 2);
        assert_eq!(n, 2);
        // Features outside the top-2 profile incur the max penalty but the
        // decision is still correct for clear cases.
        assert!(ro.classify(&vec_of(&[(0, 2.0), (1, 1.0)])));
    }

    #[test]
    fn rank_agreement_matters_not_raw_counts() {
        // Same support, different rank order: the test vector ranking
        // feature 1 above feature 0 is farther from a profile where 0 is
        // the top feature.
        let (pos, neg) = toy_training();
        let ro = RankOrder::train(&pos, &neg, RankOrderConfig::default());
        let aligned = ro.score(&vec_of(&[(0, 5.0), (1, 1.0)]));
        let shuffled = ro.score(&vec_of(&[(0, 1.0), (1, 5.0)]));
        assert!(aligned >= shuffled);
    }

    #[test]
    fn empty_vector_is_rejected() {
        let (pos, neg) = toy_training();
        let ro = RankOrder::train(&pos, &neg, RankOrderConfig::default());
        assert!(!ro.classify(&SparseVector::new()));
    }

    #[test]
    fn unknown_features_push_towards_neither_class() {
        let (pos, neg) = toy_training();
        let ro = RankOrder::train(&pos, &neg, RankOrderConfig::default());
        // A vector of only unseen features gets the max penalty from both
        // profiles -> score 0 -> classified negative (conservative).
        let s = ro.score(&vec_of(&[(100, 1.0), (101, 1.0)]));
        assert!(s.abs() < 1e-9);
        assert!(!ro.classify(&vec_of(&[(100, 1.0)])));
    }

    #[test]
    #[should_panic]
    fn empty_training_panics() {
        let _ = RankOrder::train(&[], &[], RankOrderConfig::default());
    }

    #[test]
    #[should_panic]
    fn zero_profile_size_panics() {
        let (pos, neg) = toy_training();
        let _ = RankOrder::train(&pos, &neg, RankOrderConfig { profile_size: 0 });
    }

    #[test]
    fn serde_round_trip() {
        let (pos, neg) = toy_training();
        let ro = RankOrder::train(&pos, &neg, RankOrderConfig::default());
        let json = serde_json::to_string(&ro).unwrap();
        let back: RankOrder = serde_json::from_str(&json).unwrap();
        assert_eq!(ro, back);
    }
}
