//! Stage spans and fixed-size trace rings.
//!
//! The serve hot path records one [`SpanRecord`] per pipeline stage
//! per request into a striped, fixed-capacity [`TraceBuffer`]. Rings
//! are pre-allocated: pushing a record is a copy into a slot (no
//! allocation), and writers use `try_lock` so a contended stripe drops
//! the trace record rather than blocking the hot path (the per-stage
//! histograms are still updated — only the forensic ring entry is
//! lost).

use std::sync::Mutex;

/// A pipeline stage on the request path (plus trainer-side stages
/// share the same histogram type but not this enum).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// HTTP request parsing (incremental parser CPU).
    Parse = 0,
    /// Time between reactor dispatch and worker pickup.
    Queue = 1,
    /// Result-cache probe (hit or miss).
    Cache = 2,
    /// Feature extraction into the sparse vector (cache miss only).
    Extract = 3,
    /// Compiled-plane scoring over the extracted vector (cache miss only).
    Score = 4,
    /// Response serialization and socket flush.
    Write = 5,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Parse,
        Stage::Queue,
        Stage::Cache,
        Stage::Extract,
        Stage::Score,
        Stage::Write,
    ];

    /// Stable lowercase name (used as the Prometheus `stage` label and
    /// the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Queue => "queue",
            Stage::Cache => "cache",
            Stage::Extract => "extract",
            Stage::Score => "score",
            Stage::Write => "write",
        }
    }
}

/// One timed stage of one request.
#[derive(Clone, Copy, Debug)]
pub struct SpanRecord {
    /// Request id assigned at parse completion; correlates the stages
    /// of one request across rings.
    pub request_id: u64,
    /// Which stage this span timed.
    pub stage: Stage,
    /// Stage start, microseconds since server start.
    pub start_micros: u64,
    /// Stage duration in microseconds.
    pub duration_micros: u64,
}

/// Fixed-capacity overwrite-oldest ring of span records.
pub struct SpanRing {
    slots: Vec<SpanRecord>,
    cap: usize,
    head: usize,
    len: usize,
}

impl SpanRing {
    /// A ring holding up to `capacity` records.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        SpanRing {
            slots: Vec::with_capacity(cap),
            cap,
            head: 0,
            len: 0,
        }
    }

    /// Append, overwriting the oldest record when full.
    pub fn push(&mut self, record: SpanRecord) {
        if self.slots.len() < self.cap {
            self.slots.push(record);
            self.len += 1;
        } else {
            self.slots[self.head] = record;
        }
        self.head = (self.head + 1) % self.cap;
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no records have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copy out all records, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        if self.len < self.cap {
            self.slots.clone()
        } else {
            let mut out = Vec::with_capacity(self.len);
            out.extend_from_slice(&self.slots[self.head..]);
            out.extend_from_slice(&self.slots[..self.head]);
            out
        }
    }
}

/// Striped span rings: each recorder (reactor, pool worker) passes a
/// stable stripe hint so steady-state recording is uncontended.
pub struct TraceBuffer {
    stripes: Vec<Mutex<SpanRing>>,
}

impl TraceBuffer {
    /// `stripes` rings of `capacity_per_stripe` records each.
    pub fn new(stripes: usize, capacity_per_stripe: usize) -> Self {
        TraceBuffer {
            stripes: (0..stripes.max(1))
                .map(|_| Mutex::new(SpanRing::new(capacity_per_stripe)))
                .collect(),
        }
    }

    /// Record a span into the hinted stripe. Returns `false` (record
    /// dropped) when the stripe is contended or poisoned — the caller
    /// never blocks.
    #[inline]
    pub fn record(&self, stripe_hint: usize, record: SpanRecord) -> bool {
        match self.stripes[stripe_hint % self.stripes.len()].try_lock() {
            Ok(mut ring) => {
                ring.push(record);
                true
            }
            Err(_) => false,
        }
    }

    /// Collect all stripes' records, ordered by start time (ties by
    /// request id then stage order) — for `GET /admin/trace`.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for stripe in &self.stripes {
            if let Ok(ring) = stripe.lock() {
                out.extend(ring.snapshot());
            }
        }
        out.sort_by_key(|r| (r.start_micros, r.request_id, r.stage as usize));
        out
    }

    /// Total capacity across stripes.
    pub fn capacity(&self) -> usize {
        self.stripes.len()
            * self
                .stripes
                .first()
                .map(|s| s.lock().map(|r| r.cap).unwrap_or(0))
                .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, stage: Stage, start: u64) -> SpanRecord {
        SpanRecord {
            request_id: id,
            stage,
            start_micros: start,
            duration_micros: 7,
        }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut ring = SpanRing::new(3);
        assert!(ring.is_empty());
        for i in 0..5 {
            ring.push(rec(i, Stage::Parse, i * 10));
        }
        let snap = ring.snapshot();
        assert_eq!(ring.len(), 3);
        assert_eq!(
            snap.iter().map(|r| r.request_id).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn trace_buffer_merges_and_sorts() {
        let buf = TraceBuffer::new(2, 4);
        assert!(buf.record(0, rec(2, Stage::Score, 20)));
        assert!(buf.record(1, rec(1, Stage::Parse, 5)));
        assert!(buf.record(0, rec(1, Stage::Queue, 6)));
        let snap = buf.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].request_id, 1);
        assert_eq!(snap[0].stage, Stage::Parse);
        assert_eq!(snap[2].request_id, 2);
        assert_eq!(buf.capacity(), 8);
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["parse", "queue", "cache", "extract", "score", "write"]
        );
    }
}
