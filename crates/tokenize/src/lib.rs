//! # urlid-tokenize
//!
//! URL parsing, tokenisation and character n-gram extraction for URL-based
//! language identification, following Section 3.1 of Baykan, Henzinger and
//! Weber, *"Web Page Language Identification Based on URLs"* (VLDB 2008).
//!
//! The paper derives all of its features from a very small amount of
//! lexical structure:
//!
//! 1. A URL is split into **tokens**: maximal runs of ASCII letters, taken
//!    case-insensitively, with strings shorter than two characters and the
//!    special words `www`, `index`, `html`, `htm`, `http` and `https`
//!    removed (see [`tokenize_url`]).
//! 2. From every token, padded **trigrams** are derived: the token
//!    `weather` yields `" we"`, `"wea"`, `"eat"`, `"ath"`, `"the"`,
//!    `"her"`, `"er "` (see [`ngram::token_trigrams`]).
//! 3. Structural pieces of the URL (host, top-level domain, registered
//!    domain, path) are needed for the custom feature set and for the
//!    domain-memorisation analysis of Section 6 (see [`url::ParsedUrl`]).
//!
//! The crate is dependency-free (apart from `serde` for model
//! serialisation) and allocation-conscious: the tokenizer exposes both an
//! allocating convenience API and a zero-copy iterator API over `&str`
//! slices of the input.
//!
//! ## Quick example
//!
//! ```
//! use urlid_tokenize::{tokenize_url, ngram::token_trigrams};
//!
//! let tokens = tokenize_url("http://www.internetwordstats.com/africa2.htm");
//! assert_eq!(tokens, vec!["internetwordstats", "com", "africa"]);
//!
//! let tris = token_trigrams("the");
//! assert_eq!(tris, vec![" th", "the", "he "]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ngram;
pub mod token;
pub mod url;

pub use ngram::{for_each_token_ngram, token_ngrams, token_trigrams, url_trigrams};
pub use token::{tokenize_url, tokenize_url_lossless, TokenIter, Tokenizer, TokenizerConfig};
pub use url::{ParsedUrl, UrlParseError};
