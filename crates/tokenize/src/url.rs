//! Lightweight URL structural parsing.
//!
//! The custom feature set of Section 3.1 and the domain-memorisation
//! analysis of Section 6 need structural information that plain
//! tokenisation throws away:
//!
//! * the **top-level domain** (`.de`, `.com`, ...) — the ccTLD baselines of
//!   Section 3.2 and several custom features are driven by it;
//! * which tokens appear **before the first `/`** (the paper maintains
//!   separate counters for host and path, and the selected TLD features
//!   look only at the host part, e.g. the `de` in `http://de.wikipedia.org`);
//! * the **registered domain** ("domain" in the paper's footnote 12:
//!   `epfl.ch` for `ltaa.epfl.ch`, `cam.ac.uk` for `chu.cam.ac.uk`) — used
//!   by Figure 3 to measure how many test URLs have a domain already seen
//!   in training.
//!
//! A full RFC 3986 parser is not needed; this module implements the small,
//! robust subset relevant to feature extraction and never fails on garbage
//! input (the worst case is an empty host).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error type for [`ParsedUrl::parse_strict`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UrlParseError {
    /// The input was empty or contained no host-like component.
    EmptyHost,
}

impl fmt::Display for UrlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UrlParseError::EmptyHost => write!(f, "URL has no host component"),
        }
    }
}

impl std::error::Error for UrlParseError {}

/// Second-level labels that behave like TLD extensions (so that the
/// registered domain of `chu.cam.ac.uk` is `cam.ac.uk`, not `ac.uk`).
/// This is a small, hand-maintained subset of the public-suffix list that
/// covers the languages studied in the paper.
const SECOND_LEVEL_SUFFIXES: &[&str] = &[
    "ac.uk",
    "co.uk",
    "gov.uk",
    "org.uk",
    "me.uk",
    "net.uk",
    "ltd.uk",
    "plc.uk",
    "sch.uk",
    "com.au",
    "net.au",
    "org.au",
    "edu.au",
    "gov.au",
    "id.au",
    "asn.au",
    "co.nz",
    "net.nz",
    "org.nz",
    "govt.nz",
    "ac.nz",
    "school.nz",
    "com.ar",
    "gov.ar",
    "org.ar",
    "net.ar",
    "edu.ar",
    "com.mx",
    "gob.mx",
    "org.mx",
    "edu.mx",
    "net.mx",
    "com.co",
    "gov.co",
    "org.co",
    "edu.co",
    "net.co",
    "com.pe",
    "gob.pe",
    "org.pe",
    "edu.pe",
    "com.ve",
    "gob.ve",
    "org.ve",
    "co.at",
    "or.at",
    "ac.at",
    "gv.at",
    "co.it",
    "gov.it",
    "edu.it",
    "asso.fr",
    "gouv.fr",
    "com.fr",
    "com.es",
    "org.es",
    "gob.es",
    "edu.es",
    "nom.es",
];

/// A structurally parsed URL.
///
/// ```
/// use urlid_tokenize::ParsedUrl;
/// let u = ParsedUrl::parse("http://de.wikipedia.org/wiki/Berlin?x=1#top");
/// assert_eq!(u.host(), "de.wikipedia.org");
/// assert_eq!(u.tld(), Some("org"));
/// assert_eq!(u.registered_domain().as_deref(), Some("wikipedia.org"));
/// assert_eq!(u.path(), "/wiki/Berlin");
/// assert_eq!(u.host_labels(), vec!["de", "wikipedia", "org"]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParsedUrl {
    raw: String,
    scheme: Option<String>,
    host: String,
    port: Option<u16>,
    path: String,
    query: Option<String>,
    fragment: Option<String>,
}

impl ParsedUrl {
    /// Parse a URL leniently. Never fails: inputs without a recognisable
    /// host yield an empty host and the whole input as path.
    pub fn parse(url: &str) -> Self {
        Self::parse_inner(url)
    }

    /// Parse a URL, returning an error if no host component can be found.
    pub fn parse_strict(url: &str) -> Result<Self, UrlParseError> {
        let parsed = Self::parse_inner(url);
        if parsed.host.is_empty() {
            Err(UrlParseError::EmptyHost)
        } else {
            Ok(parsed)
        }
    }

    fn parse_inner(url: &str) -> Self {
        let raw = url.to_owned();
        let trimmed = url.trim();

        // Fragment.
        let (before_frag, fragment) = match trimmed.split_once('#') {
            Some((a, b)) => (a, Some(b.to_owned())),
            None => (trimmed, None),
        };
        // Query.
        let (before_query, query) = match before_frag.split_once('?') {
            Some((a, b)) => (a, Some(b.to_owned())),
            None => (before_frag, None),
        };
        // Scheme.
        let (scheme, rest) = match before_query.find("://") {
            Some(idx)
                if before_query[..idx]
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '+' || c == '-' || c == '.')
                    && idx > 0 =>
            {
                (
                    Some(before_query[..idx].to_ascii_lowercase()),
                    &before_query[idx + 3..],
                )
            }
            _ => (None, before_query),
        };
        // Host[:port] / path split.
        let (authority, path) = match rest.find('/') {
            Some(idx) => (&rest[..idx], rest[idx..].to_owned()),
            None => (rest, String::new()),
        };
        // Strip userinfo if present.
        let authority = authority.rsplit('@').next().unwrap_or(authority);
        let (host, port) = match authority.rsplit_once(':') {
            // If the part after the colon is not a valid port number, drop
            // it anyway: "example.com:notaport" still has host example.com.
            Some((h, p)) => (h, p.parse::<u16>().ok()),
            None => (authority, None),
        };
        let host = host.trim_end_matches('.').to_ascii_lowercase();

        // A "host" that does not look like a hostname (no dot, or contains
        // characters illegal in hostnames) is treated as part of the path.
        let host_is_plausible = !host.is_empty()
            && host
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '-')
            && (host.contains('.') || scheme.is_some());

        if host_is_plausible {
            Self {
                raw,
                scheme,
                host,
                port,
                path,
                query,
                fragment,
            }
        } else {
            Self {
                raw: raw.clone(),
                scheme,
                host: String::new(),
                port: None,
                path: before_query.to_owned(),
                query,
                fragment,
            }
        }
    }

    /// The original string this URL was parsed from.
    pub fn raw(&self) -> &str {
        &self.raw
    }

    /// The URL scheme (lowercased), if present.
    pub fn scheme(&self) -> Option<&str> {
        self.scheme.as_deref()
    }

    /// The lowercased host, or `""` if none was found.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The port, if explicitly given.
    pub fn port(&self) -> Option<u16> {
        self.port
    }

    /// The path (starting with `/`), or `""`.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The query string (without `?`), if present.
    pub fn query(&self) -> Option<&str> {
        self.query.as_deref()
    }

    /// The fragment (without `#`), if present.
    pub fn fragment(&self) -> Option<&str> {
        self.fragment.as_deref()
    }

    /// The dot-separated labels of the host, in order.
    pub fn host_labels(&self) -> Vec<&str> {
        if self.host.is_empty() {
            Vec::new()
        } else {
            self.host.split('.').filter(|l| !l.is_empty()).collect()
        }
    }

    /// The top-level domain (last host label), if any, excluding purely
    /// numeric labels (IP addresses have no TLD).
    pub fn tld(&self) -> Option<&str> {
        let labels = self.host_labels();
        let last = labels.last()?;
        if last.chars().all(|c| c.is_ascii_digit()) {
            None
        } else {
            Some(*last)
        }
    }

    /// The registered domain per the paper's footnote 12: the public suffix
    /// plus one label (`epfl.ch`, `cam.ac.uk`). Falls back to the host
    /// itself when it has fewer than two labels.
    pub fn registered_domain(&self) -> Option<String> {
        let labels = self.host_labels();
        if labels.is_empty() {
            return None;
        }
        if self.tld().is_none() {
            // IP address: the whole host is the "domain".
            return Some(self.host.clone());
        }
        if labels.len() <= 2 {
            return Some(labels.join("."));
        }
        let last_two = labels[labels.len() - 2..].join(".");
        let take = if SECOND_LEVEL_SUFFIXES.contains(&last_two.as_str()) {
            3
        } else {
            2
        };
        let take = take.min(labels.len());
        Some(labels[labels.len() - take..].join("."))
    }

    /// Everything before the first `/` after the scheme, i.e. the part of
    /// the URL in which the paper's "before the first slash" custom
    /// features look for country codes.
    pub fn before_first_slash(&self) -> &str {
        &self.host
    }

    /// Number of hyphens in the whole URL (one of the paper's custom
    /// features; hyphens are ~5x more frequent in German URLs than in
    /// English ones).
    pub fn hyphen_count(&self) -> usize {
        self.raw.bytes().filter(|&b| b == b'-').count()
    }

    /// URL depth: number of non-empty path segments.
    pub fn path_depth(&self) -> usize {
        self.path.split('/').filter(|s| !s.is_empty()).count()
    }
}

impl fmt::Display for ParsedUrl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_url_round_trip() {
        let u = ParsedUrl::parse("https://user@sub.example.co.uk:8080/a/b.html?q=1#frag");
        assert_eq!(u.scheme(), Some("https"));
        assert_eq!(u.host(), "sub.example.co.uk");
        assert_eq!(u.port(), Some(8080));
        assert_eq!(u.path(), "/a/b.html");
        assert_eq!(u.query(), Some("q=1"));
        assert_eq!(u.fragment(), Some("frag"));
        assert_eq!(u.tld(), Some("uk"));
        assert_eq!(u.registered_domain().as_deref(), Some("example.co.uk"));
        assert_eq!(u.path_depth(), 2);
    }

    #[test]
    fn paper_footnote_examples() {
        // Footnote 12 of the paper.
        let a = ParsedUrl::parse("http://ltaa.epfl.ch/algorithms.html");
        assert_eq!(a.registered_domain().as_deref(), Some("epfl.ch"));
        let b = ParsedUrl::parse("http://chu.cam.ac.uk/");
        assert_eq!(b.registered_domain().as_deref(), Some("cam.ac.uk"));
    }

    #[test]
    fn missing_scheme_is_tolerated() {
        let u = ParsedUrl::parse("www.example.de/page");
        assert_eq!(u.scheme(), None);
        assert_eq!(u.host(), "www.example.de");
        assert_eq!(u.tld(), Some("de"));
        assert_eq!(u.path(), "/page");
    }

    #[test]
    fn bare_host_has_empty_path() {
        let u = ParsedUrl::parse("http://example.fr");
        assert_eq!(u.host(), "example.fr");
        assert_eq!(u.path(), "");
        assert_eq!(u.path_depth(), 0);
    }

    #[test]
    fn garbage_input_never_panics() {
        for s in [
            "",
            "   ",
            "::::",
            "not a url at all",
            "http://",
            "?q=1",
            "#x",
        ] {
            let u = ParsedUrl::parse(s);
            assert!(u.host().is_empty(), "host should be empty for {s:?}");
            assert!(u.registered_domain().is_none() || !u.host().is_empty());
        }
        assert!(ParsedUrl::parse_strict("").is_err());
        assert!(ParsedUrl::parse_strict("http://example.com").is_ok());
    }

    #[test]
    fn ip_address_has_no_tld() {
        let u = ParsedUrl::parse("http://192.168.0.1/admin");
        assert_eq!(u.tld(), None);
        assert_eq!(u.registered_domain().as_deref(), Some("192.168.0.1"));
    }

    #[test]
    fn invalid_port_is_ignored() {
        let u = ParsedUrl::parse("http://example.com:notaport/x");
        assert_eq!(u.host(), "example.com");
        assert_eq!(u.port(), None);
    }

    #[test]
    fn hyphen_count_counts_whole_url() {
        let u = ParsedUrl::parse("http://wasserbett-test.com/billig-kaufen/a-b");
        assert_eq!(u.hyphen_count(), 3);
    }

    #[test]
    fn registered_domain_second_level_suffixes() {
        assert_eq!(
            ParsedUrl::parse("http://shop.foo.com.au/")
                .registered_domain()
                .as_deref(),
            Some("foo.com.au")
        );
        assert_eq!(
            ParsedUrl::parse("http://foo.gouv.fr/")
                .registered_domain()
                .as_deref(),
            Some("foo.gouv.fr")
        );
        assert_eq!(
            ParsedUrl::parse("http://a.b.c.example.de/")
                .registered_domain()
                .as_deref(),
            Some("example.de")
        );
    }

    #[test]
    fn display_round_trips_raw() {
        let raw = "http://www.example.com/a?b=c";
        assert_eq!(ParsedUrl::parse(raw).to_string(), raw);
    }

    #[test]
    fn trailing_dot_host_is_normalised() {
        let u = ParsedUrl::parse("http://example.com./x");
        assert_eq!(u.host(), "example.com");
        assert_eq!(u.tld(), Some("com"));
    }

    #[test]
    fn uppercase_host_is_lowercased() {
        let u = ParsedUrl::parse("HTTP://WWW.EXAMPLE.DE/Pfad");
        assert_eq!(u.host(), "www.example.de");
        assert_eq!(u.path(), "/Pfad");
    }
}
