//! Core classifier traits and the extractor + model composition.

use crate::compile::CompileScorer;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use urlid_features::{FeatureExtractor, SparseVector};

/// The learning algorithms studied in the paper (plus k-NN, which the
/// paper evaluated in preliminary experiments and dropped).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Naive Bayes (NB).
    NaiveBayes,
    /// Decision Tree (DT) — only used with custom features in the paper.
    DecisionTree,
    /// Relative Entropy (RE).
    RelativeEntropy,
    /// Maximum Entropy (ME).
    MaxEnt,
    /// k-nearest neighbours (dropped by the paper after preliminary tests).
    KNearestNeighbors,
    /// Country-code TLD baseline (ccTLD).
    CcTld,
    /// Country-code TLD baseline with .com/.org counted as English (ccTLD+).
    CcTldPlus,
}

impl Algorithm {
    /// The paper's two-letter abbreviation (NB, DT, RE, ME).
    pub fn abbrev(self) -> &'static str {
        match self {
            Algorithm::NaiveBayes => "NB",
            Algorithm::DecisionTree => "DT",
            Algorithm::RelativeEntropy => "RE",
            Algorithm::MaxEnt => "ME",
            Algorithm::KNearestNeighbors => "kNN",
            Algorithm::CcTld => "ccTLD",
            Algorithm::CcTldPlus => "ccTLD+",
        }
    }

    /// The four machine-learning algorithms of the paper's main grid
    /// (Table 7), in the order they appear there.
    pub fn paper_grid() -> [Algorithm; 4] {
        [
            Algorithm::NaiveBayes,
            Algorithm::RelativeEntropy,
            Algorithm::MaxEnt,
            Algorithm::DecisionTree,
        ]
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// A trained binary classifier over feature vectors: "does this feature
/// vector belong to the positive class (language X)?"
///
/// # Sign convention
/// The score's sign *is* the decision: `classify(v) == (score(v) > 0.0)`.
/// Implementations must not override [`VectorClassifier::classify`] with
/// anything that breaks this — the single-pass scoring pipeline
/// ([`crate::set::LanguageClassifierSet`]) derives decisions from scores,
/// and the classifiers proptests assert the invariant for every
/// algorithm.
pub trait VectorClassifier: Send + Sync {
    /// A real-valued decision score; positive means "yes, language X".
    /// The magnitude is algorithm-specific and only the sign is
    /// interpreted by default.
    fn score(&self, features: &SparseVector) -> f64;

    /// The binary decision (the sign of [`VectorClassifier::score`]).
    fn classify(&self, features: &SparseVector) -> bool {
        self.score(features) > 0.0
    }

    /// The compiled-plane hook: algorithms that lower into the fused
    /// dense-weight plane (see [`crate::compile`]) return themselves.
    /// The default — models that cannot be expressed as dense
    /// per-feature data, such as decision trees or k-NN — keeps the
    /// scorer interpreted inside a compiled set.
    fn as_compile(&self) -> Option<&dyn CompileScorer> {
        None
    }
}

/// A binary classifier that needs *both* the raw URL and the
/// [`crate::set::LanguageClassifierSet`]'s shared pre-extracted vector.
///
/// This is the seam for the Section 5.6 combinations that pair a
/// classifier over a second feature space (scored from the URL) with a
/// word-feature model (scored from the set's shared word vector): the
/// shared extraction is reused instead of re-extracted per language.
///
/// # Sign convention
/// As for [`VectorClassifier`]: the decision is `score_hybrid(..) > 0`.
pub trait HybridClassifier: Send + Sync {
    /// Score from the URL plus the set's shared feature vector.
    fn score_hybrid(&self, url: &str, shared: &SparseVector) -> f64;
}

/// A binary classifier operating directly on URLs.
///
/// Feature-based classifiers are lifted to this trait via
/// [`FeatureUrlClassifier`]; the ccTLD baselines implement it natively.
///
/// # Sign convention
/// As for [`VectorClassifier`]: `classify_url(u) == (score_url(u) > 0.0)`
/// must hold. The default `score_url` (±1 from the decision) satisfies
/// this, as does any implementation deriving the decision from its own
/// score; the classifiers proptests assert it for every shipped
/// implementation, including the pairwise combinations.
pub trait UrlClassifier: Send + Sync {
    /// Does the page behind `url` belong to the classifier's language?
    fn classify_url(&self, url: &str) -> bool;

    /// An optional real-valued score (default: 1.0 / -1.0 from the binary
    /// decision).
    fn score_url(&self, url: &str) -> f64 {
        if self.classify_url(url) {
            1.0
        } else {
            -1.0
        }
    }

    /// The compiled-plane hook, as for
    /// [`VectorClassifier::as_compile`]: only the character Markov
    /// model lowers among the URL-level classifiers (the ccTLD
    /// baselines are already a single table probe).
    fn as_compile(&self) -> Option<&dyn CompileScorer> {
        None
    }
}

impl<T: UrlClassifier + ?Sized> UrlClassifier for Arc<T> {
    fn classify_url(&self, url: &str) -> bool {
        (**self).classify_url(url)
    }
    fn score_url(&self, url: &str) -> f64 {
        (**self).score_url(url)
    }
    fn as_compile(&self) -> Option<&dyn CompileScorer> {
        (**self).as_compile()
    }
}

impl<T: UrlClassifier + ?Sized> UrlClassifier for Box<T> {
    fn classify_url(&self, url: &str) -> bool {
        (**self).classify_url(url)
    }
    fn score_url(&self, url: &str) -> f64 {
        (**self).score_url(url)
    }
    fn as_compile(&self) -> Option<&dyn CompileScorer> {
        (**self).as_compile()
    }
}

/// A feature extractor paired with a trained vector classifier: the unit
/// that actually answers "is this URL in language X?" for the learning
/// algorithms.
pub struct FeatureUrlClassifier<E, M> {
    extractor: Arc<E>,
    model: M,
}

impl<E, M> FeatureUrlClassifier<E, M>
where
    E: FeatureExtractor,
    M: VectorClassifier,
{
    /// Pair a fitted extractor with a trained model. The extractor is
    /// shared via `Arc` because the five per-language classifiers of a
    /// [`crate::set::LanguageClassifierSet`] reuse the same extractor.
    pub fn new(extractor: Arc<E>, model: M) -> Self {
        Self { extractor, model }
    }

    /// The underlying vector-space model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The underlying extractor.
    pub fn extractor(&self) -> &E {
        &self.extractor
    }
}

impl<E, M> UrlClassifier for FeatureUrlClassifier<E, M>
where
    E: FeatureExtractor,
    M: VectorClassifier,
{
    fn classify_url(&self, url: &str) -> bool {
        self.model.classify(&self.extractor.transform(url))
    }

    fn score_url(&self, url: &str) -> f64 {
        self.model.score(&self.extractor.transform(url))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urlid_features::{LabeledUrl, WordFeatureExtractor};
    use urlid_lexicon::Language;

    struct Threshold(f64);
    impl VectorClassifier for Threshold {
        fn score(&self, features: &SparseVector) -> f64 {
            features.sum() - self.0
        }
    }

    #[test]
    fn algorithm_labels() {
        assert_eq!(Algorithm::NaiveBayes.abbrev(), "NB");
        assert_eq!(Algorithm::CcTldPlus.to_string(), "ccTLD+");
        assert_eq!(Algorithm::paper_grid().len(), 4);
    }

    #[test]
    fn vector_classifier_default_threshold_is_zero() {
        let c = Threshold(1.5);
        assert!(c.classify(&SparseVector::from_counts(vec![0, 1])));
        assert!(!c.classify(&SparseVector::from_counts(vec![0])));
    }

    #[test]
    fn feature_url_classifier_composes() {
        let mut ex = WordFeatureExtractor::default();
        ex.fit(&[LabeledUrl::new(
            "http://a.de/wetter/bericht",
            Language::German,
        )]);
        let clf = FeatureUrlClassifier::new(Arc::new(ex), Threshold(0.5));
        // Two in-vocabulary tokens -> sum 2 > 0.5.
        assert!(clf.classify_url("http://b.de/wetter/bericht"));
        // No in-vocabulary tokens -> sum 0 < 0.5.
        assert!(!clf.classify_url("http://unknown.xyz/nothing"));
        assert!(clf.score_url("http://b.de/wetter") > 0.0);
    }

    #[test]
    fn boxed_and_arc_classifiers_delegate() {
        let mut ex = WordFeatureExtractor::default();
        ex.fit(&[LabeledUrl::new("http://a.de/wetter", Language::German)]);
        let inner = FeatureUrlClassifier::new(Arc::new(ex), Threshold(0.5));
        let boxed: Box<dyn UrlClassifier> = Box::new(inner);
        assert!(boxed.classify_url("http://x.de/wetter"));
        let arced: Arc<dyn UrlClassifier> = Arc::from(boxed);
        assert!(arced.classify_url("http://x.de/wetter"));
        assert!(arced.score_url("http://none.xyz/") <= 0.0);
    }
}
