//! Synthetic page content for the "training on content" experiment.
//!
//! Section 7 of the paper trains classifiers on the URL *plus* the text of
//! the page and finds that the F-measure drops for every language. The
//! mechanism the paper identifies: strong URL signals such as the token
//! `it` (present in 67 % of Italian URLs, 99 % precise) are diluted
//! because the same strings are ordinary, frequent words of *other*
//! languages once page text enters the training data (`it` is a frequent
//! English word, `de` is a frequent French/Spanish word, `es` is a
//! frequent German word, ...).
//!
//! The [`ContentGenerator`] therefore produces page text consisting of the
//! language's dictionary words *plus* frequent short function words, where
//! the function-word lists deliberately contain the other languages' TLD
//! strings exactly as natural language does.

use crate::morphology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use urlid_lexicon::{wordlists, Language};

/// Frequent short function words per language. Note the cross-language
/// TLD collisions that drive the Section 7 effect: English "it"/"us",
/// French/Spanish "de", German "es", Italian "no"/"due".
fn function_words(lang: Language) -> &'static [&'static str] {
    match lang {
        Language::English => &[
            "it", "is", "in", "to", "of", "on", "at", "as", "be", "us", "we", "a",
        ],
        Language::German => &[
            "es", "im", "am", "zu", "an", "um", "so", "da", "wir", "ich", "er",
        ],
        Language::French => &[
            "de", "le", "la", "et", "en", "du", "au", "il", "on", "ce", "se",
        ],
        Language::Spanish => &[
            "de", "la", "el", "en", "es", "se", "un", "lo", "al", "su", "no",
        ],
        Language::Italian => &[
            "di", "la", "il", "in", "un", "al", "si", "no", "da", "se", "lo",
        ],
    }
}

/// Deterministic generator of synthetic page text.
#[derive(Debug, Clone)]
pub struct ContentGenerator {
    rng: StdRng,
    /// Number of words per generated page (mean; actual length varies ±50%).
    mean_words: usize,
}

impl ContentGenerator {
    /// Create a generator producing pages of roughly `mean_words` words.
    pub fn new(seed: u64, mean_words: usize) -> Self {
        assert!(mean_words >= 10, "pages should have at least 10 words");
        Self {
            rng: StdRng::seed_from_u64(seed),
            mean_words,
        }
    }

    /// Create a generator with the default page length (120 words).
    pub fn with_seed(seed: u64) -> Self {
        Self::new(seed, 120)
    }

    /// Generate the text of one page in `lang` (lowercase, space-separated
    /// words — the paper strips HTML before training, so we never generate
    /// markup in the first place).
    pub fn generate(&mut self, lang: Language) -> String {
        let len = self
            .rng
            .random_range(self.mean_words / 2..=self.mean_words * 3 / 2);
        let mut words = Vec::with_capacity(len);
        for _ in 0..len {
            let r: f64 = self.rng.random();
            if r < 0.35 {
                words.push((*morphology::pick(&mut self.rng, function_words(lang))).to_owned());
            } else if r < 0.95 {
                words.push(
                    (*morphology::pick(&mut self.rng, wordlists::words_for(lang))).to_owned(),
                );
            } else {
                words.push(morphology::invented_word(&mut self.rng, lang));
            }
        }
        words.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urlid_lexicon::ALL_LANGUAGES;

    #[test]
    fn pages_have_roughly_the_requested_length() {
        let mut g = ContentGenerator::new(1, 100);
        for lang in ALL_LANGUAGES {
            let text = g.generate(lang);
            let n = text.split_whitespace().count();
            assert!((50..=150).contains(&n), "{lang}: {n} words");
        }
    }

    #[test]
    fn content_is_lowercase_ascii_words() {
        let mut g = ContentGenerator::with_seed(2);
        let text = g.generate(Language::German);
        for w in text.split_whitespace() {
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w:?}");
        }
    }

    #[test]
    fn english_content_contains_the_token_it() {
        // The dilution mechanism of Section 7: "it" must be a frequent
        // English content word.
        let mut g = ContentGenerator::new(3, 400);
        let mut hits = 0;
        for _ in 0..20 {
            if g.generate(Language::English)
                .split_whitespace()
                .any(|w| w == "it")
            {
                hits += 1;
            }
        }
        assert!(
            hits >= 18,
            "'it' should appear in almost every English page, got {hits}/20"
        );
    }

    #[test]
    fn french_and_spanish_content_contains_de() {
        let mut g = ContentGenerator::new(4, 400);
        for lang in [Language::French, Language::Spanish] {
            let text = g.generate(lang);
            assert!(text.split_whitespace().any(|w| w == "de"), "{lang}");
        }
    }

    #[test]
    fn content_is_language_typical() {
        // The dominant vocabulary of a German page should be German.
        let mut g = ContentGenerator::new(5, 300);
        let text = g.generate(Language::German);
        let german: std::collections::HashSet<&str> = wordlists::words_for(Language::German)
            .iter()
            .copied()
            .collect();
        let italian: std::collections::HashSet<&str> = wordlists::words_for(Language::Italian)
            .iter()
            .copied()
            .collect();
        let de_hits = text
            .split_whitespace()
            .filter(|w| german.contains(w))
            .count();
        let it_hits = text
            .split_whitespace()
            .filter(|w| italian.contains(w))
            .count();
        assert!(de_hits > 5 * it_hits.max(1), "de {de_hits} vs it {it_hits}");
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = ContentGenerator::with_seed(9);
        let mut b = ContentGenerator::with_seed(9);
        assert_eq!(a.generate(Language::Italian), b.generate(Language::Italian));
    }

    #[test]
    #[should_panic]
    fn tiny_pages_are_rejected() {
        let _ = ContentGenerator::new(0, 3);
    }
}
