//! Simulated human annotators.
//!
//! Section 5.1 of the paper asks two human evaluators to label the 1,260
//! crawl URLs by URL alone. Their behaviour has a characteristic shape
//! (Tables 2 and 3): they are extremely precise for non-English languages
//! (they only say "German" when they really see German material) but they
//! default to English whenever a URL carries no clear lexical signal —
//! which costs them recall on every non-English language (e.g. only 37 %
//! of Spanish URLs are recognised) and precision on English.
//!
//! [`SimulatedHuman`] reproduces that behaviour mechanistically rather
//! than by sampling the paper's confusion matrix: it inspects the URL the
//! way a person would (ccTLD first, then recognisable words/cities), says
//! the non-English language only on clear evidence, and otherwise defaults
//! to English. Two annotators differ in how much evidence they demand and
//! in a small random slip rate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use urlid_lexicon::{CcTldTable, Dictionary, DictionarySet, Language, ALL_LANGUAGES};
use urlid_tokenize::{tokenize_url_lossless, ParsedUrl, Tokenizer};

/// A simulated URL-only human annotator.
#[derive(Debug, Clone)]
pub struct SimulatedHuman {
    rng: StdRng,
    word_dicts: DictionarySet,
    city_dicts: DictionarySet,
    cctld: CcTldTable,
    tokenizer: Tokenizer,
    /// Minimum number of recognised language-specific tokens needed before
    /// the annotator names a non-English language in the absence of a
    /// ccTLD (1 for a lenient annotator, 2 for a strict one).
    evidence_threshold: usize,
    /// Probability of an attention slip (randomly answering "English
    /// only") even when evidence is present.
    slip_rate: f64,
}

impl SimulatedHuman {
    /// Create an annotator. `evidence_threshold` of 1–2 and `slip_rate`
    /// around 0.02–0.08 reproduce the paper's two evaluators.
    pub fn new(seed: u64, evidence_threshold: usize, slip_rate: f64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            word_dicts: DictionarySet::builtin_words(),
            city_dicts: DictionarySet::builtin_cities(),
            cctld: CcTldTable::cctld(),
            tokenizer: Tokenizer::default(),
            evidence_threshold,
            slip_rate,
        }
    }

    /// The paper's first evaluator (slightly more lenient, F ≈ .79).
    pub fn evaluator_one(seed: u64) -> Self {
        Self::new(seed, 1, 0.03)
    }

    /// The paper's second evaluator (stricter, F ≈ .71).
    pub fn evaluator_two(seed: u64) -> Self {
        Self::new(seed, 2, 0.06)
    }

    fn dictionary_evidence(&self, lang: Language, tokens: &[String]) -> usize {
        let words: &Dictionary = self.word_dicts.get(lang);
        let cities: &Dictionary = self.city_dicts.get(lang);
        tokens
            .iter()
            .filter(|t| t.len() >= 3 && (words.contains(t) || cities.contains(t)))
            .count()
    }

    /// Label one URL: the five independent binary answers, in canonical
    /// language order (a human may in principle tick several languages,
    /// but like the paper's evaluators this one almost always ticks one).
    pub fn annotate(&mut self, url: &str) -> [bool; 5] {
        let mut out = [false; 5];
        let parsed = ParsedUrl::parse(url);
        let tokens = self.tokenizer.tokenize(url);
        let all_tokens = tokenize_url_lossless(url);

        // Attention slip: glance at it, call it English, move on.
        if self.rng.random_bool(self.slip_rate) {
            out[Language::English.index()] = true;
            return out;
        }

        // 1. A ccTLD is the strongest cue a human uses.
        let cctld_lang = parsed.tld().and_then(|t| self.cctld.language_of(t));
        // A language-code host label (de.wikipedia.org) is almost as strong.
        let label_lang = ALL_LANGUAGES.into_iter().find(|l| {
            all_tokens
                .iter()
                .any(|t| CcTldTable::token_matches_language(t, *l))
                && *l != Language::English
        });

        // 2. Count recognisable words per language.
        let mut best_lang = None;
        let mut best_evidence = 0usize;
        for lang in ALL_LANGUAGES {
            if lang == Language::English {
                continue;
            }
            let e = self.dictionary_evidence(lang, &tokens);
            if e > best_evidence {
                best_evidence = e;
                best_lang = Some(lang);
            }
        }

        let decided = if let Some(lang) = cctld_lang.filter(|l| *l != Language::English) {
            // ccTLD of a non-English language: trust it unless the URL is
            // screaming English words at the same time.
            let english_evidence = self.dictionary_evidence(Language::English, &tokens);
            if english_evidence >= 3 && best_evidence == 0 && self.rng.random_bool(0.5) {
                Some(Language::English)
            } else {
                Some(lang)
            }
        } else if let Some(lang) = label_lang.filter(|_| best_evidence >= 1) {
            Some(lang)
        } else if let Some(lang) = best_lang.filter(|_| best_evidence >= self.evidence_threshold) {
            Some(lang)
        } else {
            // No clear non-English signal: humans default to English.
            Some(Language::English)
        };

        if let Some(lang) = decided {
            out[lang.index()] = true;
        }
        out
    }

    /// Annotate a whole list of URLs.
    pub fn annotate_all(&mut self, urls: &[String]) -> Vec<[bool; 5]> {
        urls.iter().map(|u| self.annotate(u)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obvious_cctld_urls_are_recognised() {
        let mut h = SimulatedHuman::evaluator_one(1);
        let de = h.annotate("http://www.nachrichten-wetter.de/berlin");
        assert!(de[Language::German.index()]);
        let it = h.annotate("http://www.ricette-cucina.it/");
        assert!(it[Language::Italian.index()]);
    }

    #[test]
    fn english_looking_foreign_urls_are_called_english() {
        // The paper's examples of "typical" German/French URLs that humans
        // misjudge as English.
        let mut h = SimulatedHuman::new(2, 2, 0.0);
        let a = h.annotate("http://forum.mamboserver.com/archive/index.php/t-7062.html");
        assert!(a[Language::English.index()]);
        assert!(!a[Language::German.index()]);
        let b = h.annotate("http://www.priceminister.com/navigation/default/category/126541/l1/q");
        assert!(b[Language::English.index()]);
        assert!(!b[Language::French.index()]);
    }

    #[test]
    fn a_single_meaning_bearing_token_can_flip_the_decision() {
        // http://viveka.math.hr/LDP/linuxfocus/Deutsch/July2000/index.html:
        // the token "deutsch" should let a lenient human call it German.
        let mut h = SimulatedHuman::new(3, 1, 0.0);
        let d = h.annotate("http://viveka.math.hr/LDP/linuxfocus/deutsch/July2000/index.html");
        assert!(d[Language::German.index()]);
    }

    #[test]
    fn exactly_one_language_is_ticked_normally() {
        let mut h = SimulatedHuman::evaluator_two(4);
        for url in [
            "http://www.example.com/page",
            "http://www.boulangerie-paris.fr/",
            "http://www.viajes-madrid.es/ofertas",
            "http://random.info/xyz123",
        ] {
            let a = h.annotate(url);
            assert_eq!(a.iter().filter(|&&b| b).count(), 1, "{url}: {a:?}");
        }
    }

    #[test]
    fn no_signal_defaults_to_english() {
        let mut h = SimulatedHuman::new(5, 2, 0.0);
        let a = h.annotate("http://xkqz.info/t-9911/p2");
        assert!(a[Language::English.index()]);
    }

    #[test]
    fn annotate_all_is_elementwise() {
        let mut h = SimulatedHuman::evaluator_one(6);
        let urls = vec![
            "http://www.beispiel.de/".to_owned(),
            "http://www.example.com/".to_owned(),
        ];
        let anns = h.annotate_all(&urls);
        assert_eq!(anns.len(), 2);
        assert!(anns[0][Language::German.index()]);
        assert!(anns[1][Language::English.index()]);
    }

    #[test]
    fn two_evaluators_disagree_sometimes_but_not_always() {
        let mut corpus_gen = crate::generator::UrlGenerator::new(42);
        let profile = crate::profiles::DatasetProfile::web_crawl();
        let mut urls = Vec::new();
        for lang in ALL_LANGUAGES {
            urls.extend(corpus_gen.generate_many(lang, &profile, 60));
        }
        let mut h1 = SimulatedHuman::evaluator_one(7);
        let mut h2 = SimulatedHuman::evaluator_two(8);
        let a1 = h1.annotate_all(&urls);
        let a2 = h2.annotate_all(&urls);
        let agree = a1.iter().zip(&a2).filter(|(x, y)| x == y).count();
        assert!(
            agree > urls.len() / 2,
            "evaluators agree on most URLs ({agree}/{})",
            urls.len()
        );
        assert!(agree < urls.len(), "but not on every URL");
    }
}
