//! Embedded per-language frequent-word lists.
//!
//! The paper uses OpenOffice spelling dictionaries (English/United States,
//! German/Germany, French/France Classique, Spanish/Spain-etal, Italian/
//! Dizionario Italiano) to count, per URL, how many tokens are present in
//! each language's dictionary. Those dictionaries are not redistributable
//! here, so this module embeds hand-curated lists of frequent words for
//! each language instead (see DESIGN.md, substitution table). Only set
//! *membership* is ever used by the feature extractors, so a few hundred
//! frequent words per language capture the same signal; the same lists
//! also seed the synthetic corpus generator in `urlid-corpus`.
//!
//! All entries are lowercase ASCII (accents/umlauts transliterated or
//! dropped), because that is the alphabet URLs are written in.

use crate::language::Language;

/// Frequent English words (content + function words typical of URLs).
pub const ENGLISH_WORDS: &[&str] = &[
    "the", "and", "for", "you", "that", "with", "this", "have", "from", "they", "will", "would",
    "there", "their", "what", "about", "which", "when", "make", "like", "time", "just", "know",
    "people", "year", "your", "good", "some", "could", "them", "other", "than", "then", "look",
    "only", "come", "over", "think", "also", "back", "after", "work", "first", "well", "even",
    "want", "because", "these", "give", "most", "news", "home", "page", "search", "free", "site",
    "online", "world", "weather", "sports", "games", "music", "movies", "books", "travel",
    "health", "business", "finance", "shopping", "store", "shop", "price", "cheap", "best",
    "review", "reviews", "guide", "help", "support", "contact", "services", "products",
    "software", "download", "community", "forum", "blog", "article", "articles", "library",
    "school", "university", "college", "student", "students", "research", "science", "history",
    "english", "language", "dictionary", "learning", "education", "teacher", "course", "courses",
    "company", "jobs", "career", "careers", "employment", "estate", "property", "house", "garden",
    "kitchen", "food", "recipes", "cooking", "restaurant", "hotel", "hotels", "flights", "flight",
    "airport", "holiday", "holidays", "vacation", "insurance", "bank", "banking", "credit",
    "money", "market", "stock", "stocks", "trading", "investment", "report", "reports", "data",
    "technology", "computer", "computers", "internet", "network", "security", "mobile", "phone",
    "phones", "camera", "video", "videos", "photo", "photos", "pictures", "gallery", "design",
    "fashion", "clothing", "shoes", "jewelry", "gifts", "cards", "wedding", "baby", "kids",
    "children", "family", "parents", "women", "men", "girls", "boys", "love", "life", "style",
    "living", "events", "event", "tickets", "club", "clubs", "team", "league", "football",
    "soccer", "baseball", "basketball", "golf", "tennis", "fishing", "hunting", "outdoor",
    "nature", "park", "parks", "museum", "gallery", "theatre", "theater", "cinema", "radio",
    "television", "press", "media", "newspaper", "magazine", "journal", "letters", "stories",
    "poetry", "writers", "author", "authors", "church", "ministry", "faith", "government",
    "county", "city", "state", "national", "international", "center", "centre", "office",
    "department", "association", "society", "foundation", "institute", "project", "projects",
    "program", "programs", "development", "management", "solutions", "systems", "group",
    "partners", "consulting", "marketing", "advertising", "printing", "publishing", "records",
    "directory", "resources", "links", "list", "lists", "maps", "map", "weather", "today",
    "daily", "weekly", "monthly", "archive", "archives", "search", "find", "compare", "buy",
    "sell", "sale", "sales", "auction", "auctions", "deals", "coupons", "discount", "order",
    "shipping", "delivery", "account", "login", "register", "members", "member", "profile",
    "user", "users", "about", "privacy", "terms", "policy", "sitemap", "faq", "questions",
    "answers", "welcome", "official", "information", "details", "general", "public", "special",
    "popular", "featured", "latest", "update", "updates", "version", "english", "united",
    "kingdom", "america", "american", "british", "australia", "canada", "street", "road",
    "avenue", "north", "south", "east", "west", "green", "white", "black", "blue", "red",
    "golden", "silver", "little", "great", "grand", "royal", "classic", "modern", "digital",
    "global", "local", "express", "direct", "plus", "pro", "net", "web", "tech", "soft", "ware",
    "link", "click", "view", "read", "watch", "play", "player", "game", "fun", "cool", "easy",
    "fast", "quick", "smart", "simple", "real", "true", "open", "live", "now", "new", "old",
    "big", "small", "high", "low", "long", "short", "full", "top", "hot",
];

/// Frequent German words.
pub const GERMAN_WORDS: &[&str] = &[
    "der", "die", "das", "und", "ist", "nicht", "ein", "eine", "einer", "sich", "mit", "auch",
    "auf", "fuer", "von", "dem", "den", "des", "werden", "wird", "sind", "oder", "aber", "wenn",
    "nach", "wie", "noch", "nur", "schon", "mehr", "ueber", "unter", "zwischen", "durch",
    "gegen", "ohne", "beim", "zum", "zur", "haben", "hatte", "kann", "koennen", "muss",
    "muessen", "soll", "sollen", "machen", "geben", "gibt", "jahr", "jahre", "zeit", "neue",
    "neues", "neuen", "gross", "grosse", "klein", "kleine", "gut", "gute", "guten", "deutsch",
    "deutsche", "deutschland", "willkommen", "startseite", "seite", "seiten", "impressum",
    "kontakt", "datenschutz", "anfahrt", "ueber", "uns", "unser", "unsere", "angebot",
    "angebote", "leistungen", "produkte", "preise", "preis", "guenstig", "billig", "kaufen",
    "verkauf", "verkaufen", "bestellen", "bestellung", "versand", "lieferung", "shop", "laden",
    "geschaeft", "firma", "unternehmen", "gesellschaft", "verein", "verband", "gemeinde",
    "stadt", "staedte", "land", "landkreis", "bezirk", "strasse", "platz", "haus", "haeuser",
    "wohnung", "wohnungen", "immobilien", "miete", "mieten", "garten", "kueche", "zimmer",
    "hotel", "hotels", "ferien", "ferienwohnung", "urlaub", "reise", "reisen", "flug", "fluege",
    "bahn", "auto", "autos", "fahrrad", "werkstatt", "handwerk", "bau", "bauen", "technik",
    "maschinen", "werkzeug", "wasser", "wasserbett", "energie", "strom", "heizung", "umwelt",
    "natur", "wald", "berg", "berge", "see", "fluss", "wetter", "nachrichten", "zeitung",
    "presse", "aktuell", "aktuelles", "neuigkeiten", "termine", "veranstaltung",
    "veranstaltungen", "verein", "mitglied", "mitglieder", "anmeldung", "anmelden", "suche",
    "suchen", "finden", "hilfe", "fragen", "antworten", "forum", "gaestebuch", "bilder", "bild",
    "foto", "fotos", "galerie", "musik", "lieder", "kunst", "kultur", "geschichte", "museum",
    "theater", "kino", "buch", "buecher", "verlag", "literatur", "sprache", "sprachen",
    "woerterbuch", "lernen", "schule", "schulen", "hochschule", "universitaet", "studium",
    "studenten", "ausbildung", "beruf", "berufe", "arbeit", "arbeiten", "stellen",
    "stellenangebote", "jobs", "karriere", "bewerbung", "gesundheit", "arzt", "aerzte",
    "apotheke", "krankenhaus", "klinik", "pflege", "medizin", "recht", "anwalt", "steuern",
    "steuer", "versicherung", "versicherungen", "bank", "banken", "geld", "finanzen", "kredit",
    "sparen", "essen", "trinken", "rezepte", "kochen", "baecker", "metzger", "restaurant",
    "gasthof", "gasthaus", "biergarten", "wein", "bier", "sport", "fussball", "verein",
    "turnier", "spiel", "spiele", "spielen", "freizeit", "familie", "kinder", "jugend",
    "senioren", "frauen", "maenner", "hochzeit", "geschenke", "weihnachten", "ostern", "advent",
    "kirche", "evangelisch", "katholisch", "pfarrei", "gottesdienst", "politik", "wahl",
    "regierung", "verwaltung", "amt", "behoerde", "buergermeister", "rathaus", "polizei",
    "feuerwehr", "rettung", "notdienst", "oeffnungszeiten", "anzeigen", "kleinanzeigen",
    "gebraucht", "kostenlos", "gratis", "download", "herunterladen", "startseite", "uebersicht",
    "inhalt", "weiter", "zurueck", "mehr", "alle", "hier", "heute", "morgen", "gestern",
    "montag", "dienstag", "mittwoch", "donnerstag", "freitag", "samstag", "sonntag", "januar",
    "februar", "maerz", "april", "mai", "juni", "juli", "august", "september", "oktober",
    "november", "dezember", "nord", "sued", "ost", "west", "ober", "unter", "neu", "alt",
    "gross", "klein", "schnell", "einfach", "direkt", "online", "digital", "service",
    "dienstleistung", "loesungen", "beratung", "planung", "entwicklung", "forschung",
    "wissenschaft", "institut", "zentrum", "haus", "hof", "muehle", "burg", "schloss",
];

/// Frequent French words.
pub const FRENCH_WORDS: &[&str] = &[
    "les", "des", "une", "est", "pour", "que", "qui", "dans", "pas", "sur", "par", "plus",
    "avec", "tout", "tous", "toute", "toutes", "mais", "comme", "faire", "fait", "sont", "ont",
    "aux", "ces", "son", "ses", "leur", "leurs", "notre", "nos", "votre", "vos", "cette",
    "bien", "sans", "sous", "entre", "apres", "avant", "chez", "vers", "depuis", "pendant",
    "contre", "encore", "aussi", "autre", "autres", "meme", "tres", "peu", "beaucoup",
    "nouveau", "nouvelle", "nouvelles", "nouveaux", "premier", "premiere", "dernier",
    "derniere", "grand", "grande", "grands", "grandes", "petit", "petite", "petits", "petites",
    "bon", "bonne", "beau", "belle", "jeune", "vieux", "francais", "francaise", "france",
    "bienvenue", "accueil", "site", "page", "pages", "recherche", "rechercher", "trouver",
    "produits", "produit", "services", "service", "prix", "achat", "acheter", "vente", "vendre",
    "boutique", "magasin", "commande", "commander", "livraison", "gratuit", "gratuite",
    "promotion", "promotions", "offre", "offres", "annonces", "annonce", "immobilier",
    "location", "louer", "maison", "maisons", "appartement", "appartements", "jardin",
    "cuisine", "chambre", "chambres", "hotel", "hotels", "vacances", "voyage", "voyages",
    "sejour", "camping", "gite", "gites", "tourisme", "office", "region", "regions",
    "departement", "ville", "villes", "village", "villages", "commune", "communes", "mairie",
    "conseil", "municipal", "prefecture", "rue", "place", "avenue", "quartier", "centre",
    "nord", "sud", "est", "ouest", "haute", "haut", "basse", "bas", "saint", "sainte",
    "eglise", "chateau", "musee", "musees", "exposition", "expositions", "culture",
    "culturel", "patrimoine", "histoire", "historique", "art", "arts", "artiste", "artistes",
    "peinture", "photographie", "photos", "galerie", "musique", "concert", "concerts",
    "festival", "spectacle", "spectacles", "theatre", "cinema", "films", "film", "livre",
    "livres", "lecture", "bibliotheque", "librairie", "edition", "editions", "presse",
    "journal", "actualites", "actualite", "informations", "information", "infos", "nouvelles",
    "meteo", "sante", "medecin", "medecins", "pharmacie", "hopital", "clinique", "soins",
    "beaute", "bienetre", "cheveux", "mode", "vetements", "chaussures", "bijoux", "cadeaux",
    "mariage", "enfants", "enfant", "famille", "femmes", "femme", "hommes", "homme", "jeunesse",
    "etudiants", "etudiant", "ecole", "ecoles", "college", "lycee", "universite", "formation",
    "formations", "cours", "apprendre", "langue", "langues", "dictionnaire", "traduction",
    "emploi", "emplois", "travail", "recrutement", "entreprise", "entreprises", "societe",
    "societes", "association", "associations", "federation", "syndicat", "chambre", "commerce",
    "industrie", "agriculture", "artisanat", "batiment", "construction", "travaux",
    "renovation", "plomberie", "electricite", "chauffage", "energie", "environnement",
    "nature", "montagne", "mer", "plage", "riviere", "foret", "parc", "parcs", "animaux",
    "chiens", "chats", "chevaux", "peche", "chasse", "sport", "sports", "football", "rugby",
    "cyclisme", "randonnee", "ski", "club", "clubs", "equipe", "championnat", "resultats",
    "calendrier", "agenda", "evenements", "fetes", "noel", "paques", "cuisine", "recettes",
    "recette", "restaurant", "restaurants", "gastronomie", "vin", "vins", "fromage",
    "boulangerie", "patisserie", "droit", "avocat", "avocats", "juridique", "notaire",
    "assurance", "assurances", "banque", "banques", "credit", "finances", "impots", "argent",
    "economie", "politique", "gouvernement", "ministere", "republique", "elections", "conseil",
    "contact", "contactez", "mentions", "legales", "plan", "partenaires", "liens", "telecharger",
    "telechargement", "inscription", "inscrire", "connexion", "compte", "membre", "membres",
    "forum", "forums", "discussion", "aide", "questions", "reponses", "guide", "conseils",
    "astuces", "dossiers", "articles", "article", "rubrique", "rubriques", "sommaire", "suite",
    "lire", "voir", "ici", "aujourd", "demain", "hier", "lundi", "mardi", "mercredi", "jeudi",
    "vendredi", "samedi", "dimanche", "janvier", "fevrier", "mars", "avril", "juin", "juillet",
    "aout", "septembre", "octobre", "novembre", "decembre",
];

/// Frequent Spanish words.
pub const SPANISH_WORDS: &[&str] = &[
    "los", "las", "una", "del", "que", "con", "por", "para", "como", "mas", "pero", "sus",
    "este", "esta", "estos", "estas", "ese", "esa", "eso", "hay", "son", "ser", "estar", "fue",
    "muy", "todo", "todos", "toda", "todas", "tambien", "cuando", "donde", "entre", "desde",
    "hasta", "sobre", "sin", "tras", "durante", "mediante", "segun", "cada", "otro", "otros",
    "otra", "otras", "mismo", "misma", "nuevo", "nueva", "nuevos", "nuevas", "primero",
    "primera", "ultimo", "ultima", "gran", "grande", "grandes", "pequeno", "pequena", "mejor",
    "mejores", "bueno", "buena", "buenos", "buenas", "espanol", "espanola", "espana",
    "bienvenido", "bienvenidos", "inicio", "principal", "pagina", "paginas", "buscar",
    "busqueda", "buscador", "encontrar", "productos", "producto", "servicios", "servicio",
    "precio", "precios", "comprar", "compra", "compras", "venta", "ventas", "vender", "tienda",
    "tiendas", "ofertas", "oferta", "pedido", "envio", "gratis", "rebajas", "descuento",
    "anuncios", "anuncio", "inmobiliaria", "alquiler", "alquilar", "casa", "casas", "piso",
    "pisos", "apartamento", "apartamentos", "jardin", "cocina", "habitacion", "habitaciones",
    "hotel", "hoteles", "vacaciones", "viaje", "viajes", "turismo", "turistico", "playa",
    "playas", "rural", "casa", "region", "provincia", "provincias", "ciudad", "ciudades",
    "pueblo", "pueblos", "municipio", "ayuntamiento", "comunidad", "calle", "plaza", "avenida",
    "barrio", "centro", "norte", "sur", "este", "oeste", "alto", "alta", "bajo", "baja", "san",
    "santa", "santo", "iglesia", "catedral", "castillo", "museo", "museos", "exposicion",
    "cultura", "cultural", "patrimonio", "historia", "historico", "arte", "artes", "artista",
    "artistas", "pintura", "fotografia", "fotos", "galeria", "musica", "concierto",
    "conciertos", "festival", "espectaculo", "teatro", "cine", "peliculas", "pelicula",
    "libro", "libros", "lectura", "biblioteca", "libreria", "editorial", "prensa", "periodico",
    "noticias", "noticia", "informacion", "informaciones", "actualidad", "tiempo", "salud",
    "medico", "medicos", "farmacia", "hospital", "clinica", "belleza", "moda", "ropa",
    "zapatos", "joyas", "regalos", "boda", "bodas", "ninos", "nino", "nina", "familia",
    "mujeres", "mujer", "hombres", "hombre", "juventud", "estudiantes", "estudiante",
    "escuela", "escuelas", "colegio", "colegios", "instituto", "universidad", "universidades",
    "formacion", "cursos", "curso", "aprender", "idioma", "idiomas", "diccionario",
    "traduccion", "empleo", "empleos", "trabajo", "trabajos", "empresa", "empresas",
    "sociedad", "asociacion", "asociaciones", "federacion", "sindicato", "camara", "comercio",
    "industria", "agricultura", "construccion", "obras", "reforma", "fontaneria",
    "electricidad", "calefaccion", "energia", "medio", "ambiente", "naturaleza", "montana",
    "mar", "rio", "bosque", "parque", "parques", "animales", "perros", "gatos", "caballos",
    "pesca", "caza", "deporte", "deportes", "futbol", "baloncesto", "ciclismo", "senderismo",
    "esqui", "club", "clubes", "equipo", "equipos", "liga", "campeonato", "resultados",
    "calendario", "agenda", "eventos", "fiestas", "fiesta", "navidad", "semana", "cocina",
    "recetas", "receta", "restaurante", "restaurantes", "gastronomia", "vino", "vinos",
    "queso", "tapas", "derecho", "abogado", "abogados", "juridico", "notario", "seguros",
    "seguro", "banco", "bancos", "credito", "finanzas", "impuestos", "dinero", "economia",
    "politica", "gobierno", "ministerio", "elecciones", "consejo", "contacto", "contactar",
    "aviso", "legal", "mapa", "enlaces", "descargar", "descargas", "registro", "registrarse",
    "entrar", "cuenta", "usuario", "usuarios", "miembros", "foro", "foros", "ayuda",
    "preguntas", "respuestas", "guia", "consejos", "articulos", "articulo", "seccion",
    "secciones", "indice", "siguiente", "anterior", "leer", "ver", "aqui", "hoy", "manana",
    "ayer", "lunes", "martes", "miercoles", "jueves", "viernes", "sabado", "domingo", "enero",
    "febrero", "marzo", "abril", "mayo", "junio", "julio", "agosto", "septiembre", "octubre",
    "noviembre", "diciembre", "galeon", "portal", "web", "red", "linea", "gratis", "nuevo",
];

/// Frequent Italian words.
pub const ITALIAN_WORDS: &[&str] = &[
    "del", "della", "dei", "delle", "dello", "degli", "che", "con", "per", "una", "uno", "gli",
    "nel", "nella", "alla", "alle", "dal", "dalla", "sul", "sulla", "come", "anche", "sono",
    "essere", "stato", "stata", "hanno", "questo", "questa", "questi", "queste", "quello",
    "quella", "tutto", "tutti", "tutta", "tutte", "molto", "piu", "meno", "dove", "quando",
    "dopo", "prima", "senza", "sotto", "sopra", "tra", "fra", "verso", "presso", "durante",
    "ogni", "altro", "altri", "altra", "altre", "stesso", "nuovo", "nuova", "nuovi", "nuove",
    "primo", "prima", "ultimo", "ultima", "grande", "grandi", "piccolo", "piccola", "buono",
    "buona", "bella", "bello", "italiano", "italiana", "italiani", "italia", "benvenuto",
    "benvenuti", "home", "pagina", "pagine", "cerca", "ricerca", "cercare", "trovare",
    "prodotti", "prodotto", "servizi", "servizio", "prezzo", "prezzi", "acquista",
    "acquistare", "vendita", "vendere", "negozio", "negozi", "offerte", "offerta", "ordine",
    "spedizione", "gratis", "gratuito", "sconto", "sconti", "annunci", "annuncio",
    "immobiliare", "affitto", "affittare", "casa", "case", "appartamento", "appartamenti",
    "giardino", "cucina", "camera", "camere", "albergo", "alberghi", "hotel", "vacanze",
    "vacanza", "viaggio", "viaggi", "turismo", "turistico", "agriturismo", "spiaggia", "mare",
    "regione", "regioni", "provincia", "province", "citta", "paese", "paesi", "comune",
    "comuni", "municipio", "via", "piazza", "corso", "viale", "quartiere", "centro", "nord",
    "sud", "est", "ovest", "alto", "alta", "basso", "bassa", "san", "santa", "santo", "chiesa",
    "duomo", "castello", "museo", "musei", "mostra", "mostre", "cultura", "culturale",
    "patrimonio", "storia", "storico", "arte", "arti", "artista", "artisti", "pittura",
    "fotografia", "foto", "galleria", "musica", "concerto", "concerti", "festival",
    "spettacolo", "spettacoli", "teatro", "cinema", "film", "libro", "libri", "lettura",
    "biblioteca", "libreria", "editore", "edizioni", "stampa", "giornale", "notizie",
    "notizia", "informazioni", "informazione", "attualita", "tempo", "meteo", "salute",
    "medico", "medici", "farmacia", "ospedale", "clinica", "bellezza", "moda", "abbigliamento",
    "scarpe", "gioielli", "regali", "matrimonio", "bambini", "bambino", "bambina", "famiglia",
    "donne", "donna", "uomini", "uomo", "giovani", "studenti", "studente", "scuola", "scuole",
    "liceo", "istituto", "universita", "formazione", "corsi", "corso", "imparare", "lingua",
    "lingue", "dizionario", "traduzione", "lavoro", "lavori", "impiego", "azienda", "aziende",
    "impresa", "imprese", "societa", "associazione", "associazioni", "federazione",
    "sindacato", "camera", "commercio", "industria", "agricoltura", "costruzioni", "edilizia",
    "ristrutturazione", "idraulico", "elettricista", "riscaldamento", "energia", "ambiente",
    "natura", "montagna", "lago", "fiume", "bosco", "parco", "parchi", "animali", "cani",
    "gatti", "cavalli", "pesca", "caccia", "sport", "calcio", "pallacanestro", "ciclismo",
    "escursionismo", "sci", "club", "squadra", "squadre", "campionato", "risultati",
    "calendario", "agenda", "eventi", "evento", "feste", "festa", "natale", "pasqua", "cucina",
    "ricette", "ricetta", "ristorante", "ristoranti", "gastronomia", "vino", "vini",
    "formaggio", "pizza", "pasta", "diritto", "avvocato", "avvocati", "giuridico", "notaio",
    "assicurazioni", "assicurazione", "banca", "banche", "credito", "finanza", "tasse",
    "soldi", "economia", "politica", "governo", "ministero", "elezioni", "consiglio",
    "contatto", "contatti", "note", "legali", "mappa", "collegamenti", "scaricare",
    "iscrizione", "iscriversi", "accedi", "account", "utente", "utenti", "membri", "forum",
    "aiuto", "domande", "risposte", "guida", "consigli", "articoli", "articolo", "sezione",
    "sezioni", "indice", "avanti", "indietro", "leggere", "vedere", "qui", "oggi", "domani",
    "ieri", "lunedi", "martedi", "mercoledi", "giovedi", "venerdi", "sabato", "domenica",
    "gennaio", "febbraio", "marzo", "aprile", "maggio", "giugno", "luglio", "agosto",
    "settembre", "ottobre", "novembre", "dicembre", "benessere", "azzurro", "verde", "rosso",
];

/// The embedded word list for a language.
pub fn words_for(lang: Language) -> &'static [&'static str] {
    match lang {
        Language::English => ENGLISH_WORDS,
        Language::German => GERMAN_WORDS,
        Language::French => FRENCH_WORDS,
        Language::Spanish => SPANISH_WORDS,
        Language::Italian => ITALIAN_WORDS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::ALL_LANGUAGES;
    use std::collections::HashSet;

    #[test]
    fn every_language_has_a_substantial_list() {
        for lang in ALL_LANGUAGES {
            assert!(
                words_for(lang).len() >= 250,
                "{lang} word list too small: {}",
                words_for(lang).len()
            );
        }
    }

    #[test]
    fn all_entries_are_lowercase_ascii_letters() {
        for lang in ALL_LANGUAGES {
            for w in words_for(lang) {
                assert!(
                    w.chars().all(|c| c.is_ascii_lowercase()),
                    "{lang}: {w:?} is not lowercase ascii"
                );
                assert!(w.len() >= 2, "{lang}: {w:?} too short");
            }
        }
    }

    #[test]
    fn lists_are_sufficiently_distinct() {
        // Some overlap is natural (cognates, "hotel", "forum"), but each
        // pair of languages must have a large disjoint part for the
        // dictionary features to carry signal.
        for a in ALL_LANGUAGES {
            let sa: HashSet<_> = words_for(a).iter().collect();
            for b in ALL_LANGUAGES {
                if a == b {
                    continue;
                }
                let sb: HashSet<_> = words_for(b).iter().collect();
                let overlap = sa.intersection(&sb).count();
                let frac = overlap as f64 / sa.len().min(sb.len()) as f64;
                assert!(
                    frac < 0.25,
                    "{a} and {b} overlap too much: {overlap} shared ({frac:.2})"
                );
            }
        }
    }

    #[test]
    fn signature_words_are_present() {
        assert!(ENGLISH_WORDS.contains(&"the"));
        assert!(GERMAN_WORDS.contains(&"und"));
        assert!(FRENCH_WORDS.contains(&"recherche"));
        assert!(SPANISH_WORDS.contains(&"ciudad"));
        assert!(ITALIAN_WORDS.contains(&"citta"));
        // Paper examples: "produits"/"recherche" indicative of French.
        assert!(FRENCH_WORDS.contains(&"produits"));
    }
}
