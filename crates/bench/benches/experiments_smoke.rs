//! Smoke benchmarks of the experiment harness itself: regenerate the
//! cheaper tables/figures end-to-end (corpus → training → evaluation →
//! report) so that `cargo bench` exercises the same code paths the
//! `experiments` binary uses for the full reproduction.

use criterion::{criterion_group, criterion_main, Criterion};
use urlid::prelude::CorpusScale;
use urlid_bench::experiments;
use urlid_bench::ExperimentContext;

fn bench_experiment_harness(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment_harness");
    group.sample_size(10);

    group.bench_function("corpus_generation_tiny", |b| {
        b.iter(|| ExperimentContext::new(1, CorpusScale::tiny()))
    });

    group.bench_function("table1_datasets", |b| {
        let mut ctx = ExperimentContext::new(2, CorpusScale::tiny());
        b.iter(|| experiments::table1(&mut ctx).len())
    });

    group.bench_function("table4_5_cctld_baseline", |b| {
        let mut ctx = ExperimentContext::new(3, CorpusScale::tiny());
        b.iter(|| experiments::table4_5(&mut ctx).len())
    });

    group.bench_function("table2_3_simulated_humans", |b| {
        let mut ctx = ExperimentContext::new(4, CorpusScale::tiny());
        b.iter(|| experiments::table2_3(&mut ctx).len())
    });

    group.bench_function("figure3_domain_memorization", |b| {
        let mut ctx = ExperimentContext::new(5, CorpusScale::tiny());
        b.iter(|| experiments::figure3(&mut ctx).len())
    });

    group.bench_function("table8_nb_words", |b| {
        let mut ctx = ExperimentContext::new(6, CorpusScale::tiny());
        b.iter(|| experiments::table8(&mut ctx).len())
    });

    group.finish();
}

criterion_group!(benches, bench_experiment_harness);
criterion_main!(benches);
