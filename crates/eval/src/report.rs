//! Plain-text renderings of the paper's tables.
//!
//! The benchmark binaries regenerate every table of the paper; this module
//! provides the shared formatting so that their output lines up with the
//! layout of the original tables (Table 2, 4, 7, 8, 9, 10).

use crate::evaluate::EvaluationResult;
use crate::metrics::BinaryMetrics;
use urlid_lexicon::{Language, ALL_LANGUAGES};

/// Render one test set's per-language metrics in the style of Tables 2
/// and 4: `language  P  R  p(−|−)  F`.
pub fn metrics_table(title: &str, result: &EvaluationResult) -> String {
    let mut out = format!("{title}\n");
    out.push_str("language   P     R     p(-|-) F\n");
    for lang in ALL_LANGUAGES {
        let m = result.metrics(lang);
        out.push_str(&format!(
            "{:<10} {:.2}  {:.2}  {:.2}   {:.2}\n",
            lang.name(),
            m.precision,
            m.recall,
            m.negative_success,
            m.f_measure
        ));
    }
    out.push_str(&format!(
        "{:<10} {:.2}  {:.2}  -      {:.2}\n",
        "average",
        result.macro_metrics().mean_precision(),
        result.macro_metrics().mean_recall(),
        result.mean_f_measure()
    ));
    out
}

/// Render an F-measure grid in the style of Tables 8 and 9: rows are
/// languages, columns are test sets, the last column and row are averages.
pub fn f_measure_grid(
    title: &str,
    column_names: &[&str],
    per_language_per_set: &[[f64; 5]],
) -> String {
    assert_eq!(column_names.len(), per_language_per_set.len());
    let mut out = format!("{title}\n");
    out.push_str(&format!("{:<10}", "language"));
    for name in column_names {
        out.push_str(&format!(" {name:>6}"));
    }
    out.push_str("    avg\n");
    let mut column_sums = vec![0.0; column_names.len()];
    for lang in ALL_LANGUAGES {
        out.push_str(&format!("{:<10}", lang.name()));
        let mut row_sum = 0.0;
        for (c, column) in per_language_per_set.iter().enumerate() {
            let f = column[lang.index()];
            row_sum += f;
            column_sums[c] += f;
            out.push_str(&format!(" {f:>6.2}"));
        }
        out.push_str(&format!(" {:>6.2}\n", row_sum / column_names.len() as f64));
    }
    out.push_str(&format!("{:<10}", "average"));
    let mut total = 0.0;
    for sum in &column_sums {
        total += sum / 5.0;
        out.push_str(&format!(" {:>6.2}", sum / 5.0));
    }
    out.push_str(&format!(" {:>6.2}\n", total / column_names.len() as f64));
    out
}

/// A single Table 7 row fragment: `P R p(−|−) F` for one
/// feature-set/algorithm/language/test-set combination.
pub fn table7_cell(metrics: &BinaryMetrics) -> String {
    metrics.paper_row()
}

/// Render a comparison row for Table 10 (URL-only vs content training).
pub fn url_vs_content_row(lang: Language, url_f: f64, content_f: f64) -> String {
    format!(
        "{:<10} URL: {:.2}   URL+content: {:.2}   delta: {:+.2}",
        lang.name(),
        url_f,
        content_f,
        content_f - url_f
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::BinaryCounts;

    fn fake_result() -> EvaluationResult {
        let mut r = EvaluationResult {
            dataset: "fake".into(),
            ..Default::default()
        };
        for i in 0..5 {
            r.counts[i] = BinaryCounts {
                true_positives: 80 + i,
                false_negatives: 20 - i,
                true_negatives: 90,
                false_positives: 10,
            };
        }
        r
    }

    #[test]
    fn metrics_table_lists_all_languages_and_average() {
        let text = metrics_table("Table X", &fake_result());
        for lang in ALL_LANGUAGES {
            assert!(text.contains(lang.name()), "{text}");
        }
        assert!(text.contains("average"));
        assert!(text.lines().count() >= 7);
    }

    #[test]
    fn f_measure_grid_has_rows_columns_and_averages() {
        let grid = f_measure_grid(
            "Table 8",
            &["ODP", "SER", "WC"],
            &[
                [0.88, 0.94, 0.86, 0.88, 0.86],
                [0.94, 0.97, 0.94, 0.96, 0.97],
                [0.87, 0.86, 0.92, 0.88, 0.97],
            ],
        );
        assert!(grid.contains("ODP"));
        assert!(grid.contains("English"));
        assert!(grid.contains("average"));
        // Title + header + 5 language rows + average row.
        assert_eq!(grid.trim_end().lines().count(), 8);
    }

    #[test]
    #[should_panic]
    fn f_measure_grid_checks_dimensions() {
        let _ = f_measure_grid("bad", &["ODP"], &[]);
    }

    #[test]
    fn url_vs_content_row_shows_delta() {
        let row = url_vs_content_row(Language::German, 0.94, 0.77);
        assert!(row.contains("German"));
        assert!(row.contains("-0.17"));
    }

    #[test]
    fn table7_cell_is_the_paper_row() {
        let m = BinaryMetrics {
            precision: 0.9,
            recall: 0.8,
            negative_success: 0.95,
            f_measure: 0.85,
        };
        assert_eq!(table7_cell(&m), "0.90 0.80 0.95 0.85");
    }
}
