//! Criterion micro-benchmarks of the hot paths: tokenisation, feature
//! extraction, classification and training. These measure the costs a
//! crawler integrating `urlid` would actually pay per URL.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use urlid::features::{CustomFeatureExtractor, TrigramFeatureExtractor, WordFeatureExtractor};
use urlid::prelude::*;

fn sample_urls(n: usize) -> Vec<String> {
    let mut generator = UrlGenerator::new(1);
    let profile = urlid::corpus::DatasetProfile::web_crawl();
    let mut urls = Vec::with_capacity(n);
    for lang in ALL_LANGUAGES {
        urls.extend(generator.generate_many(lang, &profile, n / 5));
    }
    urls
}

fn training_data() -> Dataset {
    let mut generator = UrlGenerator::new(2);
    odp_dataset(&mut generator, CorpusScale::tiny()).train
}

fn bench_tokenization(c: &mut Criterion) {
    let urls = sample_urls(1000);
    let mut group = c.benchmark_group("tokenize");
    group.throughput(Throughput::Elements(urls.len() as u64));
    group.bench_function("tokenize_url_1000", |b| {
        b.iter(|| {
            urls.iter()
                .map(|u| urlid::tokenize::tokenize_url(u).len())
                .sum::<usize>()
        })
    });
    group.bench_function("trigrams_1000", |b| {
        b.iter(|| {
            urls.iter()
                .map(|u| urlid::tokenize::ngram::trigrams_of_url_tokens(u).len())
                .sum::<usize>()
        })
    });
    group.bench_function("parse_url_1000", |b| {
        b.iter(|| {
            urls.iter()
                .filter(|u| ParsedUrl::parse(u).tld().is_some())
                .count()
        })
    });
    group.finish();
}

fn bench_feature_extraction(c: &mut Criterion) {
    let train = training_data();
    let urls = sample_urls(500);
    let mut words = WordFeatureExtractor::default();
    words.fit(&train.urls);
    let mut trigrams = TrigramFeatureExtractor::default();
    trigrams.fit(&train.urls);
    let mut custom = CustomFeatureExtractor::default();
    custom.fit(&train.urls);

    let mut group = c.benchmark_group("feature_extraction");
    group.throughput(Throughput::Elements(urls.len() as u64));
    group.bench_function("word_features_500", |b| {
        b.iter(|| urls.iter().map(|u| words.transform(u).nnz()).sum::<usize>())
    });
    group.bench_function("trigram_features_500", |b| {
        b.iter(|| {
            urls.iter()
                .map(|u| trigrams.transform(u).nnz())
                .sum::<usize>()
        })
    });
    group.bench_function("custom_features_500", |b| {
        b.iter(|| {
            urls.iter()
                .map(|u| custom.transform(u).nnz())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_classification(c: &mut Criterion) {
    let train = training_data();
    let identifier = LanguageIdentifier::train_paper_best(&train);
    let cctld = CcTldClassifier::cctld(Language::German);
    let urls = sample_urls(500);

    let mut group = c.benchmark_group("classification");
    group.throughput(Throughput::Elements(urls.len() as u64));
    group.bench_function("identify_nb_words_500", |b| {
        b.iter(|| {
            urls.iter()
                .filter(|u| identifier.identify(u).is_some())
                .count()
        })
    });
    group.bench_function("identify_batch_nb_words_500", |b| {
        let refs: Vec<&str> = urls.iter().map(|u| u.as_str()).collect();
        b.iter(|| {
            identifier
                .identify_batch(&refs)
                .iter()
                .filter(|l| l.is_some())
                .count()
        })
    });
    group.bench_function("binary_decision_nb_words_500", |b| {
        b.iter(|| {
            urls.iter()
                .filter(|u| identifier.is_language(u, Language::German))
                .count()
        })
    });
    group.bench_function("cctld_baseline_500", |b| {
        b.iter(|| urls.iter().filter(|u| cctld.classify_url(u)).count())
    });
    group.finish();
}

fn bench_training(c: &mut Criterion) {
    let train = training_data();
    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    group.bench_function("nb_words_full_set", |b| {
        b.iter_batched(
            || train.clone(),
            |t| train_classifier_set(&t, &TrainingConfig::paper_best()),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("re_trigrams_full_set", |b| {
        b.iter_batched(
            || train.clone(),
            |t| {
                train_classifier_set(
                    &t,
                    &TrainingConfig::new(FeatureSetKind::Trigrams, Algorithm::RelativeEntropy),
                )
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("dt_custom_full_set", |b| {
        b.iter_batched(
            || train.clone(),
            |t| {
                train_classifier_set(
                    &t,
                    &TrainingConfig::new(FeatureSetKind::Custom, Algorithm::DecisionTree),
                )
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tokenization,
    bench_feature_extraction,
    bench_classification,
    bench_training
);
criterion_main!(benches);
