//! Regrouping web-search results by language (Section 1: "regrouping/
//! filtering the results for a web search, even if the underlying search
//! engine does not provide the language of the URLs presented").
//!
//! The example trains the best per-language combination classifiers
//! (Section 5.6 recipes) and groups a page of mixed-language search
//! results by the predicted language, comparing against two simulated
//! human annotators.
//!
//! Run with:
//! ```sh
//! cargo run --release --example search_results
//! ```

use urlid::prelude::*;

fn main() {
    // Train the best-combination classifiers on a small ODP corpus.
    let mut generator = UrlGenerator::new(2024);
    let odp = odp_dataset(&mut generator, CorpusScale::small());
    let set = recipes::train_best_combination(&odp.train, 3);
    let identifier = LanguageIdentifier::from_classifier_set(
        set,
        TrainingConfig::new(FeatureSetKind::Words, Algorithm::NaiveBayes),
    );

    // A "page of search results" of mixed languages (SER profile).
    let profile = urlid::corpus::DatasetProfile::ser();
    let mut results: Vec<(String, Language)> = Vec::new();
    for lang in ALL_LANGUAGES {
        for url in generator.generate_many(lang, &profile, 6) {
            results.push((url, lang));
        }
    }

    println!(
        "grouping {} search results by predicted language\n",
        results.len()
    );
    for lang in ALL_LANGUAGES {
        let group: Vec<&(String, Language)> = results
            .iter()
            .filter(|(url, _)| identifier.identify(url) == Some(lang))
            .collect();
        println!("== {} ({} results)", lang.name(), group.len());
        for (url, true_lang) in group {
            let marker = if *true_lang == lang {
                "✓".to_string()
            } else {
                format!("✗ actually {}", true_lang.iso_code())
            };
            println!("   {marker} {url}");
        }
        println!();
    }

    // How well would a human do with only the URLs? (Section 5.1.)
    let urls: Vec<String> = results.iter().map(|(u, _)| u.clone()).collect();
    let mut human = SimulatedHuman::evaluator_one(1);
    let annotations = human.annotate_all(&urls);
    let mut human_correct = 0;
    let mut machine_correct = 0;
    for (i, (url, true_lang)) in results.iter().enumerate() {
        if annotations[i][true_lang.index()] {
            human_correct += 1;
        }
        if identifier.identify(url) == Some(*true_lang) {
            machine_correct += 1;
        }
    }
    println!(
        "correctly grouped: machine {}/{}  vs  simulated human {}/{}",
        machine_correct,
        results.len(),
        human_correct,
        results.len()
    );
}
