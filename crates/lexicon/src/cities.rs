//! Embedded city-name dictionaries.
//!
//! The paper builds per-language city dictionaries from Wikipedia lists
//! because the OpenOffice dictionaries "tend to have large cities (Paris,
//! London, Berlin, ...) in all the languages, and miss smaller towns".
//! Here we embed hand-curated lists of cities and towns located in
//! countries where each language is spoken. Ambiguous, internationally
//! famous capitals are deliberately kept in every relevant list (as in the
//! OpenOffice dictionaries) while the bulk of each list consists of smaller
//! places that are distinctive for the language.
//!
//! All names are lowercase ASCII, the form in which they appear in URLs.

use crate::language::Language;

/// Cities in English-speaking countries (US, UK, Ireland, Australia, NZ).
pub const ENGLISH_CITIES: &[&str] = &[
    "london", "manchester", "birmingham", "liverpool", "leeds", "sheffield", "bristol",
    "nottingham", "leicester", "coventry", "bradford", "cardiff", "belfast", "glasgow",
    "edinburgh", "aberdeen", "dundee", "newcastle", "sunderland", "portsmouth", "southampton",
    "brighton", "plymouth", "oxford", "cambridge", "york", "bath", "exeter", "norwich",
    "ipswich", "dublin", "cork", "galway", "limerick", "newyork", "losangeles", "chicago",
    "houston", "phoenix", "philadelphia", "sanantonio", "sandiego", "dallas", "austin",
    "seattle", "denver", "boston", "nashville", "memphis", "portland", "baltimore",
    "milwaukee", "albuquerque", "tucson", "sacramento", "kansascity", "atlanta", "omaha",
    "raleigh", "miami", "oakland", "minneapolis", "cleveland", "pittsburgh", "cincinnati",
    "tampa", "orlando", "sydney", "melbourne", "brisbane", "perth", "adelaide", "canberra",
    "hobart", "darwin", "auckland", "wellington", "christchurch", "hamilton", "dunedin",
    "toronto", "vancouver", "calgary", "ottawa", "montrealen", "winnipeg", "halifax",
];

/// Cities and towns in German-speaking countries (Germany, Austria).
pub const GERMAN_CITIES: &[&str] = &[
    "berlin", "hamburg", "muenchen", "munich", "koeln", "frankfurt", "stuttgart",
    "duesseldorf", "dortmund", "essen", "leipzig", "bremen", "dresden", "hannover",
    "nuernberg", "duisburg", "bochum", "wuppertal", "bielefeld", "bonn", "muenster",
    "karlsruhe", "mannheim", "augsburg", "wiesbaden", "gelsenkirchen", "moenchengladbach",
    "braunschweig", "chemnitz", "kiel", "aachen", "halle", "magdeburg", "freiburg",
    "krefeld", "luebeck", "oberhausen", "erfurt", "mainz", "rostock", "kassel", "hagen",
    "hamm", "saarbruecken", "muelheim", "potsdam", "ludwigshafen", "oldenburg",
    "leverkusen", "osnabrueck", "solingen", "heidelberg", "herne", "neuss", "darmstadt",
    "paderborn", "regensburg", "ingolstadt", "wuerzburg", "fuerth", "wolfsburg", "offenbach",
    "ulm", "heilbronn", "pforzheim", "goettingen", "bottrop", "trier", "recklinghausen",
    "reutlingen", "bremerhaven", "koblenz", "bergisch", "jena", "remscheid", "erlangen",
    "moers", "siegen", "hildesheim", "salzgitter", "wien", "graz", "linz", "salzburg",
    "innsbruck", "klagenfurt", "villach", "wels", "dornbirn", "steyr", "bregenz",
];

/// Cities and towns in French-speaking countries (France, plus francophone
/// north Africa per the paper's ccTLD list).
pub const FRENCH_CITIES: &[&str] = &[
    "paris", "marseille", "lyon", "toulouse", "nice", "nantes", "strasbourg", "montpellier",
    "bordeaux", "lille", "rennes", "reims", "lehavre", "saintetienne", "toulon", "grenoble",
    "dijon", "angers", "nimes", "villeurbanne", "clermont", "ferrand", "aixenprovence",
    "brest", "limoges", "tours", "amiens", "perpignan", "metz", "besancon", "orleans",
    "rouen", "mulhouse", "caen", "nancy", "argenteuil", "montreuil", "roubaix", "tourcoing",
    "avignon", "poitiers", "versailles", "courbevoie", "creteil", "pau", "colombes",
    "aulnay", "asnieres", "rueil", "antibes", "calais", "cannes", "dunkerque",
    "bourges", "lorient", "chambery", "annecy", "quimper", "valence", "troyes", "montauban",
    "niort", "chartres", "beauvais", "cholet", "laval", "vannes", "frejus", "arles",
    "bayonne", "carcassonne", "albi", "biarritz", "tunis", "sfax", "sousse", "alger",
    "oran", "constantine", "antananarivo", "tananarive",
];

/// Cities and towns in Spanish-speaking countries (Spain and Latin America
/// per the paper's ccTLD list).
pub const SPANISH_CITIES: &[&str] = &[
    "madrid", "barcelona", "valencia", "sevilla", "zaragoza", "malaga", "murcia", "palma",
    "bilbao", "alicante", "cordoba", "valladolid", "vigo", "gijon", "hospitalet", "vitoria",
    "granada", "elche", "oviedo", "badalona", "cartagena", "terrassa", "jerez", "sabadell",
    "mostoles", "alcala", "pamplona", "fuenlabrada", "almeria", "leganes", "santander",
    "burgos", "castellon", "albacete", "getafe", "salamanca", "huelva", "logrono", "badajoz",
    "tarragona", "leon", "cadiz", "lleida", "marbella", "dosbermanas", "mataro", "torrejon",
    "parla", "algeciras", "santiagodecompostela", "alcorcon", "toledo", "jaen", "ourense",
    "reus", "lugo", "girona", "caceres", "segovia", "avila", "cuenca", "zamora", "teruel",
    "soria", "mexico", "guadalajara", "monterrey", "puebla", "tijuana", "cancun", "merida",
    "bogota", "medellin", "cali", "barranquilla", "cartagenadeindias", "buenosaires",
    "rosario", "mendoza", "laplata", "cordobaargentina", "santiago", "valparaiso",
    "concepcion", "lima", "arequipa", "trujillo", "cusco", "caracas", "maracaibo",
];

/// Cities and towns in Italy.
pub const ITALIAN_CITIES: &[&str] = &[
    "roma", "milano", "napoli", "torino", "palermo", "genova", "bologna", "firenze",
    "bari", "catania", "venezia", "verona", "messina", "padova", "trieste", "taranto",
    "brescia", "prato", "parma", "modena", "reggiocalabria", "reggioemilia", "perugia",
    "ravenna", "livorno", "cagliari", "foggia", "rimini", "salerno", "ferrara", "sassari",
    "latina", "giugliano", "monza", "siracusa", "pescara", "bergamo", "forli", "trento",
    "vicenza", "terni", "bolzano", "novara", "piacenza", "ancona", "andria", "arezzo",
    "udine", "cesena", "lecce", "pesaro", "barletta", "alessandria", "spezia", "pisa",
    "pistoia", "guidonia", "lucca", "catanzaro", "brindisi", "treviso", "busto", "como",
    "grosseto", "sesto", "varese", "fiumicino", "casoria", "asti", "cinisello", "caserta",
    "gela", "aprilia", "ragusa", "pavia", "cremona", "carpi", "quartu", "lamezia",
    "altamura", "imola", "massa", "trapani", "viterbo", "cosenza", "potenza", "crotone",
    "matera", "agrigento", "faenza", "savona", "siena", "assisi", "amalfi", "portofino",
];

/// The embedded city list for a language.
pub fn cities_for(lang: Language) -> &'static [&'static str] {
    match lang {
        Language::English => ENGLISH_CITIES,
        Language::German => GERMAN_CITIES,
        Language::French => FRENCH_CITIES,
        Language::Spanish => SPANISH_CITIES,
        Language::Italian => ITALIAN_CITIES,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::ALL_LANGUAGES;

    #[test]
    fn every_language_has_enough_cities() {
        for lang in ALL_LANGUAGES {
            assert!(
                cities_for(lang).len() >= 60,
                "{lang}: only {} cities",
                cities_for(lang).len()
            );
        }
    }

    #[test]
    fn city_names_are_lowercase_ascii() {
        for lang in ALL_LANGUAGES {
            for c in cities_for(lang) {
                assert!(
                    c.chars().all(|ch| ch.is_ascii_lowercase()),
                    "{lang}: {c:?}"
                );
            }
        }
    }

    #[test]
    fn paper_example_berlin_is_german() {
        // "This way we can, e.g., tell that Berlin is a city in a
        // German-speaking country."
        assert!(GERMAN_CITIES.contains(&"berlin"));
        assert!(!FRENCH_CITIES.contains(&"berlin"));
        assert!(!SPANISH_CITIES.contains(&"berlin"));
    }

    #[test]
    fn no_intra_list_duplicates() {
        for lang in ALL_LANGUAGES {
            let mut v: Vec<_> = cities_for(lang).to_vec();
            let before = v.len();
            v.sort_unstable();
            v.dedup();
            assert_eq!(before, v.len(), "{lang} city list has duplicates");
        }
    }
}
