//! End-to-end integration tests spanning every crate: corpus generation →
//! feature extraction → training → evaluation, exercised through the
//! public `urlid` facade.

use urlid::eval::report::metrics_table;
use urlid::prelude::*;

/// A shared small corpus for the whole test file (regenerated per test —
/// generation is deterministic and cheap at tiny scale).
fn corpus() -> PaperCorpus {
    PaperCorpus::generate(12345, CorpusScale::tiny())
}

#[test]
fn full_pipeline_naive_bayes_words() {
    let corpus = corpus();
    let training = corpus.combined_training();
    let identifier = LanguageIdentifier::train_paper_best(&training);

    for (name, test) in corpus.test_sets() {
        let result = identifier.evaluate(test);
        assert!(
            result.mean_f_measure() > 0.6,
            "{name}: F too low: {:.3}",
            result.mean_f_measure()
        );
        // The report renders without panicking and mentions every language.
        let table = metrics_table(name, &result);
        assert!(table.contains("Italian"));
    }
}

#[test]
fn classifier_beats_the_cctld_baseline_on_odp() {
    let corpus = corpus();
    let nb = LanguageIdentifier::train_paper_best(&corpus.odp.train);
    let cctld = LanguageIdentifier::train(
        &corpus.odp.train,
        &TrainingConfig::new(FeatureSetKind::Words, Algorithm::CcTld),
    );
    let nb_f = nb.evaluate(&corpus.odp.test).mean_f_measure();
    let cctld_f = cctld.evaluate(&corpus.odp.test).mean_f_measure();
    assert!(
        nb_f > cctld_f,
        "NB+words ({nb_f:.3}) must beat ccTLD ({cctld_f:.3})"
    );
}

#[test]
fn every_learning_algorithm_runs_end_to_end() {
    let corpus = corpus();
    let training = &corpus.odp.train;
    let test = &corpus.odp.test;
    for algorithm in [
        Algorithm::NaiveBayes,
        Algorithm::RelativeEntropy,
        Algorithm::MaxEnt,
        Algorithm::KNearestNeighbors,
    ] {
        let config =
            TrainingConfig::new(FeatureSetKind::Words, algorithm).with_maxent_iterations(10);
        let id = LanguageIdentifier::train(training, &config);
        let f = id.evaluate(test).mean_f_measure();
        assert!(f > 0.4, "{algorithm}: F = {f:.3}");
    }
    // The decision tree is only meant for the custom feature set.
    let dt = LanguageIdentifier::train(
        training,
        &TrainingConfig::new(FeatureSetKind::Custom, Algorithm::DecisionTree),
    );
    assert!(dt.evaluate(test).mean_f_measure() > 0.4);
}

#[test]
fn combined_classifiers_change_precision_recall_tradeoff() {
    let corpus = corpus();
    let training = corpus.combined_training();
    let test = &corpus.odp.test;

    let base = train_classifier_set(&training, &TrainingConfig::paper_best());
    let combined = recipes::train_best_combination(&training, 1);

    let base_result = evaluate_classifier_set(&base, test);
    let combined_result = evaluate_classifier_set(&combined, test);
    // Both are reasonable classifiers.
    assert!(base_result.mean_f_measure() > 0.6);
    assert!(combined_result.mean_f_measure() > 0.6);
    // The Spanish recipe is a precision improvement: its precision should
    // not be (much) worse than the single classifier's.
    let base_sp = base_result.metrics(Language::Spanish);
    let comb_sp = combined_result.metrics(Language::Spanish);
    assert!(comb_sp.precision >= base_sp.precision - 0.05);
}

#[test]
fn content_training_reduces_quality_as_in_section7() {
    let corpus = corpus();
    let mut with_content = corpus.odp.train.clone();
    attach_content(&mut with_content, &mut ContentGenerator::with_seed(9));

    let url_only = LanguageIdentifier::train_paper_best(&corpus.odp.train);
    let content_trained = LanguageIdentifier::train(
        &with_content,
        &TrainingConfig::paper_best().with_training_content(),
    );

    let f_url = url_only.evaluate(&corpus.odp.test).mean_f_measure();
    let f_content = content_trained.evaluate(&corpus.odp.test).mean_f_measure();
    assert!(
        f_content < f_url + 0.02,
        "content training should not help (paper Section 7): URL-only {f_url:.3} vs content {f_content:.3}"
    );
}

#[test]
fn simulated_humans_are_worse_than_the_machine() {
    let corpus = corpus();
    let training = corpus.combined_training();
    let test = &corpus.web_crawl;
    let machine = LanguageIdentifier::train_paper_best(&training)
        .evaluate(test)
        .mean_f_measure();
    let urls: Vec<String> = test.urls.iter().map(|u| u.url.clone()).collect();
    let human = evaluate_annotations(&SimulatedHuman::evaluator_one(1).annotate_all(&urls), test)
        .mean_f_measure();
    assert!(
        machine > human,
        "machine ({machine:.3}) should beat the simulated human ({human:.3})"
    );
}

#[test]
fn identifier_is_usable_from_multiple_threads() {
    let corpus = corpus();
    let identifier = std::sync::Arc::new(LanguageIdentifier::train_paper_best(&corpus.odp.train));
    let urls: Vec<String> = corpus
        .odp
        .test
        .urls
        .iter()
        .take(200)
        .map(|u| u.url.clone())
        .collect();
    let mut handles = Vec::new();
    for chunk in urls.chunks(50) {
        let id = std::sync::Arc::clone(&identifier);
        let chunk: Vec<String> = chunk.to_vec();
        handles.push(std::thread::spawn(move || {
            chunk.iter().filter(|u| id.identify(u).is_some()).count()
        }));
    }
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0);
}
