//! An instrumented [`FeatureExtractor`] wrapper that counts extractions.
//!
//! The single-pass scoring pipeline guarantees *exactly one* feature
//! extraction per classified URL, and the serving layer's result cache
//! guarantees *zero* extractions on a cache hit. Both invariants are
//! asserted by integration tests through [`CountingExtractor`]: it wraps
//! any fitted extractor, delegates every call, and counts how many times
//! `transform` / `transform_with` ran.
//!
//! The counter uses a relaxed atomic so the wrapper is safe to share
//! across the batch-classification worker threads and the HTTP server's
//! request handlers.

use crate::dataset::LabeledUrl;
use crate::extractor::{FeatureExtractor, FeatureSetKind};
use crate::scratch::ExtractScratch;
use crate::vector::SparseVector;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Wraps a feature extractor and counts every extraction.
#[derive(Debug)]
pub struct CountingExtractor<E> {
    inner: E,
    calls: AtomicUsize,
}

impl<E: FeatureExtractor> CountingExtractor<E> {
    /// Wrap an extractor (typically already fitted).
    pub fn new(inner: E) -> Self {
        Self {
            inner,
            calls: AtomicUsize::new(0),
        }
    }

    /// Number of `transform` / `transform_with` calls since construction
    /// or the last [`CountingExtractor::reset`].
    pub fn calls(&self) -> usize {
        self.calls.load(Ordering::Relaxed)
    }

    /// Reset the call counter to zero.
    pub fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
    }

    /// The wrapped extractor.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: FeatureExtractor> FeatureExtractor for CountingExtractor<E> {
    fn fit(&mut self, training: &[LabeledUrl]) {
        self.inner.fit(training);
    }

    fn transform(&self, url: &str) -> SparseVector {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.transform(url)
    }

    fn transform_with(&self, url: &str, scratch: &mut ExtractScratch) -> SparseVector {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.transform_with(url, scratch)
    }

    fn transform_training(&self, example: &LabeledUrl) -> SparseVector {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.transform_training(example)
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn feature_name(&self, index: u32) -> Option<String> {
        self.inner.feature_name(index)
    }

    fn kind(&self) -> FeatureSetKind {
        self.inner.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words::WordFeatureExtractor;
    use urlid_lexicon::Language;

    #[test]
    fn counts_and_resets() {
        let mut inner = WordFeatureExtractor::default();
        inner.fit(&[LabeledUrl::new("http://a.de/wetter", Language::German)]);
        let counter = CountingExtractor::new(inner);
        assert_eq!(counter.calls(), 0);
        let direct = counter.transform("http://a.de/wetter");
        let scratched = counter.transform_with("http://a.de/wetter", &mut ExtractScratch::new());
        assert_eq!(direct, scratched);
        assert_eq!(counter.calls(), 2);
        counter.reset();
        assert_eq!(counter.calls(), 0);
        assert_eq!(counter.kind(), counter.inner().kind());
        assert_eq!(counter.dim(), counter.inner().dim());
    }
}
