//! The load generator: hammer a running server with a corpus-generated
//! URL mix and emit a machine-readable benchmark report.
//!
//! The URL mix comes from
//! [`urlid_corpus::UrlGenerator::crawl_frontier_mix`]: a pool of
//! `unique_urls` mixed-language web-crawl URLs, sampled with repetition —
//! with more requests than unique URLs the workload repeats URLs exactly
//! like real traffic does, which is what exercises (and measures) the
//! result cache.
//!
//! Each active worker thread keeps one keep-alive connection and
//! records per-request wall latency into its own shared log-linear
//! [`Histogram`] (the same `urlid-telemetry` buckets the server
//! exports); the per-worker histograms merge exactly, so the reported
//! p50/p90/p99/p99.9 carry the bucket scheme's ≤3.125% relative error
//! and are directly comparable to the server-side `/metrics`
//! distribution. On top of the active workers, a scenario can hold
//! `idle_connections` **mostly-idle
//! keep-alive connections** open for the whole run — the crawl-frontier
//! client population the reactor refactor exists for. Each idle
//! connection proves itself twice: one request when it opens, and one
//! sweep request after the hammering ends (a connection the server
//! evicted or wedged fails the sweep, so `errors == 0` certifies all of
//! them survived).
//!
//! Two driving modes:
//!
//! * **Closed loop** (`arrival_rps == 0`, the default): each worker
//!   sends its next request when the previous response lands. Measures
//!   peak throughput — the server sets the pace.
//! * **Open loop** (`arrival_rps > 0`): requests are *scheduled* at a
//!   fixed aggregate arrival rate regardless of how fast responses come
//!   back, which is how real overload arrives. Latency is measured from
//!   the scheduled send time, so server-side queueing (and client-side
//!   socket backpressure) counts against the percentiles — the honest
//!   latency-under-overload number.
//!
//! In both modes, admission-control responses (`503`/`413`) are tallied
//! as `admission_rejects`, **not** errors — a server shedding load by
//! design is behaving, not failing — and their latency still lands in
//! the percentiles (the client waited for that answer).
//!
//! A single run produces a [`BenchReport`]; [`run_suite`] strings
//! several scenarios into one multi-scenario [`BenchSuite`], written as
//! `BENCH_serve.json` so the perf trajectory accumulates next to the
//! criterion bench JSON (`target/bench-results-*.json`).

use crate::http;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize, Value};
use std::io::{self, BufReader};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Instant;
use urlid_corpus::UrlGenerator;
use urlid_telemetry::Histogram;

/// Schema version stamped into [`BenchReport`] and [`BenchSuite`].
/// Version 3 switched the latency summary to the shared log-linear
/// histogram and added `p999_ms`. Version 4 added the multi-reactor
/// columns (`reactors`, `per_reactor`), the open-loop fields
/// (`arrival_rps`), and `admission_rejects`. Version 5 added the
/// per-scenario `io_backend` (which reactor I/O engine — `uring`,
/// `epoll` or `poll` — the server ran, read from `/metrics`), so an
/// io_uring number is never compared against an epoll baseline without
/// the label saying so.
pub const SERVE_BENCH_SCHEMA: u32 = 5;

/// Load-generator configuration for one scenario.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Scenario name carried into the report.
    pub name: String,
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Total number of `/identify` requests the active workers send.
    pub requests: usize,
    /// Concurrent active keep-alive connections (worker threads).
    pub concurrency: usize,
    /// Mostly-idle keep-alive connections held open across the run
    /// (each sends one request at open and one in the final sweep).
    pub idle_connections: usize,
    /// Size of the unique-URL pool (smaller pool → higher cache hit rate).
    pub unique_urls: usize,
    /// Seed for the URL mix and the per-worker sampling.
    pub seed: u64,
    /// Open-loop aggregate arrival rate in requests/second. `0.0`
    /// (default) runs the classic closed loop. In [`run_suite`], a
    /// *negative* value is a sentinel meaning "this multiple of the
    /// measured baseline throughput" (so `-1.5` drives 1.5× capacity —
    /// guaranteed overload without hardcoding this box's speed).
    pub arrival_rps: f64,
    /// Where to write the JSON report (`None` skips the file).
    pub out: Option<PathBuf>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            name: "baseline".to_owned(),
            addr: "127.0.0.1:7878".to_owned(),
            requests: 10_000,
            concurrency: 4,
            idle_connections: 0,
            unique_urls: 2_000,
            seed: 7,
            arrival_rps: 0.0,
            out: Some(PathBuf::from("BENCH_serve.json")),
        }
    }
}

/// Latency percentiles in milliseconds, computed from the merged
/// per-worker [`Histogram`]s (log-linear buckets, ≤3.125% relative
/// error; the mean is exact because the histogram keeps the true sum).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median.
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// 99.9th percentile.
    pub p999_ms: f64,
    /// Mean (exact).
    pub mean_ms: f64,
    /// Slowest request (bucket-resolved).
    pub max_ms: f64,
}

impl LatencySummary {
    /// Summarise a latency histogram recorded in microseconds.
    pub fn from_histogram(hist: &Histogram) -> Self {
        let q = |q: f64| hist.quantile(q).unwrap_or(0) as f64 / 1000.0;
        Self {
            p50_ms: q(0.50),
            p90_ms: q(0.90),
            p99_ms: q(0.99),
            p999_ms: q(0.999),
            mean_ms: hist.mean() / 1000.0,
            max_ms: hist.max() as f64 / 1000.0,
        }
    }
}

/// Server-side cache statistics, read from `GET /metrics` after the run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheSummary {
    /// Cache hits over the server's lifetime.
    pub hits: u64,
    /// Cache misses over the server's lifetime.
    pub misses: u64,
    /// Hits over lookups.
    pub hit_rate: f64,
}

/// One reactor's share of the run, read from `GET /metrics` afterwards
/// — shows how evenly the kernel balanced accepts across the
/// `SO_REUSEPORT` listeners.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReactorSample {
    /// Reactor index.
    pub reactor: u64,
    /// Connections this reactor accepted.
    pub accepted: u64,
    /// Idle-timeout evictions on this reactor.
    pub timed_out: u64,
    /// Admission-control 503s answered by this reactor.
    pub admission_rejects: u64,
}

/// One scenario's machine-readable benchmark report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Report kind tag, always `"serve"`.
    pub bench: String,
    /// Report schema version ([`SERVE_BENCH_SCHEMA`]).
    pub schema: u32,
    /// Scenario name (`baseline_4conn`, `idle_1024`, ...).
    pub scenario: String,
    /// Seconds since the Unix epoch when the run finished.
    pub unix_time: u64,
    /// Requests completed successfully (active + idle-open + sweep).
    pub requests: u64,
    /// Requests that failed (non-200 or transport error), across the
    /// active hammer, the idle opens and the final idle sweep.
    pub errors: u64,
    /// Concurrent active connections used.
    pub concurrency: u64,
    /// Mostly-idle keep-alive connections held open across the run.
    pub idle_connections: u64,
    /// Unique-URL pool size.
    pub unique_urls: u64,
    /// Open-loop arrival rate driven (resolved, requests/second); `0`
    /// for closed-loop scenarios.
    pub arrival_rps: f64,
    /// Wall-clock duration of the active hammer in seconds.
    pub duration_secs: f64,
    /// Successfully completed (200) active requests per second.
    pub throughput_rps: f64,
    /// Admission-control responses (`503`/`413`) received across the
    /// run — deliberate load shedding, counted apart from `errors`.
    pub admission_rejects: u64,
    /// Server thread budget (reactors + scoring pool) read from
    /// `GET /metrics` after the run; 0 when the server predates the
    /// gauge. This is what certifies "1024 connections, bounded
    /// threads".
    pub server_threads: u64,
    /// Reactor count read from `GET /metrics` after the run (0 when the
    /// server predates the gauge).
    pub reactors: u64,
    /// Reactor I/O engine the server ran (`uring`, `epoll` or `poll`),
    /// read from `GET /metrics` after the run; empty when the server
    /// predates the field. Keeps uring and epoll numbers from being
    /// compared unlabelled.
    #[serde(default)]
    pub io_backend: String,
    /// Per-reactor accept/evict/reject breakdown read from
    /// `GET /metrics` after the run (empty when unavailable).
    pub per_reactor: Vec<ReactorSample>,
    /// Client-side latency percentiles over the active requests.
    pub latency: LatencySummary,
    /// Server-side cache statistics.
    pub cache: CacheSummary,
}

/// The multi-scenario `BENCH_serve.json`: every scenario of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchSuite {
    /// Report kind tag, always `"serve"`.
    pub bench: String,
    /// Report schema version ([`SERVE_BENCH_SCHEMA`]).
    pub schema: u32,
    /// Seconds since the Unix epoch when the suite finished.
    pub unix_time: u64,
    /// One report per scenario, in execution order.
    pub scenarios: Vec<BenchReport>,
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// What one worker (closed- or open-loop) hands back: the latency
/// histogram in µs, the error count, and the admission-reject count.
type WorkerResult = (Histogram, u64, u64);

/// Is this status a deliberate load-shedding answer (per-reactor
/// admission control's `503`, the body-cap `413`) rather than a
/// failure?
fn is_admission_status(status: u16) -> bool {
    status == 503 || status == 413
}

/// Open one keep-alive connection to the server: `TCP_NODELAY` set
/// (every use here is a request/response round trip, so Nagle only
/// adds latency), returned as the cloned writer handle plus a buffered
/// reader over the same socket.
fn connect_keepalive(addr: &str) -> io::Result<(TcpStream, BufReader<TcpStream>)> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let writer = stream.try_clone()?;
    Ok((writer, BufReader::new(stream)))
}

/// One closed-loop worker: a keep-alive connection sending `n`
/// requests back to back, sampled from the shared pool. The per-worker
/// histograms merge exactly.
fn worker(addr: &str, urls: &[String], n: usize, seed: u64) -> io::Result<WorkerResult> {
    let (mut writer, mut reader) = connect_keepalive(addr)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut latencies = Histogram::new();
    let mut errors = 0u64;
    let mut admission = 0u64;
    for _ in 0..n {
        let url = &urls[rng.random_range(0..urls.len())];
        let started = Instant::now();
        let status = identify_once(&mut writer, &mut reader, url)?;
        let elapsed = started.elapsed().as_micros() as u64;
        if status == 200 {
            latencies.record(elapsed);
        } else if is_admission_status(status) {
            admission += 1;
            latencies.record(elapsed);
        } else {
            errors += 1;
        }
    }
    Ok((latencies, errors, admission))
}

/// One open-loop worker: a keep-alive connection whose requests are
/// *scheduled* — request `k` goes out at `start + offset + k*interval`
/// no matter how the previous one fared. A writer thread paces the
/// sends (socket backpressure is the only thing that can slow it, and
/// then the delay rightly lands in the latency numbers); the calling
/// thread reads responses and measures each from its scheduled send
/// time, clamped to the actual send when the *client* fell behind.
fn open_worker(
    addr: &str,
    urls: &[String],
    n: usize,
    seed: u64,
    start: Instant,
    offset: std::time::Duration,
    interval_secs: f64,
) -> io::Result<WorkerResult> {
    let (mut writer, mut reader) = connect_keepalive(addr)?;
    let (sent_tx, sent_rx) = std::sync::mpsc::channel::<Instant>();
    let mut latencies = Histogram::new();
    let mut errors = 0u64;
    let mut admission = 0u64;
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            for k in 0..n {
                let due =
                    start + offset + std::time::Duration::from_secs_f64(interval_secs * k as f64);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                let url = &urls[rng.random_range(0..urls.len())];
                let mut body = Value::object();
                body.insert("url", Value::Str(url.to_owned()));
                let body = serde_json::to_string(&body).expect("request serialises");
                // Timestamp first: the reader must know a request is in
                // flight *before* a backpressured write blocks us.
                if sent_tx.send(due.max(now)).is_err() {
                    return; // reader bailed (read error)
                }
                if http::write_request(&mut writer, "POST", "/identify", Some(&body)).is_err() {
                    return; // reader sees the broken stream and tallies
                }
            }
            // sent_tx drops here; the reader drains and exits.
        });
        while let Ok(due) = sent_rx.recv() {
            match http::read_response(&mut reader) {
                Ok((status, _)) => {
                    let micros = Instant::now().saturating_duration_since(due).as_micros() as u64;
                    if status == 200 {
                        latencies.record(micros);
                    } else if is_admission_status(status) {
                        admission += 1;
                        latencies.record(micros);
                    } else {
                        errors += 1;
                    }
                }
                Err(_) => {
                    // The stream cannot be resynchronised; stop reading
                    // (dropping the receiver stops the writer too).
                    errors += 1;
                    break;
                }
            }
        }
    });
    Ok((latencies, errors, admission))
}

/// Send one `/identify` request on an open connection; returns the status.
fn identify_once(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    url: &str,
) -> io::Result<u16> {
    let mut body = Value::object();
    body.insert("url", Value::Str(url.to_owned()));
    let body = serde_json::to_string(&body).expect("request serialises");
    http::write_request(writer, "POST", "/identify", Some(&body))?;
    let (status, _) = http::read_response(reader)?;
    Ok(status)
}

/// A mostly-idle keep-alive connection (see module docs).
struct IdleConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// Open the idle population, one proving request each. A connect or
/// request failure counts as an error and drops that slot.
fn open_idle_conns(addr: &str, count: usize, urls: &[String]) -> (Vec<IdleConn>, u64) {
    let mut conns = Vec::with_capacity(count);
    let mut errors = 0u64;
    for i in 0..count {
        let attempt = (|| -> io::Result<IdleConn> {
            let (mut writer, mut reader) = connect_keepalive(addr)?;
            let status = identify_once(&mut writer, &mut reader, &urls[i % urls.len()])?;
            if status != 200 {
                return Err(io::Error::other(format!("idle open got {status}")));
            }
            Ok(IdleConn { writer, reader })
        })();
        match attempt {
            Ok(conn) => conns.push(conn),
            Err(_) => errors += 1,
        }
    }
    (conns, errors)
}

/// After the hammer: every idle connection must still be alive and
/// serving. Returns (ok, errors).
fn sweep_idle_conns(conns: &mut [IdleConn], urls: &[String]) -> (u64, u64) {
    let mut ok = 0u64;
    let mut errors = 0u64;
    for (i, conn) in conns.iter_mut().enumerate() {
        match identify_once(&mut conn.writer, &mut conn.reader, &urls[i % urls.len()]) {
            Ok(200) => ok += 1,
            Ok(_) | Err(_) => errors += 1,
        }
    }
    (ok, errors)
}

/// Server-side statistics read from `GET /metrics`.
struct ServerSnapshot {
    cache: CacheSummary,
    /// `threads.total` (0 when the server predates the gauge).
    threads: u64,
    /// `reactors.count` (0 when the server predates the section).
    reactors: u64,
    /// `reactors.max_inflight` (0 = unlimited or unavailable).
    max_inflight: u64,
    /// `reactors.io_backend` (empty when the server predates it).
    io_backend: String,
    /// `connections.per_reactor`, one sample per reactor.
    per_reactor: Vec<ReactorSample>,
}

fn fetch_server_stats(addr: &str) -> io::Result<ServerSnapshot> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    http::write_request(&mut writer, "GET", "/metrics", None)?;
    let (status, body) = http::read_response(&mut reader)?;
    if status != 200 {
        return Err(io::Error::other(format!("/metrics returned {status}")));
    }
    let parsed: Value = serde_json::from_str(&body)
        .map_err(|e| io::Error::other(format!("bad /metrics JSON: {e}")))?;
    let cache = parsed
        .get("cache")
        .ok_or_else(|| io::Error::other("/metrics has no cache section"))?;
    let uint = |section: &Value, key: &str| -> Option<u64> {
        match section.get(key) {
            Some(Value::Uint(n)) => Some(*n),
            Some(Value::Int(n)) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    };
    let hit_rate = match cache.get("hit_rate") {
        Some(Value::Float(x)) => *x,
        Some(Value::Int(n)) => *n as f64,
        _ => 0.0,
    };
    let summary = CacheSummary {
        hits: uint(cache, "hits").ok_or_else(|| io::Error::other("cache.hits missing"))?,
        misses: uint(cache, "misses").ok_or_else(|| io::Error::other("cache.misses missing"))?,
        hit_rate,
    };
    let threads = parsed
        .get("threads")
        .and_then(|t| uint(t, "total"))
        .unwrap_or(0);
    let reactors_section = parsed.get("reactors");
    let reactors = reactors_section.and_then(|r| uint(r, "count")).unwrap_or(0);
    let max_inflight = reactors_section
        .and_then(|r| uint(r, "max_inflight"))
        .unwrap_or(0);
    let io_backend = match reactors_section.and_then(|r| r.get("io_backend")) {
        Some(Value::Str(s)) => s.clone(),
        _ => String::new(),
    };
    let mut per_reactor = Vec::new();
    if let Some(Value::Array(entries)) =
        parsed.get("connections").and_then(|c| c.get("per_reactor"))
    {
        for entry in entries {
            per_reactor.push(ReactorSample {
                reactor: uint(entry, "reactor").unwrap_or(per_reactor.len() as u64),
                accepted: uint(entry, "accepted").unwrap_or(0),
                timed_out: uint(entry, "timed_out").unwrap_or(0),
                admission_rejects: uint(entry, "admission_rejects").unwrap_or(0),
            });
        }
    }
    Ok(ServerSnapshot {
        cache: summary,
        threads,
        reactors,
        max_inflight,
        io_backend,
        per_reactor,
    })
}

/// Run one load-generator scenario against a server at `config.addr`;
/// returns the report (and writes it to `config.out` when set).
pub fn run_loadgen(config: &LoadgenConfig) -> io::Result<BenchReport> {
    let concurrency = config.concurrency.max(1);
    let urls = UrlGenerator::crawl_frontier_mix(config.seed, config.unique_urls.max(1));
    let per_worker = config.requests.div_ceil(concurrency);

    // Phase 1: build the idle population (serving one request each).
    let (mut idle_conns, mut errors) =
        open_idle_conns(&config.addr, config.idle_connections, &urls);
    let mut completed = idle_conns.len() as u64;

    // Phase 2: the active hammer, with the idle population holding
    // their connections open against the same reactors. Closed loop
    // unless an arrival rate was set; in the open loop each worker
    // drives `arrival_rps / concurrency` and the workers' schedules are
    // phase-staggered so the aggregate arrival process is smooth.
    let open_loop = config.arrival_rps > 0.0;
    let started = Instant::now();
    let results: Vec<io::Result<WorkerResult>> = std::thread::scope(|scope| {
        (0..concurrency)
            .map(|i| {
                let urls = &urls;
                let addr = config.addr.as_str();
                let seed = config.seed.wrapping_add(1 + i as u64);
                if open_loop {
                    let interval_secs = concurrency as f64 / config.arrival_rps;
                    let offset = std::time::Duration::from_secs_f64(
                        interval_secs * i as f64 / concurrency as f64,
                    );
                    scope.spawn(move || {
                        open_worker(addr, urls, per_worker, seed, started, offset, interval_secs)
                    })
                } else {
                    scope.spawn(move || worker(addr, urls, per_worker, seed))
                }
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|handle| match handle.join() {
                Ok(result) => result,
                Err(_) => Err(io::Error::other("loadgen worker panicked")),
            })
            .collect()
    });
    let duration_secs = started.elapsed().as_secs_f64();

    // Phase 3: the idle sweep — every idle connection must still serve.
    let (swept, sweep_errors) = sweep_idle_conns(&mut idle_conns, &urls);
    completed += swept;
    errors += sweep_errors;
    drop(idle_conns);

    let mut latencies = Histogram::new();
    let mut admission_rejects = 0u64;
    for result in results {
        let (worker_latencies, worker_errors, worker_admission) = result?;
        latencies.merge(&worker_latencies);
        errors += worker_errors;
        admission_rejects += worker_admission;
    }
    // The histogram holds 200s *and* admission 503s (both are answered
    // requests the client waited for); throughput counts only the 200s.
    let active_ok = latencies.count().saturating_sub(admission_rejects);
    completed += active_ok;
    let snapshot = fetch_server_stats(&config.addr)?;
    let report = BenchReport {
        bench: "serve".to_owned(),
        schema: SERVE_BENCH_SCHEMA,
        scenario: config.name.clone(),
        unix_time: unix_now(),
        requests: completed,
        errors,
        concurrency: concurrency as u64,
        idle_connections: config.idle_connections as u64,
        unique_urls: urls.len() as u64,
        arrival_rps: if open_loop { config.arrival_rps } else { 0.0 },
        duration_secs,
        throughput_rps: if duration_secs > 0.0 {
            active_ok as f64 / duration_secs
        } else {
            0.0
        },
        admission_rejects,
        server_threads: snapshot.threads,
        reactors: snapshot.reactors,
        io_backend: snapshot.io_backend,
        per_reactor: snapshot.per_reactor,
        latency: LatencySummary::from_histogram(&latencies),
        cache: snapshot.cache,
    };
    if let Some(out) = &config.out {
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| io::Error::other(format!("cannot serialise report: {e}")))?;
        std::fs::write(out, json)?;
    }
    Ok(report)
}

/// Resolve the suite's self-scaling sentinels against measured reality:
/// a negative `arrival_rps` becomes that multiple of the measured
/// baseline throughput; `concurrency == 0` becomes 1.5× the server's
/// total admission budget (`reactors × max_inflight`, clamped to
/// [48, 192]) so the open-loop schedule can actually exceed what the
/// server admits; `requests == 0` becomes `300 × concurrency`.
fn resolve_sentinels(
    config: &mut LoadgenConfig,
    baseline_rps: Option<f64>,
    reactors: u64,
    max_inflight: u64,
) {
    if config.arrival_rps < 0.0 {
        config.arrival_rps = -config.arrival_rps * baseline_rps.unwrap_or(50_000.0);
    }
    if config.concurrency == 0 {
        let per_reactor = if max_inflight == 0 { 32 } else { max_inflight };
        let budget = (reactors.max(1) * per_reactor) as usize;
        config.concurrency = (budget * 3 / 2).clamp(48, 192);
    }
    if config.requests == 0 {
        config.requests = 300 * config.concurrency;
    }
}

/// Run several scenarios back to back against the same server and
/// write one multi-scenario `BENCH_serve.json` to `out` (when set).
/// Per-scenario `out` paths are ignored — the suite file is the report.
/// Scenario sentinels (see `resolve_sentinels`) are resolved against
/// the first scenario's measured throughput and the server's reported
/// reactor topology, so the same suite definition saturates a laptop
/// and a 32-core runner alike.
pub fn run_suite(scenarios: &[LoadgenConfig], out: Option<&PathBuf>) -> io::Result<BenchSuite> {
    let mut reports: Vec<BenchReport> = Vec::with_capacity(scenarios.len());
    let mut baseline_rps: Option<f64> = None;
    for scenario in scenarios {
        let mut config = scenario.clone();
        config.out = None;
        if config.arrival_rps < 0.0 || config.concurrency == 0 {
            let (reactors, max_inflight) = fetch_server_stats(&config.addr)
                .map(|s| (s.reactors, s.max_inflight))
                .unwrap_or((0, 0));
            resolve_sentinels(&mut config, baseline_rps, reactors, max_inflight);
        } else {
            resolve_sentinels(&mut config, baseline_rps, 0, 0);
        }
        let report = run_loadgen(&config)?;
        if baseline_rps.is_none() && report.errors == 0 && report.throughput_rps > 0.0 {
            baseline_rps = Some(report.throughput_rps);
        }
        reports.push(report);
    }
    let suite = BenchSuite {
        bench: "serve".to_owned(),
        schema: SERVE_BENCH_SCHEMA,
        unix_time: unix_now(),
        scenarios: reports,
    };
    if let Some(out) = out {
        let json = serde_json::to_string_pretty(&suite)
            .map_err(|e| io::Error::other(format!("cannot serialise suite: {e}")))?;
        std::fs::write(out, json)?;
    }
    Ok(suite)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_comes_from_the_shared_histogram() {
        let mut hist = Histogram::new();
        for micros in [1000u64, 2000, 3000, 4000, 5000] {
            hist.record(micros);
        }
        let summary = LatencySummary::from_histogram(&hist);
        // Quantiles are bucket upper bounds: within 3.125% of the truth.
        assert!((summary.p50_ms - 3.0).abs() / 3.0 <= 0.04, "{summary:?}");
        assert!((summary.p99_ms - 5.0).abs() / 5.0 <= 0.04, "{summary:?}");
        assert_eq!(summary.max_ms, 5.0);
        assert_eq!(summary.mean_ms, 3.0); // mean is exact (true sum kept)
        assert!(summary.p50_ms <= summary.p90_ms);
        assert!(summary.p90_ms <= summary.p99_ms);
        assert!(summary.p99_ms <= summary.p999_ms);
        assert!(summary.p999_ms <= summary.max_ms);
    }

    #[test]
    fn empty_histogram_summarises_to_zeros() {
        let summary = LatencySummary::from_histogram(&Histogram::new());
        assert_eq!(summary.p50_ms, 0.0);
        assert_eq!(summary.p999_ms, 0.0);
        assert_eq!(summary.mean_ms, 0.0);
        assert_eq!(summary.max_ms, 0.0);
    }

    #[test]
    fn merged_worker_histograms_match_one_big_histogram() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 0..1000u64 {
            let v = 500 + i * 37 % 90_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        let merged = LatencySummary::from_histogram(&a);
        let direct = LatencySummary::from_histogram(&whole);
        assert_eq!(merged.p50_ms, direct.p50_ms);
        assert_eq!(merged.p999_ms, direct.p999_ms);
        assert_eq!(merged.max_ms, direct.max_ms);
    }

    fn sample_report(scenario: &str) -> BenchReport {
        BenchReport {
            bench: "serve".into(),
            schema: SERVE_BENCH_SCHEMA,
            scenario: scenario.into(),
            unix_time: 1,
            requests: 100,
            errors: 0,
            concurrency: 4,
            idle_connections: 16,
            unique_urls: 50,
            arrival_rps: 0.0,
            duration_secs: 0.5,
            throughput_rps: 200.0,
            admission_rejects: 0,
            server_threads: 2,
            reactors: 1,
            io_backend: "epoll".into(),
            per_reactor: vec![ReactorSample {
                reactor: 0,
                accepted: 20,
                timed_out: 0,
                admission_rejects: 0,
            }],
            latency: LatencySummary {
                p50_ms: 1.0,
                p90_ms: 2.0,
                p99_ms: 3.0,
                p999_ms: 3.5,
                mean_ms: 1.2,
                max_ms: 4.0,
            },
            cache: CacheSummary {
                hits: 40,
                misses: 60,
                hit_rate: 0.4,
            },
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report("baseline_4conn");
        let json = serde_json::to_string(&report).unwrap();
        let restored: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.requests, 100);
        assert_eq!(restored.cache.hits, 40);
        assert_eq!(restored.scenario, "baseline_4conn");
        assert_eq!(restored.idle_connections, 16);
        assert_eq!(restored.server_threads, 2);
        assert_eq!(restored.schema, SERVE_BENCH_SCHEMA);
        assert_eq!(restored.latency.p999_ms, 3.5);
        assert_eq!(restored.io_backend, "epoll");
        assert!(json.contains("\"throughput_rps\""));
        assert!(json.contains("\"p999_ms\""));
        assert!(json.contains("\"io_backend\""));
    }

    #[test]
    fn schema_4_reports_without_io_backend_still_parse() {
        // Committed BENCH_serve.json files from before schema 5 lack
        // the field; comparisons against them must not choke.
        let json = serde_json::to_string(&sample_report("baseline_4conn")).unwrap();
        let mut value: Value = serde_json::from_str(&json).unwrap();
        if let Value::Object(entries) = &mut value {
            entries.retain(|(key, _)| key != "io_backend");
        }
        let stripped = serde_json::to_string(&value).unwrap();
        let restored: BenchReport = serde_json::from_str(&stripped).unwrap();
        assert_eq!(restored.io_backend, "");
    }

    #[test]
    fn suite_round_trips_through_json() {
        let suite = BenchSuite {
            bench: "serve".into(),
            schema: SERVE_BENCH_SCHEMA,
            unix_time: 2,
            scenarios: vec![sample_report("baseline_4conn"), sample_report("idle_1024")],
        };
        let json = serde_json::to_string(&suite).unwrap();
        let restored: BenchSuite = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.schema, 5);
        assert_eq!(restored.scenarios.len(), 2);
        assert_eq!(restored.scenarios[1].scenario, "idle_1024");
        assert_eq!(restored.scenarios[0].per_reactor.len(), 1);
        assert_eq!(restored.scenarios[0].per_reactor[0].accepted, 20);
    }

    #[test]
    fn sentinels_resolve_against_baseline_and_topology() {
        // Saturation sentinels: rate from measured baseline, concurrency
        // from the server's admission budget, requests from concurrency.
        let mut config = LoadgenConfig {
            requests: 0,
            concurrency: 0,
            arrival_rps: -1.5,
            ..LoadgenConfig::default()
        };
        resolve_sentinels(&mut config, Some(10_000.0), 2, 32);
        assert_eq!(config.arrival_rps, 15_000.0);
        assert_eq!(config.concurrency, 96); // 2 * 32 * 1.5
        assert_eq!(config.requests, 300 * 96);

        // No baseline measured yet: falls back to a fixed rate rather
        // than refusing to run.
        let mut config = LoadgenConfig {
            arrival_rps: -2.0,
            ..LoadgenConfig::default()
        };
        resolve_sentinels(&mut config, None, 0, 0);
        assert_eq!(config.arrival_rps, 100_000.0);

        // Concurrency clamps: unlimited admission (max_inflight 0) uses
        // the 32/reactor default; a huge topology clamps to 192.
        let mut config = LoadgenConfig {
            concurrency: 0,
            ..LoadgenConfig::default()
        };
        resolve_sentinels(&mut config, None, 1, 0);
        assert_eq!(config.concurrency, 48); // 1 * 32 * 1.5 = 48
        let mut config = LoadgenConfig {
            concurrency: 0,
            ..LoadgenConfig::default()
        };
        resolve_sentinels(&mut config, None, 64, 64);
        assert_eq!(config.concurrency, 192);

        // Explicit values pass through untouched.
        let mut config = LoadgenConfig::default();
        resolve_sentinels(&mut config, Some(5_000.0), 4, 32);
        assert_eq!(config.requests, 10_000);
        assert_eq!(config.concurrency, 4);
        assert_eq!(config.arrival_rps, 0.0);
    }
}
