//! The load generator: hammer a running server with a corpus-generated
//! URL mix and emit a machine-readable benchmark report.
//!
//! The URL mix comes from
//! [`urlid_corpus::UrlGenerator::crawl_frontier_mix`]: a pool of
//! `unique_urls` mixed-language web-crawl URLs, sampled with repetition —
//! with more requests than unique URLs the workload repeats URLs exactly
//! like real traffic does, which is what exercises (and measures) the
//! result cache.
//!
//! Each worker thread keeps one keep-alive connection and measures
//! per-request wall latency; the merged samples give *exact* percentiles
//! (the server's own histogram is bucketed). The report is written as
//! `BENCH_serve.json` so the perf trajectory accumulates next to the
//! criterion bench JSON (`target/bench-results-*.json`).

use crate::http;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize, Value};
use std::io::{self, BufReader};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Instant;
use urlid_corpus::UrlGenerator;

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Total number of `/identify` requests to send.
    pub requests: usize,
    /// Concurrent keep-alive connections (worker threads).
    pub concurrency: usize,
    /// Size of the unique-URL pool (smaller pool → higher cache hit rate).
    pub unique_urls: usize,
    /// Seed for the URL mix and the per-worker sampling.
    pub seed: u64,
    /// Where to write the JSON report (`None` skips the file).
    pub out: Option<PathBuf>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_owned(),
            requests: 10_000,
            concurrency: 4,
            unique_urls: 2_000,
            seed: 7,
            out: Some(PathBuf::from("BENCH_serve.json")),
        }
    }
}

/// Latency percentiles in milliseconds (exact, from client-side samples).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median.
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Mean.
    pub mean_ms: f64,
    /// Slowest request.
    pub max_ms: f64,
}

/// Server-side cache statistics, read from `GET /metrics` after the run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheSummary {
    /// Cache hits over the server's lifetime.
    pub hits: u64,
    /// Cache misses over the server's lifetime.
    pub misses: u64,
    /// Hits over lookups.
    pub hit_rate: f64,
}

/// The machine-readable benchmark report (`BENCH_serve.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Report kind tag, always `"serve"`.
    pub bench: String,
    /// Seconds since the Unix epoch when the run finished.
    pub unix_time: u64,
    /// Requests completed successfully.
    pub requests: u64,
    /// Requests that failed (non-200 or transport error).
    pub errors: u64,
    /// Concurrent connections used.
    pub concurrency: u64,
    /// Unique-URL pool size.
    pub unique_urls: u64,
    /// Wall-clock duration of the run in seconds.
    pub duration_secs: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Client-side latency percentiles.
    pub latency: LatencySummary,
    /// Server-side cache statistics.
    pub cache: CacheSummary,
}

fn percentile(sorted_micros: &[u64], q: f64) -> f64 {
    if sorted_micros.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_micros.len() as f64).ceil() as usize).clamp(1, sorted_micros.len());
    sorted_micros[rank - 1] as f64 / 1000.0
}

/// One worker: a keep-alive connection sending `n` requests sampled from
/// the shared pool. Returns (latency samples in µs, error count).
fn worker(addr: &str, urls: &[String], n: usize, seed: u64) -> io::Result<(Vec<u64>, u64)> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut latencies = Vec::with_capacity(n);
    let mut errors = 0u64;
    for _ in 0..n {
        let url = &urls[rng.random_range(0..urls.len())];
        let mut body = Value::object();
        body.insert("url", Value::Str(url.clone()));
        let body = serde_json::to_string(&body).expect("request serialises");
        let started = Instant::now();
        http::write_request(&mut writer, "POST", "/identify", Some(&body))?;
        let (status, _) = http::read_response(&mut reader)?;
        let elapsed = started.elapsed().as_micros() as u64;
        if status == 200 {
            latencies.push(elapsed);
        } else {
            errors += 1;
        }
    }
    Ok((latencies, errors))
}

/// Read the server's cache statistics from `GET /metrics`.
fn fetch_cache_stats(addr: &str) -> io::Result<CacheSummary> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    http::write_request(&mut writer, "GET", "/metrics", None)?;
    let (status, body) = http::read_response(&mut reader)?;
    if status != 200 {
        return Err(io::Error::other(format!("/metrics returned {status}")));
    }
    let parsed: Value = serde_json::from_str(&body)
        .map_err(|e| io::Error::other(format!("bad /metrics JSON: {e}")))?;
    let cache = parsed
        .get("cache")
        .ok_or_else(|| io::Error::other("/metrics has no cache section"))?;
    let uint = |key: &str| -> io::Result<u64> {
        match cache.get(key) {
            Some(Value::Uint(n)) => Ok(*n),
            Some(Value::Int(n)) if *n >= 0 => Ok(*n as u64),
            _ => Err(io::Error::other(format!("cache.{key} missing"))),
        }
    };
    let hit_rate = match cache.get("hit_rate") {
        Some(Value::Float(x)) => *x,
        Some(Value::Int(n)) => *n as f64,
        _ => 0.0,
    };
    Ok(CacheSummary {
        hits: uint("hits")?,
        misses: uint("misses")?,
        hit_rate,
    })
}

/// Run the load generator against a server at `config.addr`; returns the
/// report (and writes it to `config.out` when set).
pub fn run_loadgen(config: &LoadgenConfig) -> io::Result<BenchReport> {
    let concurrency = config.concurrency.max(1);
    let urls = UrlGenerator::crawl_frontier_mix(config.seed, config.unique_urls.max(1));
    let per_worker = config.requests.div_ceil(concurrency);

    let started = Instant::now();
    let results: Vec<io::Result<(Vec<u64>, u64)>> = std::thread::scope(|scope| {
        (0..concurrency)
            .map(|i| {
                let urls = &urls;
                let addr = config.addr.as_str();
                let seed = config.seed.wrapping_add(1 + i as u64);
                scope.spawn(move || worker(addr, urls, per_worker, seed))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|handle| handle.join().expect("loadgen worker panicked"))
            .collect()
    });
    let duration_secs = started.elapsed().as_secs_f64();

    let mut latencies = Vec::new();
    let mut errors = 0u64;
    for result in results {
        let (mut worker_latencies, worker_errors) = result?;
        latencies.append(&mut worker_latencies);
        errors += worker_errors;
    }
    latencies.sort_unstable();
    let completed = latencies.len() as u64;
    let mean_micros = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };
    let cache = fetch_cache_stats(&config.addr)?;
    let report = BenchReport {
        bench: "serve".to_owned(),
        unix_time: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        requests: completed,
        errors,
        concurrency: concurrency as u64,
        unique_urls: urls.len() as u64,
        duration_secs,
        throughput_rps: if duration_secs > 0.0 {
            completed as f64 / duration_secs
        } else {
            0.0
        },
        latency: LatencySummary {
            p50_ms: percentile(&latencies, 0.50),
            p90_ms: percentile(&latencies, 0.90),
            p99_ms: percentile(&latencies, 0.99),
            mean_ms: mean_micros / 1000.0,
            max_ms: latencies
                .last()
                .map_or(0.0, |&micros| micros as f64 / 1000.0),
        },
        cache,
    };
    if let Some(out) = &config.out {
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| io::Error::other(format!("cannot serialise report: {e}")))?;
        std::fs::write(out, json)?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact_on_small_samples() {
        let samples = vec![1000, 2000, 3000, 4000, 5000];
        assert_eq!(percentile(&samples, 0.50), 3.0);
        assert_eq!(percentile(&samples, 0.99), 5.0);
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = BenchReport {
            bench: "serve".into(),
            unix_time: 1,
            requests: 100,
            errors: 0,
            concurrency: 4,
            unique_urls: 50,
            duration_secs: 0.5,
            throughput_rps: 200.0,
            latency: LatencySummary {
                p50_ms: 1.0,
                p90_ms: 2.0,
                p99_ms: 3.0,
                mean_ms: 1.2,
                max_ms: 4.0,
            },
            cache: CacheSummary {
                hits: 40,
                misses: 60,
                hit_rate: 0.4,
            },
        };
        let json = serde_json::to_string(&report).unwrap();
        let restored: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.requests, 100);
        assert_eq!(restored.cache.hits, 40);
        assert!(json.contains("\"throughput_rps\""));
    }
}
