//! Quickstart: train the paper's best configuration (Naive Bayes on word
//! features) on a synthetic ODP corpus and identify the language of a few
//! URLs.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use urlid::prelude::*;

fn main() {
    // 1. Build a small synthetic ODP-style corpus (deterministic seed).
    let mut generator = UrlGenerator::new(42);
    let odp = odp_dataset(&mut generator, CorpusScale::small());
    println!(
        "training on {} labelled URLs, testing on {}",
        odp.train.len(),
        odp.test.len()
    );

    // 2. Train the paper's best single configuration: NB + word features.
    let identifier = LanguageIdentifier::train_paper_best(&odp.train);

    // 3. Identify a few URLs the model has never seen.
    let urls = [
        "http://www.wetterbericht-heute.de/berlin",
        "http://www.weather-forecast.co.uk/london",
        "http://www.recherche-produits.fr/paris",
        "http://www.recetas-cocina.es/madrid",
        "http://www.ricette-cucina.it/roma",
        "http://www.wasserbett-test.com/angebote",
    ];
    println!("\nper-URL identification:");
    for url in urls {
        let lang = identifier.identify(url);
        let all = identifier.languages_of(url);
        println!(
            "  {:<50} -> {:<8} (accepted by: {:?})",
            url,
            lang.map(|l| l.name()).unwrap_or("unknown"),
            all.iter().map(|l| l.iso_code()).collect::<Vec<_>>()
        );
    }

    // 4. Evaluate on the held-out test set with the paper's metrics.
    let result = identifier.evaluate(&odp.test);
    println!("\nheld-out evaluation (ODP test):");
    for lang in ALL_LANGUAGES {
        let m = result.metrics(lang);
        println!(
            "  {:<8} P={:.2} R={:.2} p(-|-)={:.2} F={:.2}",
            lang.name(),
            m.precision,
            m.recall,
            m.negative_success,
            m.f_measure
        );
    }
    println!("  average F = {:.3}", result.mean_f_measure());
}
