//! Reproduce the spirit of Figure 1: train a decision tree for German on
//! the custom feature set and print a readable rendering of (the top of)
//! the tree, whose decisions mirror the paper's: German ccTLD before the
//! first slash, then the trained German dictionary, then rejection.
//!
//! Run with:
//! ```sh
//! cargo run --release --example decision_tree_demo
//! ```

use urlid::classifiers::{DecisionTree, DecisionTreeConfig, VectorClassifier};
use urlid::features::CustomFeatureExtractor;
use urlid::prelude::*;

fn main() {
    let mut generator = UrlGenerator::new(17);
    let odp = odp_dataset(&mut generator, CorpusScale::small());

    // Fit the custom (selected 15) feature extractor on the training set.
    let mut extractor = CustomFeatureExtractor::default();
    extractor.fit(&odp.train.urls);

    // Positive = German URLs, negative = an equal-sized sample of others.
    let positives: Vec<_> = odp
        .train
        .urls
        .iter()
        .filter(|u| u.language == Language::German)
        .map(|u| extractor.transform(&u.url))
        .collect();
    let negatives: Vec<_> = odp
        .train
        .urls
        .iter()
        .filter(|u| u.language != Language::German)
        .take(positives.len())
        .map(|u| extractor.transform(&u.url))
        .collect();

    let tree = DecisionTree::train(
        &positives,
        &negatives,
        DecisionTreeConfig {
            max_depth: 4, // pruned, like the displayed tree in Figure 1
            ..DecisionTreeConfig::for_dim(extractor.dim())
        },
    );

    println!("pruned decision tree for German (custom features):\n");
    println!(
        "{}",
        tree.render(&|f| extractor
            .feature_name(f as u32)
            .unwrap_or_else(|| format!("f{f}")))
    );

    // Classify the paper's running examples.
    for url in [
        "http://www.wasserbett-test.com",
        "http://de.wikipedia.org/wiki/Berlin",
        "http://www.weather-forecast.co.uk/",
        "http://home.arcor.de/jemand/seite.html",
    ] {
        let v = extractor.transform(url);
        println!(
            "  {:<45} -> {}",
            url,
            if tree.classify(&v) {
                "German"
            } else {
                "not German"
            }
        );
    }
    println!(
        "\ntree depth: {}, nodes: {}",
        tree.depth(),
        tree.node_count()
    );
}
