//! Integration tests for the single-extraction scoring pipeline.
//!
//! Two guarantees are locked in here:
//!
//! 1. **Equivalence** — the single-pass path (extract once, score all
//!    languages from the same vector) returns *identical* decisions and
//!    scores to the naive per-classifier path (each language extracting
//!    for itself via `classify_url`-style calls), across every learning
//!    algorithm and feature set, on a generated corpus.
//! 2. **Single extraction** — `identify` / `identify_all` /
//!    `identify_batch` / `evaluate` call the feature extractor exactly
//!    once per URL (counted through an instrumented extractor).

use std::sync::Arc;
use urlid::features::{CountingExtractor, WordFeatureExtractor};
use urlid::prelude::*;
use urlid_classifiers::VectorClassifier;

fn corpus() -> (Dataset, Dataset) {
    let mut generator = UrlGenerator::new(97);
    let odp = odp_dataset(&mut generator, CorpusScale::tiny());
    (odp.train, odp.test)
}

/// The naive pre-refactor path: each per-language classifier extracts
/// features for itself, i.e. five extractions per URL. The definition
/// lives on `LanguageClassifierSet` (shared with the `single_pass`
/// bench) so both compare against the same baseline; here it is
/// additionally cross-checked against a by-hand reimplementation.
fn naive_scores(set: &LanguageClassifierSet, url: &str) -> [Option<f64>; 5] {
    let reference = set.score_all_multi_extract(url);
    let extractor = set
        .extractor()
        .expect("trained sets share one extractor")
        .as_ref();
    for lang in ALL_LANGUAGES {
        if let Some(model) = set.vector_model(lang) {
            // A fresh extraction per language — exactly what the old
            // FeatureUrlClassifier wrappers did.
            assert_eq!(
                reference[lang.index()],
                Some(model.score(&extractor.transform(url))),
                "score_all_multi_extract diverges from the by-hand baseline"
            );
        }
    }
    reference
}

#[test]
fn single_pass_matches_per_classifier_path_for_all_algorithms_and_features() {
    let (train, test) = corpus();
    let algorithms = [
        Algorithm::NaiveBayes,
        Algorithm::RelativeEntropy,
        Algorithm::MaxEnt,
        Algorithm::DecisionTree,
        Algorithm::KNearestNeighbors,
    ];
    let feature_sets = [
        FeatureSetKind::Words,
        FeatureSetKind::Trigrams,
        FeatureSetKind::Custom,
    ];
    for algorithm in algorithms {
        for feature_set in feature_sets {
            let config = TrainingConfig::new(feature_set, algorithm).with_maxent_iterations(8);
            let set = train_classifier_set(&train, &config);
            for example in test.urls.iter().take(40) {
                let url = example.url.as_str();
                let fast = set.score_all(url);
                let naive = naive_scores(&set, url);
                assert_eq!(
                    fast, naive,
                    "{feature_set:?}/{algorithm:?} scores diverge on {url}"
                );
                let decisions = set.classify_all(url);
                for lang in ALL_LANGUAGES {
                    let naive_decision = naive[lang.index()].unwrap() > 0.0;
                    assert_eq!(
                        decisions[lang.index()],
                        naive_decision,
                        "{feature_set:?}/{algorithm:?} decision diverges on {url} for {lang}"
                    );
                }
            }
        }
    }
}

#[test]
fn combined_recipes_still_agree_between_decision_apis() {
    // The Section 5.6 recipes mix vector-level (English/German) and
    // hybrid (French/Spanish/Italian) scorers; their multi-label API
    // must agree with per-language queries and the sign convention.
    let (train, test) = corpus();
    let set = recipes::train_best_combination(&train, 5);
    for example in test.urls.iter().take(40) {
        let url = example.url.as_str();
        let all = set.classify_all(url);
        let scores = set.score_all(url);
        for lang in ALL_LANGUAGES {
            assert_eq!(all[lang.index()], set.classify(url, lang), "{url} {lang}");
            assert_eq!(
                all[lang.index()],
                scores[lang.index()].unwrap() > 0.0,
                "sign convention broken on {url} for {lang}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Extractor call counting
// ---------------------------------------------------------------------

/// A fitted word extractor behind the shared call-counting wrapper (the
/// harness lives in `urlid_features::counting` so the serving layer's
/// cache tests can reuse it).
fn fitted_counter(train: &Dataset) -> CountingExtractor<WordFeatureExtractor> {
    let mut inner = WordFeatureExtractor::default();
    inner.fit(&train.urls);
    CountingExtractor::new(inner)
}

/// Accepts any vector whose features sum past a small threshold.
struct SumThreshold;
impl VectorClassifier for SumThreshold {
    fn score(&self, features: &urlid::features::SparseVector) -> f64 {
        features.sum() - 0.5
    }
}

/// A hybrid scorer using both the URL and the shared vector — the shape
/// the mixed-space Section 5.6 recipes use. It must *not* trigger any
/// extra extraction: the vector arrives pre-extracted.
struct TldOrSum;
impl urlid_classifiers::HybridClassifier for TldOrSum {
    fn score_hybrid(&self, url: &str, shared: &urlid::features::SparseVector) -> f64 {
        let tld: f64 = if url.ends_with(".de/") { 1.0 } else { -1.0 };
        tld.max(shared.sum() - 0.5)
    }
}

/// Builds a set mixing vector scorers (four languages) with one hybrid
/// scorer, so the call-count tests cover both shared-vector paths.
fn counting_identifier(
    train: &Dataset,
) -> (
    LanguageIdentifier,
    Arc<CountingExtractor<WordFeatureExtractor>>,
) {
    let extractor = Arc::new(fitted_counter(train));
    let mut set =
        LanguageClassifierSet::build_vector(extractor.clone() as _, |_| Box::new(SumThreshold));
    set.insert_hybrid(Language::French, Box::new(TldOrSum));
    let identifier = LanguageIdentifier::from_classifier_set(
        set,
        TrainingConfig::new(FeatureSetKind::Words, Algorithm::NaiveBayes),
    );
    (identifier, extractor)
}

#[test]
fn identify_paths_extract_exactly_once_per_url() {
    let (train, test) = corpus();
    let (identifier, counter) = counting_identifier(&train);
    let urls: Vec<&str> = test.urls.iter().map(|u| u.url.as_str()).collect();

    counter.reset();
    identifier.identify(urls[0]);
    assert_eq!(counter.calls(), 1, "identify");

    counter.reset();
    identifier.identify_all(urls.iter().copied());
    assert_eq!(counter.calls(), urls.len(), "identify_all");

    counter.reset();
    identifier.identify_batch(&urls);
    assert_eq!(counter.calls(), urls.len(), "identify_batch");

    counter.reset();
    identifier.languages_of(urls[0]);
    assert_eq!(counter.calls(), 1, "languages_of");

    counter.reset();
    identifier.language_histogram(urls.iter().copied());
    assert_eq!(counter.calls(), urls.len(), "language_histogram");
}

#[test]
fn evaluate_extracts_exactly_once_per_url() {
    let (train, test) = corpus();
    let (identifier, counter) = counting_identifier(&train);
    counter.reset();
    let _ = identifier.evaluate(&test);
    assert_eq!(counter.calls(), test.urls.len());
}

#[test]
fn batch_extraction_count_holds_above_parallel_threshold() {
    // More URLs than the sequential cut-over, so the scoped-thread path
    // must also respect the one-extraction invariant.
    let (train, _) = corpus();
    let (identifier, counter) = counting_identifier(&train);
    let owned: Vec<String> = (0..1000)
        .map(|i| format!("http://beispiel{i}.de/wetter/seite{i}"))
        .collect();
    let urls: Vec<&str> = owned.iter().map(|s| s.as_str()).collect();
    counter.reset();
    let results = identifier.identify_batch(&urls);
    assert_eq!(results.len(), urls.len());
    assert_eq!(counter.calls(), urls.len());
}
