//! Scoped-thread work distribution for sharded pipelines.
//!
//! The container building this workspace has no crates.io access, so
//! (as in `urlid_classifiers::set`) there is no rayon; a work-stealing
//! `std::thread::scope` map over an atomic index is all the sharded
//! training and corpus-generation pipelines need. Results land in
//! per-item slots, so the output order — and any fold over it — is a
//! function of the input order alone, never of thread scheduling. That
//! property is what makes `--jobs N` bit-identical to `--jobs 1`.
//!
//! Lives in this crate (rather than `urlid` core) because it is shared
//! by both sides of the dependency edge: the trainer's map-reduce passes
//! and `urlid_corpus::ShardPlan::assemble`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolve a `--jobs` value: 0 means "one worker per CPU core".
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// Apply `f` to every item on up to `jobs` scoped worker threads and
/// return the results in input order.
///
/// With `jobs <= 1` (or a single item) no thread is spawned and the map
/// runs inline — the serial and parallel paths execute the same `f` on
/// the same items in the same slots.
pub fn par_map<T, U, F>(jobs: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order_at_any_job_count() {
        let items: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = items.iter().map(|i| i * i).collect();
        for jobs in [0, 1, 2, 3, 8, 64] {
            let got = par_map(effective_jobs(jobs), &items, |&i| i * i);
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u32> = par_map(4, &[] as &[u32], |&x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn effective_jobs_resolves_zero_to_cores() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }
}
