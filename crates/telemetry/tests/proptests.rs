//! Property-based tests for the shared log-linear histogram.

use proptest::prelude::*;
use urlid_telemetry::histogram::{bucket_index, bucket_lower, bucket_upper, SUB_BUCKETS};
use urlid_telemetry::Histogram;

fn build(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// Merging is commutative: a⊔b == b⊔a (integer bucket adds).
    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(0u64..2_000_000, 0..60),
        b in proptest::collection::vec(0u64..2_000_000, 0..60),
    ) {
        let (ha, hb) = (build(&a), build(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// Merging is associative: (a⊔b)⊔c == a⊔(b⊔c), and both equal the
    /// histogram of the concatenated value streams.
    #[test]
    fn merge_is_associative_and_lossless(
        a in proptest::collection::vec(0u64..5_000_000, 0..40),
        b in proptest::collection::vec(0u64..5_000_000, 0..40),
        c in proptest::collection::vec(0u64..5_000_000, 0..40),
    ) {
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        let mut concat: Vec<u64> = a.clone();
        concat.extend(&b);
        concat.extend(&c);
        prop_assert_eq!(&left, &build(&concat));
    }

    /// Quantiles are monotone in q.
    #[test]
    fn quantiles_are_monotone(
        values in proptest::collection::vec(0u64..10_000_000, 1..80),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let h = build(&values);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(h.quantile(lo).unwrap() <= h.quantile(hi).unwrap());
        // Extremes bracket the recorded range.
        prop_assert!(h.quantile(1.0).unwrap() == h.max());
        prop_assert!(h.quantile(0.0).unwrap() >= h.min());
    }

    /// Relative-error bound of the bucket scheme: every value lands in
    /// a bucket whose width is at most max(1, value/32), so a reported
    /// bucket upper bound over-estimates by at most 3.125% (exact for
    /// values below 32).
    #[test]
    fn bucket_relative_error_bound(v in 0u64..=(1u64 << 40) - 1) {
        let i = bucket_index(v);
        let (lower, upper) = (bucket_lower(i), bucket_upper(i));
        prop_assert!(lower <= v && v < upper, "{v} outside [{lower},{upper})");
        let width = upper - lower;
        if v < SUB_BUCKETS {
            prop_assert_eq!(width, 1);
        } else {
            prop_assert!(width <= v / 32 + 1, "width {width} too wide for {v}");
            // Reported quantile (upper-1) is within 3.125% above v.
            prop_assert!((upper - 1 - v) as f64 <= v as f64 / 32.0);
        }
    }

    /// A single-value histogram reports that value (clamped to max)
    /// for every quantile, and mean/sum/count are exact.
    #[test]
    fn single_value_is_recovered(v in 0u64..1_000_000_000, q in 0.0f64..1.0) {
        let h = build(&[v]);
        prop_assert_eq!(h.quantile(q).unwrap(), v);
        prop_assert_eq!(h.count(), 1);
        prop_assert_eq!(h.sum(), v);
        prop_assert_eq!(h.min(), v);
        prop_assert_eq!(h.max(), v);
    }
}
