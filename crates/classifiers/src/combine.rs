//! Pairwise classifier combination.
//!
//! Section 3.3: "We experimented with two ways of combining two different
//! algorithms. One combination method tries to boost recall (while
//! possibly sacrificing some precision) and the other tries to boost
//! precision (while possibly sacrificing some recall)."
//!
//! * **Recall improvement**: output "yes" if *either* the main or the
//!   helper classifier says "yes" (logical OR).
//! * **Precision improvement**: output "yes" only if *both* say "yes"
//!   (logical AND).
//!
//! Section 5.6 describes the best per-language combinations; those
//! recipes live in `urlid::recipes` (the core crate), this module provides
//! the combinator itself.

use crate::model::UrlClassifier;
use serde::{Deserialize, Serialize};

/// Whether a combination boosts recall (OR) or precision (AND).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CombinationStrategy {
    /// "We only output 'no' if and only if both algorithms say 'no'."
    RecallImprovement,
    /// "We only output 'yes' if both classifiers say 'yes'."
    PrecisionImprovement,
}

impl CombinationStrategy {
    /// Combine two binary decisions according to the strategy.
    pub fn combine(self, main: bool, helper: bool) -> bool {
        match self {
            CombinationStrategy::RecallImprovement => main || helper,
            CombinationStrategy::PrecisionImprovement => main && helper,
        }
    }
}

/// A pair of URL classifiers combined with a [`CombinationStrategy`].
pub struct CombinedClassifier<A, B> {
    main: A,
    helper: B,
    strategy: CombinationStrategy,
}

impl<A: UrlClassifier, B: UrlClassifier> CombinedClassifier<A, B> {
    /// Combine `main` and `helper` with the given strategy.
    pub fn new(main: A, helper: B, strategy: CombinationStrategy) -> Self {
        Self {
            main,
            helper,
            strategy,
        }
    }

    /// Recall-boosting (OR) combination.
    pub fn recall_boost(main: A, helper: B) -> Self {
        Self::new(main, helper, CombinationStrategy::RecallImprovement)
    }

    /// Precision-boosting (AND) combination.
    pub fn precision_boost(main: A, helper: B) -> Self {
        Self::new(main, helper, CombinationStrategy::PrecisionImprovement)
    }

    /// The strategy in use.
    pub fn strategy(&self) -> CombinationStrategy {
        self.strategy
    }
}

impl<A: UrlClassifier, B: UrlClassifier> UrlClassifier for CombinedClassifier<A, B> {
    fn classify_url(&self, url: &str) -> bool {
        match self.strategy {
            // Short-circuit: the helper is only consulted when it can
            // change the outcome (exactly the paper's description of
            // asking for a "second opinion").
            CombinationStrategy::RecallImprovement => {
                self.main.classify_url(url) || self.helper.classify_url(url)
            }
            CombinationStrategy::PrecisionImprovement => {
                self.main.classify_url(url) && self.helper.classify_url(url)
            }
        }
    }

    fn score_url(&self, url: &str) -> f64 {
        let main = self.main.score_url(url);
        let helper = self.helper.score_url(url);
        match self.strategy {
            CombinationStrategy::RecallImprovement => main.max(helper),
            CombinationStrategy::PrecisionImprovement => main.min(helper),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stub classifier that says "yes" iff the URL contains its keyword.
    struct Contains(&'static str);
    impl UrlClassifier for Contains {
        fn classify_url(&self, url: &str) -> bool {
            url.contains(self.0)
        }
        fn score_url(&self, url: &str) -> f64 {
            if self.classify_url(url) {
                2.0
            } else {
                -3.0
            }
        }
    }

    #[test]
    fn strategy_truth_tables() {
        use CombinationStrategy::*;
        assert!(RecallImprovement.combine(true, false));
        assert!(RecallImprovement.combine(false, true));
        assert!(RecallImprovement.combine(true, true));
        assert!(!RecallImprovement.combine(false, false));

        assert!(PrecisionImprovement.combine(true, true));
        assert!(!PrecisionImprovement.combine(true, false));
        assert!(!PrecisionImprovement.combine(false, true));
        assert!(!PrecisionImprovement.combine(false, false));
    }

    #[test]
    fn recall_boost_accepts_union() {
        let c = CombinedClassifier::recall_boost(Contains(".de"), Contains("wetter"));
        assert!(c.classify_url("http://www.wetter.com/"));
        assert!(c.classify_url("http://www.beispiel.de/"));
        assert!(c.classify_url("http://www.wetter.de/"));
        assert!(!c.classify_url("http://www.example.com/"));
        assert_eq!(c.strategy(), CombinationStrategy::RecallImprovement);
    }

    #[test]
    fn precision_boost_accepts_intersection() {
        let c = CombinedClassifier::precision_boost(Contains(".de"), Contains("wetter"));
        assert!(c.classify_url("http://www.wetter.de/"));
        assert!(!c.classify_url("http://www.wetter.com/"));
        assert!(!c.classify_url("http://www.beispiel.de/"));
    }

    #[test]
    fn scores_follow_max_min_semantics() {
        let or = CombinedClassifier::recall_boost(Contains(".de"), Contains("wetter"));
        assert_eq!(or.score_url("http://www.wetter.com/"), 2.0);
        assert_eq!(or.score_url("http://www.example.com/"), -3.0);
        let and = CombinedClassifier::precision_boost(Contains(".de"), Contains("wetter"));
        assert_eq!(and.score_url("http://www.wetter.com/"), -3.0);
        assert_eq!(and.score_url("http://www.wetter.de/"), 2.0);
    }

    #[test]
    fn combinations_can_be_nested() {
        let inner = CombinedClassifier::recall_boost(Contains(".de"), Contains(".at"));
        let outer = CombinedClassifier::precision_boost(inner, Contains("nachrichten"));
        assert!(outer.classify_url("http://nachrichten.example.at/"));
        assert!(!outer.classify_url("http://nachrichten.example.com/"));
        assert!(!outer.classify_url("http://www.beispiel.de/"));
    }
}
