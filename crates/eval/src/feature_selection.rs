//! Greedy step-wise forward feature selection.
//!
//! Section 3.1: "To obtain a meaningful subset of features, which can also
//! be easily interpreted, we ran a greedy step-wise forward feature
//! selection algorithm for the decision tree, where at each step the
//! single feature which gives the biggest benefit to the performance is
//! added. The performance was measured in terms of the F-measure on the
//! validation set."
//!
//! The selection is expressed generically: the caller supplies a closure
//! that trains/evaluates with a candidate feature subset and returns the
//! validation F-measure. This keeps the algorithm independent of the
//! feature extractor and classifier (the `ablation_custom_features` bench
//! uses it with the decision tree on the 74 custom features, exactly as
//! the paper did).

/// Greedily select up to `max_features` of `n_features`, maximising the
/// score returned by `evaluate` (e.g. a validation F-measure).
///
/// Selection stops early when no remaining feature improves the score by
/// more than `min_gain`.
///
/// Returns the selected feature indices in the order they were added.
pub fn forward_selection<F>(
    n_features: usize,
    max_features: usize,
    min_gain: f64,
    mut evaluate: F,
) -> Vec<usize>
where
    F: FnMut(&[usize]) -> f64,
{
    let mut selected: Vec<usize> = Vec::new();
    let mut current_score = f64::NEG_INFINITY;
    while selected.len() < max_features.min(n_features) {
        let mut best: Option<(usize, f64)> = None;
        for candidate in 0..n_features {
            if selected.contains(&candidate) {
                continue;
            }
            let mut trial = selected.clone();
            trial.push(candidate);
            let score = evaluate(&trial);
            if best.map(|(_, s)| score > s).unwrap_or(true) {
                best = Some((candidate, score));
            }
        }
        let Some((feature, score)) = best else { break };
        let gain = if current_score.is_finite() {
            score - current_score
        } else {
            f64::INFINITY
        };
        if gain <= min_gain {
            break;
        }
        selected.push(feature);
        current_score = score;
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_the_informative_features_first() {
        // Score = number of "useful" features included (0, 2, 5), with a
        // tiny penalty per extra feature. Selection must find exactly the
        // useful ones and then stop.
        let useful = [0usize, 2, 5];
        let selected = forward_selection(8, 8, 1e-6, |subset| {
            let hits = subset.iter().filter(|f| useful.contains(f)).count() as f64;
            hits - 0.01 * subset.len() as f64
        });
        let mut s = selected.clone();
        s.sort_unstable();
        assert_eq!(s, vec![0, 2, 5]);
    }

    #[test]
    fn respects_max_features() {
        let selected = forward_selection(10, 3, 0.0, |subset| subset.len() as f64);
        assert_eq!(selected.len(), 3);
    }

    #[test]
    fn stops_when_no_feature_helps() {
        // Adding any feature beyond the first decreases the score.
        let selected = forward_selection(6, 6, 0.0, |subset| {
            if subset.len() == 1 {
                1.0
            } else {
                1.0 - subset.len() as f64
            }
        });
        assert_eq!(selected.len(), 1);
    }

    #[test]
    fn greedy_order_reflects_marginal_gain() {
        // Feature 3 alone is worth 0.9, feature 1 alone 0.5, together 1.0.
        let selected = forward_selection(4, 2, 0.0, |subset| {
            let mut score: f64 = 0.0;
            if subset.contains(&3) {
                score += 0.9;
            }
            if subset.contains(&1) {
                score += 0.1;
            }
            score
        });
        assert_eq!(selected, vec![3, 1]);
    }

    #[test]
    fn zero_features_gives_empty_selection() {
        let selected = forward_selection(0, 5, 0.0, |_| 1.0);
        assert!(selected.is_empty());
    }
}
