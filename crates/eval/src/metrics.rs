//! The paper's evaluation measures (Section 4.2).
//!
//! For each binary classifier the paper reports:
//!
//! * **Recall** `R = p(+|+)`: correctly identified positive URLs divided
//!   by all positive URLs;
//! * **Negative success ratio** `p(−|−)`: correctly identified negative
//!   URLs divided by all negative URLs;
//! * **Precision** `P`, always reported *for a balanced setting* with
//!   `n₊ = n₋`:
//!   `P = p(+|+) / (p(+|+) + (1 − p(−|−)))` — the limit of the usual
//!   precision when equally many positive and negative test URLs are
//!   drawn, which removes the dependence of precision on the class skew of
//!   the test set (important for the strongly English-skewed crawl set);
//! * **F-measure** `F = 2 / (1/R + 1/P)`.

use serde::{Deserialize, Serialize};

/// Raw outcome counts of a binary classifier on a test set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryCounts {
    /// Positive URLs classified as positive.
    pub true_positives: usize,
    /// Negative URLs classified as positive.
    pub false_positives: usize,
    /// Negative URLs classified as negative.
    pub true_negatives: usize,
    /// Positive URLs classified as negative.
    pub false_negatives: usize,
}

impl BinaryCounts {
    /// Record one classification outcome.
    pub fn record(&mut self, is_positive: bool, predicted_positive: bool) {
        match (is_positive, predicted_positive) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_negatives += 1,
            (false, true) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
        }
    }

    /// Number of positive test URLs.
    pub fn positives(&self) -> usize {
        self.true_positives + self.false_negatives
    }

    /// Number of negative test URLs.
    pub fn negatives(&self) -> usize {
        self.false_positives + self.true_negatives
    }

    /// Total number of test URLs.
    pub fn total(&self) -> usize {
        self.positives() + self.negatives()
    }

    /// Merge another set of counts into this one.
    pub fn merge(&mut self, other: &BinaryCounts) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.true_negatives += other.true_negatives;
        self.false_negatives += other.false_negatives;
    }

    /// Derive the paper's metrics from the counts.
    pub fn metrics(&self) -> BinaryMetrics {
        let recall = if self.positives() == 0 {
            0.0
        } else {
            self.true_positives as f64 / self.positives() as f64
        };
        let negative_success = if self.negatives() == 0 {
            0.0
        } else {
            self.true_negatives as f64 / self.negatives() as f64
        };
        // Balanced precision (Section 4.2): P for n+ = n-.
        let denom = recall + (1.0 - negative_success);
        let precision = if denom == 0.0 { 0.0 } else { recall / denom };
        let f_measure = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        BinaryMetrics {
            precision,
            recall,
            negative_success,
            f_measure,
        }
    }
}

/// The paper's four per-classifier numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BinaryMetrics {
    /// Balanced precision `P`.
    pub precision: f64,
    /// Recall `R = p(+|+)`.
    pub recall: f64,
    /// Negative success ratio `p(−|−)`.
    pub negative_success: f64,
    /// F-measure `F = 2/(1/R + 1/P)`.
    pub f_measure: f64,
}

impl BinaryMetrics {
    /// Format as the paper's table cells: `P R p(−|−) F` with two decimals.
    pub fn paper_row(&self) -> String {
        format!(
            "{:.2} {:.2} {:.2} {:.2}",
            self.precision, self.recall, self.negative_success, self.f_measure
        )
    }
}

/// Per-language metrics plus their average (the paper averages F-measures
/// over languages and over test sets).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MacroMetrics {
    /// Metrics per language in canonical order.
    pub per_language: [BinaryMetrics; 5],
}

impl MacroMetrics {
    /// Average F-measure over the five languages.
    pub fn mean_f_measure(&self) -> f64 {
        self.per_language.iter().map(|m| m.f_measure).sum::<f64>() / 5.0
    }

    /// Average recall over the five languages.
    pub fn mean_recall(&self) -> f64 {
        self.per_language.iter().map(|m| m.recall).sum::<f64>() / 5.0
    }

    /// Average balanced precision over the five languages.
    pub fn mean_precision(&self) -> f64 {
        self.per_language.iter().map(|m| m.precision).sum::<f64>() / 5.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier_has_all_ones() {
        let c = BinaryCounts {
            true_positives: 50,
            false_positives: 0,
            true_negatives: 200,
            false_negatives: 0,
        };
        let m = c.metrics();
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.negative_success, 1.0);
        assert_eq!(m.f_measure, 1.0);
    }

    #[test]
    fn always_positive_classifier_matches_paper_baseline() {
        // Section 4.2: "An F-measure of F = 0.67 can be trivially obtained
        // for the balanced setting by always classifying a URL as
        // positive, as this will give R = 1 and P = 0.5."
        let c = BinaryCounts {
            true_positives: 30,
            false_positives: 300,
            true_negatives: 0,
            false_negatives: 0,
        };
        let m = c.metrics();
        assert_eq!(m.recall, 1.0);
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.f_measure - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn always_negative_classifier_scores_zero() {
        let c = BinaryCounts {
            true_positives: 0,
            false_positives: 0,
            true_negatives: 100,
            false_negatives: 10,
        };
        let m = c.metrics();
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.negative_success, 1.0);
        assert_eq!(m.f_measure, 0.0);
    }

    #[test]
    fn balanced_precision_is_independent_of_class_skew() {
        // Same per-class behaviour, very different class skew: the
        // balanced precision must not change (this is exactly why the
        // paper uses it).
        let balanced = BinaryCounts {
            true_positives: 90,
            false_negatives: 10,
            true_negatives: 95,
            false_positives: 5,
        };
        let skewed = BinaryCounts {
            true_positives: 900,
            false_negatives: 100,
            true_negatives: 19,
            false_positives: 1,
        };
        let a = balanced.metrics();
        let b = skewed.metrics();
        assert!((a.precision - b.precision).abs() < 1e-9);
        assert!((a.recall - b.recall).abs() < 1e-9);
    }

    #[test]
    fn record_and_merge_accumulate() {
        let mut a = BinaryCounts::default();
        a.record(true, true);
        a.record(true, false);
        a.record(false, true);
        a.record(false, false);
        assert_eq!(a.total(), 4);
        assert_eq!(a.positives(), 2);
        assert_eq!(a.negatives(), 2);
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.total(), 8);
        assert_eq!(b.true_positives, 2);
    }

    #[test]
    fn empty_counts_do_not_divide_by_zero() {
        let m = BinaryCounts::default().metrics();
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f_measure, 0.0);
    }

    #[test]
    fn macro_metrics_average() {
        let mut mm = MacroMetrics::default();
        for i in 0..5 {
            mm.per_language[i] = BinaryMetrics {
                precision: 1.0,
                recall: 0.5,
                negative_success: 1.0,
                f_measure: (i + 1) as f64 / 10.0,
            };
        }
        assert!((mm.mean_f_measure() - 0.3).abs() < 1e-12);
        assert!((mm.mean_recall() - 0.5).abs() < 1e-12);
        assert!((mm.mean_precision() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_row_formatting() {
        let m = BinaryMetrics {
            precision: 0.816,
            recall: 0.96,
            negative_success: 0.79,
            f_measure: 0.883,
        };
        assert_eq!(m.paper_row(), "0.82 0.96 0.79 0.88");
    }

    #[test]
    fn f_measure_is_harmonic_mean() {
        let c = BinaryCounts {
            true_positives: 80,
            false_negatives: 20,
            true_negatives: 60,
            false_positives: 40,
        };
        let m = c.metrics();
        let expected_p = 0.8 / (0.8 + 0.4);
        assert!((m.precision - expected_p).abs() < 1e-12);
        let expected_f = 2.0 * expected_p * 0.8 / (expected_p + 0.8);
        assert!((m.f_measure - expected_f).abs() < 1e-12);
    }
}
