//! Differential tests: the zero-copy `.urlm` binary format against the
//! JSON interchange oracle.
//!
//! JSON is the interchange/oracle representation; `.urlm` is the
//! serving format whose on-disk sections *are* the compiled plane's
//! runtime structures (mmap + validate + cast, no deserialisation).
//! A packed model must therefore be **indistinguishable** from the
//! JSON-loaded one — bit-identical scores, not merely close — for all
//! fifteen algorithm × feature recipes, on both weight lanes:
//!
//! * the exact `f64` lane (the mapped matrix is the same bytes the
//!   compiler produced);
//! * the quantised `f32` lane (`.urlm` always carries the `MATRIX32`
//!   section, produced by the same deterministic quantisation that
//!   `compile_f32` performs — so a mapped f32 lane and a recompiled
//!   one must agree to the bit);
//! * the interpreted oracle (the `MODELS` section round-trips the
//!   training-time models, so `score_all_interpreted` works on
//!   binary-loaded sets too).

use urlid::prelude::*;

/// Generated URLs of every language plus odd hosts that must not panic
/// or diverge between formats.
fn url_sample() -> Vec<String> {
    let mut generator = UrlGenerator::new(7001);
    let profile = urlid::corpus::DatasetProfile::web_crawl();
    let mut urls = Vec::new();
    for lang in ALL_LANGUAGES {
        urls.extend(generator.generate_many(lang, &profile, 8));
    }
    for odd in [
        "http://192.168.0.1/index.html",
        "http://localhost/page",
        "https://example.co.uk/weather/report?q=1",
        "http://xn--mnchen-3ya.de/",
        "ftp://odd.scheme.example/path",
    ] {
        urls.push(odd.to_owned());
    }
    urls
}

#[test]
fn every_recipe_packs_and_serves_bit_identically_on_both_lanes() {
    let mut generator = UrlGenerator::new(77);
    let training = odp_dataset(&mut generator, CorpusScale::tiny()).train;
    let sample = url_sample();
    let dir =
        std::env::temp_dir().join(format!("urlid-binary-differential-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let algorithms = [
        Algorithm::NaiveBayes,
        Algorithm::RelativeEntropy,
        Algorithm::MaxEnt,
        Algorithm::DecisionTree,
        Algorithm::KNearestNeighbors,
    ];
    for algorithm in algorithms {
        for feature_set in [
            FeatureSetKind::Words,
            FeatureSetKind::Trigrams,
            FeatureSetKind::Custom,
        ] {
            let tag = format!("{feature_set:?}/{algorithm:?}");
            let config = TrainingConfig::new(feature_set, algorithm).with_maxent_iterations(6);
            let bundle =
                ModelBundle::train(&training, &config).unwrap_or_else(|e| panic!("{tag}: {e}"));
            let json_path = dir.join(format!("{feature_set:?}-{algorithm:?}.json"));
            let urlm_path = dir.join(format!("{feature_set:?}-{algorithm:?}.urlm"));
            bundle.save_json(&json_path).unwrap();
            let report = bundle
                .pack(&urlm_path)
                .unwrap_or_else(|e| panic!("{tag} pack: {e}"));
            assert!(report.bytes > 0, "{tag}: empty pack");

            let from_json = ModelSource::json(&json_path)
                .load_identifier()
                .unwrap_or_else(|e| panic!("{tag} json load: {e}"));
            let source = ModelSource::detect(&urlm_path).unwrap();
            assert_eq!(source.format(), ModelFormat::Binary, "{tag}: magic sniff");
            let from_urlm = source
                .load_identifier()
                .unwrap_or_else(|e| panic!("{tag} binary load: {e}"));
            assert!(
                from_urlm
                    .classifier_set()
                    .plane()
                    .is_some_and(|p| p.is_mapped()),
                "{tag}: binary load must serve out of the mapping"
            );

            // Exact f64 lane: bit-for-bit equality, decisions included.
            for url in &sample {
                let expected = from_json.classifier_set().score_all(url);
                let actual = from_urlm.classifier_set().score_all(url);
                assert_eq!(expected, actual, "{tag}: f64 scores diverge on {url}");
                assert_eq!(
                    from_json.identify(url),
                    from_urlm.identify(url),
                    "{tag}: decisions diverge on {url}"
                );
            }

            // Interpreted oracle: the MODELS section restored the
            // training-time models themselves.
            for url in sample.iter().take(5) {
                assert_eq!(
                    from_json.classifier_set().score_all_interpreted(url),
                    from_urlm.classifier_set().score_all_interpreted(url),
                    "{tag}: interpreted scores diverge on {url}"
                );
            }

            // Quantised f32 lane: the packed MATRIX32 section against a
            // lane recompiled from the JSON-loaded model.
            let mut from_json = from_json;
            let mut from_urlm = from_urlm;
            assert_eq!(from_json.classifier_set_mut().set_weight_lane(true), "f32");
            assert_eq!(from_urlm.classifier_set_mut().set_weight_lane(true), "f32");
            for url in &sample {
                assert_eq!(
                    from_json.classifier_set().score_all(url),
                    from_urlm.classifier_set().score_all(url),
                    "{tag}: f32 scores diverge on {url}"
                );
            }
            // Flipping back restores the exact lane.
            assert_eq!(from_urlm.classifier_set_mut().set_weight_lane(false), "f64");
            let url = &sample[0];
            assert_eq!(
                from_json.classifier_set().score_all_interpreted(url),
                from_urlm.classifier_set().score_all_interpreted(url),
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
