//! A minimal HTTP/1.1 codec over [`TcpStream`].
//!
//! Implements exactly the subset the serving layer needs: request-line +
//! headers + `Content-Length` bodies, keep-alive, and the handful of
//! status codes the API returns. Shared by the server, the load
//! generator's client side, and the integration tests — so the same
//! parser is exercised from both directions.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the total header section of a request (bytes).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Upper bound on a request body (bytes) — batch requests included.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercased as received.
    pub method: String,
    /// Request path (query strings are kept verbatim; the API uses none).
    pub path: String,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: String,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// The connection failed mid-request (including read timeouts).
    Io(io::Error),
    /// The bytes on the wire are not a well-formed HTTP/1.1 request.
    Malformed(String),
    /// Headers or body exceed the configured limits.
    TooLarge(String),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge(m) => write!(f, "request too large: {m}"),
        }
    }
}

/// Read one `\n`-terminated line of at most `limit` bytes. Enforces the
/// cap *while reading* (via [`Read::take`]), so a malicious peer
/// streaming gigabytes with no newline cannot grow the buffer past the
/// header limit. Returns the number of bytes read (0 on EOF).
fn read_line_limited(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    limit: usize,
) -> Result<usize, HttpError> {
    let read = reader.by_ref().take(limit as u64).read_line(line)?;
    if read == limit && !line.ends_with('\n') {
        return Err(HttpError::TooLarge("header line".into()));
    }
    Ok(read)
}

/// Read one request from the connection. Returns `Ok(None)` on a clean
/// EOF (the client closed an idle keep-alive connection).
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Option<Request>, HttpError> {
    let mut line = String::new();
    if read_line_limited(reader, &mut line, MAX_HEADER_BYTES)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_owned();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line has no path".into()))?
        .to_owned();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line has no version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad version {version:?}")));
    }
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version == "HTTP/1.1";
    let mut content_length = 0usize;
    let mut header_bytes = line.len();
    loop {
        line.clear();
        let budget = MAX_HEADER_BYTES.saturating_sub(header_bytes);
        if budget == 0 {
            return Err(HttpError::TooLarge("header section".into()));
        }
        if read_line_limited(reader, &mut line, budget)? == 0 {
            return Err(HttpError::Malformed("EOF inside headers".into()));
        }
        header_bytes += line.len();
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header {trimmed:?}")));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {value:?}")))?;
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| HttpError::Malformed("body is not valid UTF-8".into()))?;
    Ok(Some(Request {
        method,
        path,
        keep_alive,
        body,
    }))
}

/// The reason phrase for the status codes the API uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Write a JSON response (the API speaks nothing else).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    // Head and body go out in one write: a single TCP segment for small
    // responses, and no window for a peer to observe a half response.
    let message = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        reason(status),
        body.len(),
    );
    stream.write_all(message.as_bytes())?;
    stream.flush()
}

// ---------------------------------------------------------------------
// Client side (load generator, integration tests)
// ---------------------------------------------------------------------

/// Write a request; `body` of `None` means a body-less GET-style request.
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<()> {
    let body = body.unwrap_or("");
    // One write for head + body (see `write_response`).
    let message = format!(
        "{method} {path} HTTP/1.1\r\nHost: urlid\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(message.as_bytes())?;
    stream.flush()
}

/// Read one response; returns `(status, body)`.
pub fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<(u16, String)> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before response",
        ));
    }
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside headers",
            ));
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(|b| (status, b))
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))
}
