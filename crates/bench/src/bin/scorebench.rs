//! `scorebench` — wall-clock benchmark of the compiled scoring plane.
//!
//! Trains every persistable algorithm × feature recipe (15 of them) on a
//! small sharded corpus, then measures `identify_batch` throughput over
//! a crawl-frontier probe set three times per recipe — through the
//! **interpreted** scoring path (the training-time representation:
//! `HashMap` vocabularies, per-language model structures), through the
//! **compiled plane** (arena-interned vocabulary, fused language-major
//! dense-weight matrix, exact `f64` weights), and through the compiled
//! plane's opt-in **quantised `f32` weight lane** — and writes the
//! timings to `BENCH_score.json` (`"schema": 3`):
//!
//! ```text
//! cargo run --release -p urlid-bench --bin scorebench -- \
//!     [--scale 0.004] [--seed 42] [--urls 4000] [--reps 3] \
//!     [--maxent-iters 6] [--out BENCH_score.json]
//! ```
//!
//! The bench is a differential check as much as a benchmark; it exits
//! non-zero if any contract is violated, so a CI regression gate on the
//! report can trust the numbers it compares:
//!
//! * the `f64` compiled plane must match the interpreted oracle within
//!   1e-12 (in fact bit-identically) on every probe URL;
//! * the `f32` lane must reproduce every accept/reject decision and
//!   stay within [`F32_SCORE_TOLERANCE`] (relative) of the `f64` scores;
//! * the uniform-plane recipes (words/trigrams × nb/re/me) must score a
//!   warm probe pass with **zero heap allocations**, proven by the
//!   counting global allocator below;
//! * the same zero-allocation contract must hold through the
//!   **instrumented split path** (`score_all_with_split`, the serve
//!   layer's per-stage telemetry), whose scores must also match the
//!   untimed path bit-for-bit — telemetry is observation, not a fork.

use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use urlid::features::ExtractScratch;
use urlid::prelude::*;
use urlid_corpus::ShardPlan;

/// Documented tolerance of the quantised `f32` lane: per-language
/// scores must satisfy `|f32 − f64| ≤ tol · max(1, |f64|)`. The f32
/// mantissa carries ~1e-7 relative precision per weight; summed over
/// the tens of features a URL activates, observed drift stays below
/// 1e-5 — the gate leaves an order of magnitude of headroom.
const F32_SCORE_TOLERANCE: f64 = 1e-4;

/// Counting wrapper around the system allocator: every `alloc`,
/// `alloc_zeroed` and growing `realloc` bumps one relaxed counter.
/// Lives in the benchmark binary (its own crate root) so the library
/// crates keep their `#![forbid(unsafe_code)]`.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[derive(Debug, Serialize)]
struct RecipeBench {
    features: String,
    algorithm: String,
    /// URLs/second through the interpreted path.
    interpreted_rps: f64,
    /// URLs/second through the compiled plane (exact `f64` weights).
    compiled_rps: f64,
    /// URLs/second through the quantised `f32` weight lane.
    f32_rps: f64,
    /// compiled_rps / interpreted_rps.
    speedup: f64,
    /// f32_rps / compiled_rps (the marginal gain of quantising).
    f32_speedup: f64,
    /// Did every probe URL produce identical decisions and scores
    /// within 1e-12 (in fact: bit-identical) on both paths?
    equal: bool,
    /// Largest |compiled − interpreted| score difference observed.
    max_score_diff: f64,
    /// Did the f32 lane reproduce every accept/reject decision whose
    /// exact score clears the quantisation noise floor
    /// ([`F32_SCORE_TOLERANCE`])? Scores inside the floor are ties the
    /// exact lane itself only breaks by rounding residue.
    f32_decision_parity: bool,
    /// Largest relative |f32 − f64| score drift observed
    /// (`|Δ| / max(1, |f64|)`); gated by [`F32_SCORE_TOLERANCE`].
    f32_max_score_diff: f64,
    /// Heap allocations per URL during a warm sequential scoring pass
    /// (reused `ExtractScratch`, counting global allocator).
    steady_allocs_per_url: f64,
    /// Same audit through the instrumented `score_all_with_split` path
    /// (per-stage telemetry enabled). Gated exactly like
    /// `steady_allocs_per_url` — telemetry must not allocate.
    split_allocs_per_url: f64,
    /// Warm single-threaded throughput of the untimed scoring path
    /// (URLs/second, best of `reps`). Informational.
    plain_path_rps: f64,
    /// Warm single-threaded throughput with per-stage timing enabled
    /// (`score_all_with_split`). Informational: the gap to
    /// `plain_path_rps` is the raw cost of three `Instant` reads per
    /// URL on a sub-microsecond hot loop.
    split_path_rps: f64,
    /// Must this recipe score with zero steady-state allocations?
    /// True for the uniform-plane recipes: words/trigrams × nb/re/me.
    zero_alloc_required: bool,
}

#[derive(Debug, Serialize)]
struct ScoreBenchReport {
    bench: &'static str,
    /// Report format version; bumped when fields are added so the CI
    /// gate can stay tolerant of older committed baselines.
    schema: u32,
    unix_time: u64,
    cores: usize,
    corpus_urls: usize,
    corpus_scale: f64,
    probe_urls: usize,
    reps: usize,
    maxent_iterations: usize,
    /// The f32 gate the `f32_max_score_diff` fields were checked
    /// against, recorded so the report is self-describing.
    f32_score_tolerance: f64,
    recipes: Vec<RecipeBench>,
    /// Total probe seconds, interpreted vs compiled, across recipes.
    total_interpreted_secs: f64,
    total_compiled_secs: f64,
    total_f32_secs: f64,
    /// Headline `identify_batch` speedup of the compiled plane: the
    /// geometric mean of the per-recipe speedups (robust against one
    /// slow recipe — k-NN spends seconds where NB spends milliseconds —
    /// dominating a wall-clock ratio).
    identify_batch_speedup: f64,
    /// Geometric mean of per-recipe `f32_speedup` (f32 lane vs f64).
    f32_speedup_geomean: f64,
    equal_all: bool,
    /// Every recipe's f32 lane reproduced every decision and stayed
    /// within tolerance.
    f32_parity_all: bool,
    /// Every zero-alloc-required recipe measured 0 allocations/URL.
    zero_alloc_ok: bool,
    /// Every zero-alloc-required recipe also measured 0 allocations/URL
    /// through the instrumented split path, and the split path's scores
    /// matched the untimed path on every probe URL.
    split_path_ok: bool,
}

struct Config {
    scale: f64,
    seed: u64,
    urls: usize,
    reps: usize,
    maxent_iters: usize,
    out: String,
}

fn parse_args() -> Result<Config, String> {
    let mut config = Config {
        scale: 0.004,
        seed: 42,
        urls: 4000,
        reps: 3,
        maxent_iters: 6,
        out: "BENCH_score.json".to_owned(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument {:?}", argv[i]))?;
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("missing value for --{key}"))?;
        match key {
            "scale" => config.scale = value.parse().map_err(|_| format!("bad --scale {value}"))?,
            "seed" => config.seed = value.parse().map_err(|_| format!("bad --seed {value}"))?,
            "urls" => config.urls = value.parse().map_err(|_| format!("bad --urls {value}"))?,
            "reps" => {
                config.reps = value.parse().map_err(|_| format!("bad --reps {value}"))?;
                if config.reps == 0 {
                    return Err("--reps must be at least 1".to_owned());
                }
            }
            "maxent-iters" => {
                config.maxent_iters = value
                    .parse()
                    .map_err(|_| format!("bad --maxent-iters {value}"))?
            }
            "out" => config.out = value.clone(),
            other => return Err(format!("unknown flag --{other}")),
        }
        i += 2;
    }
    Ok(config)
}

/// Best-of-`reps` wall-clock for one full `identify_batch` pass.
fn time_batch(identifier: &LanguageIdentifier, urls: &[&str], reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let started = Instant::now();
        let decisions = identifier.identify_batch(urls);
        let elapsed = started.elapsed().as_secs_f64();
        assert_eq!(decisions.len(), urls.len());
        best = best.min(elapsed);
    }
    best
}

/// Steady-state allocations per URL: one full warm pass grows every
/// reusable buffer (`ExtractScratch`, the sparse vector, the rank
/// buffer) to its high-water mark, then a second full pass is measured
/// through the counting allocator. Single-threaded on purpose — the
/// batch fan-out's thread spawns would drown the per-URL signal.
fn steady_allocs_per_url(identifier: &LanguageIdentifier, urls: &[&str]) -> f64 {
    let set = identifier.classifier_set();
    let mut scratch = ExtractScratch::new();
    for url in urls {
        let _ = set.score_all_with(url, &mut scratch);
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for url in urls {
        let _ = set.score_all_with(url, &mut scratch);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    (after - before) as f64 / urls.len().max(1) as f64
}

/// The [`steady_allocs_per_url`] audit through the instrumented
/// `score_all_with_split` path, which is what the server's per-stage
/// telemetry runs on. Also differentially checks that the split path
/// returns the exact same scores as the untimed path (bit-for-bit:
/// both route through the same extraction and scoring helpers).
/// Returns (allocations per URL, scores matched everywhere).
fn steady_split_allocs_per_url(identifier: &LanguageIdentifier, urls: &[&str]) -> (f64, bool) {
    let set = identifier.classifier_set();
    let mut scratch = ExtractScratch::new();
    let mut scores_match = true;
    for url in urls {
        let plain = set.score_all_with(url, &mut scratch);
        let (split, _) = set.score_all_with_split(url, &mut scratch);
        if plain != split {
            scores_match = false;
        }
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for url in urls {
        let _ = set.score_all_with_split(url, &mut scratch);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    let per_url = (after - before) as f64 / urls.len().max(1) as f64;
    (per_url, scores_match)
}

/// Warm single-threaded throughputs of the untimed scoring path and the
/// instrumented split path (URLs/second, best of `reps` each). The pair
/// quantifies what per-stage telemetry costs on the raw hot loop —
/// informational, not gated: three `Instant` reads are a fixed ~100ns
/// against a ~400ns scoring loop, and the end-to-end ≤2% budget is
/// enforced where it is meaningful, at the serve level (see CI).
fn split_overhead_rps(identifier: &LanguageIdentifier, urls: &[&str], reps: usize) -> (f64, f64) {
    let set = identifier.classifier_set();
    let mut scratch = ExtractScratch::new();
    let mut plain_best = f64::INFINITY;
    let mut split_best = f64::INFINITY;
    for _ in 0..reps {
        let started = Instant::now();
        for url in urls {
            std::hint::black_box(set.score_all_with(url, &mut scratch));
        }
        plain_best = plain_best.min(started.elapsed().as_secs_f64());
        let started = Instant::now();
        for url in urls {
            std::hint::black_box(set.score_all_with_split(url, &mut scratch));
        }
        split_best = split_best.min(started.elapsed().as_secs_f64());
    }
    let n = urls.len().max(1) as f64;
    (n / plain_best, n / split_best)
}

fn run() -> Result<(), String> {
    let config = parse_args()?;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let plan = ShardPlan::odp_training(config.seed, CorpusScale(config.scale), 16);
    let training = plan.assemble(0);
    let probe_owned = UrlGenerator::crawl_frontier_mix(config.seed.wrapping_add(1), config.urls);
    let probe: Vec<&str> = probe_owned.iter().map(|s| s.as_str()).collect();
    eprintln!(
        "corpus: {} URLs; probe: {} URLs × {} reps; {} cores",
        training.len(),
        probe.len(),
        config.reps,
        cores
    );

    let algorithms = [
        ("nb", Algorithm::NaiveBayes),
        ("re", Algorithm::RelativeEntropy),
        ("me", Algorithm::MaxEnt),
        ("dt", Algorithm::DecisionTree),
        ("knn", Algorithm::KNearestNeighbors),
    ];
    let feature_sets = [
        ("words", FeatureSetKind::Words),
        ("trigrams", FeatureSetKind::Trigrams),
        ("custom", FeatureSetKind::Custom),
    ];

    let mut recipes = Vec::new();
    let mut equal_all = true;
    let mut f32_parity_all = true;
    let mut zero_alloc_ok = true;
    let mut split_path_ok = true;
    for (feature_name, feature_set) in feature_sets {
        for (algorithm_name, algorithm) in algorithms {
            let tc = TrainingConfig::new(feature_set, algorithm)
                .with_seed(config.seed)
                .with_maxent_iterations(config.maxent_iters);
            let bundle = ModelBundle::train(&training, &tc).map_err(|e| format!("train: {e}"))?;

            // Three identifiers from the same trained bytes: the load
            // path compiles (f64), one re-compiles to the quantised f32
            // lane, and the baseline explicitly decompiles.
            let compiled = bundle.clone().into_identifier();
            assert!(compiled.classifier_set().is_compiled());
            let mut quantized = bundle.clone().into_identifier();
            quantized.classifier_set_mut().compile_f32();
            assert_eq!(quantized.classifier_set().weight_lane(), "f32");
            let mut interpreted = bundle.into_identifier();
            interpreted.classifier_set_mut().clear_compiled();
            assert!(!interpreted.classifier_set().is_compiled());

            // Differential checks before timing anything: f64 compiled
            // vs the interpreted oracle, then f32 vs f64.
            let mut equal = true;
            let mut max_score_diff = 0.0f64;
            let mut f32_decision_parity = true;
            let mut f32_max_score_diff = 0.0f64;
            for url in &probe {
                let c = compiled.classifier_set().score_all(url);
                let i = compiled.classifier_set().score_all_interpreted(url);
                let q = quantized.classifier_set().score_all(url);
                for lang in ALL_LANGUAGES {
                    let (Some(cs), Some(is)) = (c[lang.index()], i[lang.index()]) else {
                        equal = false;
                        continue;
                    };
                    let diff = (cs - is).abs();
                    max_score_diff = max_score_diff.max(diff);
                    if diff.is_nan() || diff > 1e-12 {
                        equal = false;
                    }
                    let Some(qs) = q[lang.index()] else {
                        f32_decision_parity = false;
                        continue;
                    };
                    let rel = (qs - cs).abs() / cs.abs().max(1.0);
                    f32_max_score_diff = f32_max_score_diff.max(rel);
                    // Decisions are `score > 0` (the proptested sign
                    // convention). A flip only counts when the exact
                    // score clears the quantisation noise floor: a
                    // |score| at 1e-15 — an out-of-vocabulary URL whose
                    // divergences cancel — is a coin toss the exact
                    // lane itself only "decides" by rounding residue.
                    if cs.abs() > F32_SCORE_TOLERANCE && (cs > 0.0) != (qs > 0.0) {
                        f32_decision_parity = false;
                    }
                }
                if compiled.classifier_set().classify_all(url)
                    != compiled.classifier_set().classify_all_interpreted(url)
                {
                    equal = false;
                }
            }
            equal_all &= equal;
            let f32_within_tolerance =
                f32_decision_parity && f32_max_score_diff <= F32_SCORE_TOLERANCE;
            f32_parity_all &= f32_within_tolerance;

            // Steady-state allocation audit on the f64 compiled plane.
            // The uniform recipes (all five languages on one linear or
            // entropy plane, words or trigrams) must be allocation-free
            // once the scratch is warm; custom features and the hybrid
            // dt/knn fallbacks may allocate and are reported, not gated.
            let steady_allocs = steady_allocs_per_url(&compiled, &probe);
            let zero_alloc_required = matches!(feature_name, "words" | "trigrams")
                && matches!(algorithm_name, "nb" | "re" | "me");
            if zero_alloc_required && steady_allocs > 0.0 {
                zero_alloc_ok = false;
            }

            // The same audit with per-stage telemetry enabled: the
            // split path must stay allocation-free on the same recipes
            // and must return the exact same scores everywhere.
            let (split_allocs, split_scores_match) = steady_split_allocs_per_url(&compiled, &probe);
            if (zero_alloc_required && split_allocs > 0.0) || !split_scores_match {
                split_path_ok = false;
            }
            let (plain_path_rps, split_path_rps) =
                split_overhead_rps(&compiled, &probe, config.reps);

            // Warm-up once per leg, then best-of-reps.
            let _ = interpreted.identify_batch(&probe[..probe.len().min(256)]);
            let _ = compiled.identify_batch(&probe[..probe.len().min(256)]);
            let _ = quantized.identify_batch(&probe[..probe.len().min(256)]);
            let interpreted_secs = time_batch(&interpreted, &probe, config.reps);
            let compiled_secs = time_batch(&compiled, &probe, config.reps);
            let f32_secs = time_batch(&quantized, &probe, config.reps);

            let interpreted_rps = probe.len() as f64 / interpreted_secs;
            let compiled_rps = probe.len() as f64 / compiled_secs;
            let f32_rps = probe.len() as f64 / f32_secs;
            let speedup = compiled_rps / interpreted_rps;
            let f32_speedup = f32_rps / compiled_rps;
            eprintln!(
                "{feature_name:>8} + {algorithm_name:<3}  interpreted {interpreted_rps:9.0} u/s  \
                 compiled {compiled_rps:9.0} u/s ({speedup:4.2}x)  f32 {f32_rps:9.0} u/s \
                 ({f32_speedup:4.2}x, drift {f32_max_score_diff:.1e})  equal {equal}  \
                 allocs/url {steady_allocs:.2} (split {split_allocs:.2})",
            );
            recipes.push(RecipeBench {
                features: feature_name.to_owned(),
                algorithm: algorithm_name.to_owned(),
                interpreted_rps,
                compiled_rps,
                f32_rps,
                speedup,
                f32_speedup,
                equal,
                max_score_diff,
                f32_decision_parity,
                f32_max_score_diff,
                steady_allocs_per_url: steady_allocs,
                split_allocs_per_url: split_allocs,
                plain_path_rps,
                split_path_rps,
                zero_alloc_required,
            });
        }
    }

    let total_interpreted_secs: f64 = recipes
        .iter()
        .map(|r| probe.len() as f64 / r.interpreted_rps)
        .sum();
    let total_compiled_secs: f64 = recipes
        .iter()
        .map(|r| probe.len() as f64 / r.compiled_rps)
        .sum();
    let total_f32_secs: f64 = recipes.iter().map(|r| probe.len() as f64 / r.f32_rps).sum();
    let geomean = |values: &mut dyn Iterator<Item = f64>| -> f64 {
        let (sum, n) = values.fold((0.0f64, 0usize), |(s, n), v| (s + v.ln(), n + 1));
        (sum / n.max(1) as f64).exp()
    };
    let speedup_geomean = geomean(&mut recipes.iter().map(|r| r.speedup));
    let f32_speedup_geomean = geomean(&mut recipes.iter().map(|r| r.f32_speedup));
    let report = ScoreBenchReport {
        bench: "score",
        schema: 3,
        unix_time: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        cores,
        corpus_urls: training.len(),
        corpus_scale: config.scale,
        probe_urls: probe.len(),
        reps: config.reps,
        maxent_iterations: config.maxent_iters,
        f32_score_tolerance: F32_SCORE_TOLERANCE,
        recipes,
        total_interpreted_secs,
        total_compiled_secs,
        total_f32_secs,
        identify_batch_speedup: speedup_geomean,
        f32_speedup_geomean,
        equal_all,
        f32_parity_all,
        zero_alloc_ok,
        split_path_ok,
    };
    let json = serde_json::to_string(&report).map_err(|e| e.to_string())?;
    std::fs::write(&config.out, &json).map_err(|e| format!("cannot write {}: {e}", config.out))?;
    eprintln!(
        "total probe time: interpreted {total_interpreted_secs:.2}s, compiled \
         {total_compiled_secs:.2}s, f32 {total_f32_secs:.2}s; geomean speedup {:.2}x \
         (f32 lane {:.2}x on top); equal {equal_all}; f32 parity {f32_parity_all}; \
         zero-alloc {zero_alloc_ok}; split path {split_path_ok}; wrote {}",
        report.identify_batch_speedup, report.f32_speedup_geomean, config.out
    );
    if !equal_all {
        return Err("differential violation: compiled plane diverged from interpreted".to_owned());
    }
    if !f32_parity_all {
        return Err(format!(
            "f32 violation: quantised lane broke decision parity or exceeded \
             the {F32_SCORE_TOLERANCE:.0e} relative score tolerance"
        ));
    }
    if !zero_alloc_ok {
        return Err(
            "allocation violation: a uniform-plane recipe allocated during warm scoring".to_owned(),
        );
    }
    if !split_path_ok {
        return Err(
            "telemetry violation: the instrumented split path allocated on a \
             uniform-plane recipe or returned different scores"
                .to_owned(),
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("scorebench: {message}");
            ExitCode::FAILURE
        }
    }
}
