//! The io_uring completion engine behind `urlid serve --io uring`.
//!
//! Everything is hand-rolled against the raw kernel ABI — the build
//! container has no crates.io access (no `io-uring`, no `liburing`
//! bindings), and glibc exposes no wrappers for these syscalls anyway,
//! so `io_uring_setup(2)`/`io_uring_enter(2)` go through the variadic
//! `syscall(2)` symbol and the rings are `mmap(2)`'d by hand (the same
//! raw-mapping idiom as `urlid-mapped`).
//!
//! ## Shape
//!
//! The engine implements [`super::Backend`] as a *completion* engine
//! wearing a readiness-flavoured interface, so `reactor.rs`/`conn.rs`
//! drive it through the exact same surface as epoll:
//!
//! * **accept** — one multishot `IORING_OP_ACCEPT` SQE stays armed on
//!   the listener; every completion carries an already-accepted fd,
//!   queued for [`Backend::accept`] (kernels without multishot accept
//!   downgrade to a re-armed oneshot automatically);
//! * **recv** — each connection keeps one `IORING_OP_RECV` SQE armed
//!   into an engine-owned 8 KiB staging buffer; a completion surfaces
//!   a readable [`Event`] and [`Backend::read`] copies the staging out,
//!   re-arming the next recv the moment it drains;
//! * **send** — [`Backend::write_vectored`] gathers the caller's
//!   iovecs into an engine-owned staging buffer and arms one
//!   `IORING_OP_SEND` SQE (`WouldBlock` while one is in flight — the
//!   caller's pending-output queue provides the backpressure); short
//!   sends re-arm the remainder, and a drained staging surfaces a
//!   writable [`Event`];
//! * **wake pipe** — a re-armed oneshot `IORING_OP_POLL_ADD` on the
//!   pipe's read end, surfaced under the reserved [`WAKE`] token.
//!
//! Armed SQEs accumulate in a userspace pending queue; **one**
//! `io_uring_enter` per [`Backend::wait`] submits the whole batch and
//! blocks for completions — against epoll's
//! `epoll_wait` + `read` + `writev` per request, that is the syscall
//! collapse the backend exists for. When completions are already
//! queued and nothing needs submitting, `wait` costs no syscall at
//! all.
//!
//! ## Lifetimes and teardown
//!
//! Every buffer the kernel may touch asynchronously is owned by the
//! engine, never by a connection: recv staging, send staging, queued
//! accepted fds. [`Backend::remove`] runs *before* the caller closes
//! the connection's fd — it cancels the armed recv, force-submits
//! anything still in the pending queue (in-flight operations hold
//! their own file reference, so the caller's close cannot strand a
//! submitted response), and, when staged output has not fully drained,
//! `dup`s the fd so short-send remainders can still be re-armed: a
//! `Connection: close` response is delivered in full even though the
//! state machine moved on the moment its bytes were staged. Slots with
//! operations still in flight linger in the table until their
//! completions arrive; on engine drop whatever remains is cancelled
//! and drained with a bounded wait (leaking, not freeing, any buffer
//! the kernel could still write — that path is unreachable in
//! practice but must never become a use-after-free).

use super::{last_os_error, Backend, Event, Interest, LISTENER, WAKE};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::{FromRawFd, RawFd};
use std::os::raw::{c_int, c_long, c_void};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

// -------------------------------------------------------------------
// Raw ABI: syscalls, ring structs, constants
// -------------------------------------------------------------------

extern "C" {
    fn syscall(num: c_long, ...) -> c_long;
    fn mmap(
        addr: *mut c_void,
        length: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, length: usize) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
    fn close(fd: c_int) -> c_int;
}

// Stable across every 64-bit Linux ABI (asm-generic numbers).
const SYS_IO_URING_SETUP: c_long = 425;
const SYS_IO_URING_ENTER: c_long = 426;

const PROT_READ: c_int = 0x1;
const PROT_WRITE: c_int = 0x2;
const MAP_SHARED: c_int = 0x01;
const MAP_POPULATE: c_int = 0x8000;

const F_DUPFD_CLOEXEC: c_int = 1030;

/// `struct io_sqring_offsets`.
#[repr(C)]
#[derive(Clone, Copy, Default)]
struct SqringOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    flags: u32,
    dropped: u32,
    array: u32,
    resv1: u32,
    user_addr: u64,
}

/// `struct io_cqring_offsets`.
#[repr(C)]
#[derive(Clone, Copy, Default)]
struct CqringOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    overflow: u32,
    cqes: u32,
    flags: u32,
    resv1: u32,
    user_addr: u64,
}

/// `struct io_uring_params`.
#[repr(C)]
#[derive(Clone, Copy, Default)]
struct UringParams {
    sq_entries: u32,
    cq_entries: u32,
    flags: u32,
    sq_thread_cpu: u32,
    sq_thread_idle: u32,
    features: u32,
    wq_fd: u32,
    resv: [u32; 3],
    sq_off: SqringOffsets,
    cq_off: CqringOffsets,
}

/// `struct io_uring_sqe` (the 64-byte layout; unions flattened to the
/// fields this engine uses).
#[repr(C)]
#[derive(Clone, Copy)]
struct Sqe {
    opcode: u8,
    flags: u8,
    ioprio: u16,
    fd: i32,
    off: u64,
    addr: u64,
    len: u32,
    /// The per-op flags union: `msg_flags` / `accept_flags` /
    /// `poll32_events` / `cancel_flags`.
    op_flags: u32,
    user_data: u64,
    buf_index: u16,
    personality: u16,
    splice_fd_in: i32,
    addr3: u64,
    pad2: u64,
}

impl Sqe {
    const ZERO: Sqe = Sqe {
        opcode: 0,
        flags: 0,
        ioprio: 0,
        fd: -1,
        off: 0,
        addr: 0,
        len: 0,
        op_flags: 0,
        user_data: 0,
        buf_index: 0,
        personality: 0,
        splice_fd_in: 0,
        addr3: 0,
        pad2: 0,
    };
}

/// `struct io_uring_cqe`.
#[repr(C)]
#[derive(Clone, Copy)]
struct Cqe {
    user_data: u64,
    res: i32,
    flags: u32,
}

/// `struct io_uring_getevents_arg` (`IORING_ENTER_EXT_ARG`).
#[repr(C)]
struct GeteventsArg {
    sigmask: u64,
    sigmask_sz: u32,
    pad: u32,
    ts: u64,
}

/// `struct __kernel_timespec`.
#[repr(C)]
struct KernelTimespec {
    tv_sec: i64,
    tv_nsec: i64,
}

const _: () = assert!(std::mem::size_of::<Sqe>() == 64);
const _: () = assert!(std::mem::size_of::<Cqe>() == 16);
const _: () = assert!(std::mem::size_of::<UringParams>() == 120);
const _: () = assert!(std::mem::size_of::<GeteventsArg>() == 24);

const IORING_OFF_SQ_RING: i64 = 0;
const IORING_OFF_SQES: i64 = 0x1000_0000;

const IORING_SETUP_CQSIZE: u32 = 1 << 3;

const IORING_ENTER_GETEVENTS: u32 = 1 << 0;
const IORING_ENTER_EXT_ARG: u32 = 1 << 3;

const IORING_FEAT_SINGLE_MMAP: u32 = 1 << 0;
const IORING_FEAT_NODROP: u32 = 1 << 1;
const IORING_FEAT_SUBMIT_STABLE: u32 = 1 << 2;
const IORING_FEAT_FAST_POLL: u32 = 1 << 5;
const IORING_FEAT_EXT_ARG: u32 = 1 << 8;

/// Everything the engine's design assumes: one ring mmap, lossless
/// completions, submission-stable payloads, internal poll-retry for
/// non-blocking sockets, and `io_uring_enter` timeouts. All present
/// since kernel 5.11.
const REQUIRED_FEATURES: u32 = IORING_FEAT_SINGLE_MMAP
    | IORING_FEAT_NODROP
    | IORING_FEAT_SUBMIT_STABLE
    | IORING_FEAT_FAST_POLL
    | IORING_FEAT_EXT_ARG;

const IORING_OP_POLL_ADD: u8 = 6;
const IORING_OP_ACCEPT: u8 = 13;
const IORING_OP_ASYNC_CANCEL: u8 = 14;
const IORING_OP_SEND: u8 = 26;
const IORING_OP_RECV: u8 = 27;

/// Multishot accept request (in `sqe.ioprio`; kernel ≥ 5.19 — older
/// kernels answer `-EINVAL` and the engine downgrades to oneshot).
const IORING_ACCEPT_MULTISHOT: u16 = 1 << 0;
/// The multishot operation stays armed after this completion.
const IORING_CQE_F_MORE: u32 = 1 << 1;

const POLLIN: u32 = 0x1;
const MSG_NOSIGNAL: u32 = 0x4000;
const SOCK_CLOEXEC_FLAG: u32 = 0o2000000;

const EAGAIN: i32 = 11;
const EINTR: i32 = 4;
const EINVAL: i32 = 22;
const ETIME: i32 = 62;
const EBUSY: i32 = 16;
const ECANCELED: i32 = 125;
const ENOSYS: i32 = 38;
const EPERM: i32 = 1;

// -------------------------------------------------------------------
// user_data encoding
// -------------------------------------------------------------------
//
// The high 3 bits carry the operation kind; the low 61 bits carry the
// connection's generation-tagged slab token (`gen << 32 | idx`,
// truncated to 61 bits — the slot table is keyed by the truncated
// token and stores the full one, so a generation would have to wrap
// 2^29 reuses *within the lifetime of one in-flight operation* to
// alias, which is not a real schedule).

const KIND_SHIFT: u32 = 61;
const TOKEN_MASK: u64 = (1 << KIND_SHIFT) - 1;

const KIND_RECV: u64 = 0;
const KIND_SEND: u64 = 1;
const KIND_ACCEPT: u64 = 2;
const KIND_WAKE: u64 = 3;
const KIND_CANCEL: u64 = 4;

fn user_data(kind: u64, key: u64) -> u64 {
    (kind << KIND_SHIFT) | (key & TOKEN_MASK)
}

// -------------------------------------------------------------------
// Capability probe
// -------------------------------------------------------------------

/// Can this process drive the uring engine right now? `Err` carries
/// the human-readable reason (`URLID_NO_URING`, ENOSYS on an old
/// kernel, EPERM from seccomp/`io_uring_disabled`, missing features),
/// which `--io auto` logs when it falls back to epoll.
pub fn probe() -> Result<(), String> {
    if std::env::var_os("URLID_NO_URING").is_some() {
        return Err("disabled by URLID_NO_URING".to_string());
    }
    // A full engine construction (setup + feature check + both ring
    // mmaps), immediately torn down: anything a sandbox denies —
    // the syscall itself or the ring mappings — fails here, not on
    // the serving path.
    match UringEngine::new(8) {
        Ok(engine) => {
            drop(engine);
            Ok(())
        }
        Err(e) => Err(match e.raw_os_error() {
            Some(ENOSYS) => "kernel has no io_uring (ENOSYS)".to_string(),
            Some(EPERM) => "io_uring denied (EPERM: seccomp or io_uring_disabled)".to_string(),
            _ => format!("io_uring unavailable: {e}"),
        }),
    }
}

/// `probe().is_ok()`, for tests and call sites that only branch.
pub fn supported() -> bool {
    probe().is_ok()
}

// -------------------------------------------------------------------
// Per-connection slot state
// -------------------------------------------------------------------

/// Staging size of one recv SQE — matches the connection state
/// machine's read chunk, so a full staging drains in one copy.
const RECV_BUF_LEN: usize = 8192;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecvState {
    /// No SQE armed, nothing staged (transient, or post-cancel).
    Idle,
    /// A recv SQE is in flight.
    Armed,
    /// Completed bytes wait in the staging buffer.
    Staged,
    /// The peer half-closed (recv returned 0).
    Eof,
    /// The recv failed with this errno; surfaced on the next `read`.
    Failed(i32),
}

struct Slot {
    /// The full (untruncated) registration token, surfaced in events.
    token: u64,
    /// The fd operations are submitted against. After a linger-`dup`
    /// this is the engine's own duplicate (`owns_fd`), outliving the
    /// caller's close until staged output drains.
    fd: RawFd,
    owns_fd: bool,
    recv_buf: Box<[u8; RECV_BUF_LEN]>,
    recv_len: usize,
    recv_pos: usize,
    recv: RecvState,
    /// Gathered output the kernel is sending from; stable until the
    /// send completes (nothing appends while a send is armed).
    send_buf: Vec<u8>,
    send_pos: usize,
    send_armed: bool,
    send_err: Option<i32>,
    /// Removed by the caller; reclaim once in-flight operations drain.
    closing: bool,
}

impl Slot {
    fn new(token: u64, fd: RawFd) -> Slot {
        Slot {
            token,
            fd,
            owns_fd: false,
            recv_buf: Box::new([0u8; RECV_BUF_LEN]),
            recv_len: 0,
            recv_pos: 0,
            recv: RecvState::Idle,
            send_buf: Vec::new(),
            send_pos: 0,
            send_armed: false,
            send_err: None,
            closing: false,
        }
    }

    /// No operation of this slot's is in the kernel.
    fn quiescent(&self) -> bool {
        self.recv != RecvState::Armed && !self.send_armed
    }
}

// -------------------------------------------------------------------
// The engine
// -------------------------------------------------------------------

/// The io_uring completion engine (see module docs). One per reactor;
/// single-threaded by construction — `Send` so the reactor thread can
/// own it, never `Sync`.
pub struct UringEngine {
    ring_fd: RawFd,
    /// The shared SQ+CQ ring mapping (`IORING_FEAT_SINGLE_MMAP`).
    ring_ptr: *mut c_void,
    ring_len: usize,
    /// The SQE array mapping.
    sqes_ptr: *mut c_void,
    sqes_len: usize,

    sq_head: *const AtomicU32,
    sq_tail: *const AtomicU32,
    sq_mask: u32,
    sq_entries: u32,
    sq_array: *mut u32,
    sqes: *mut Sqe,
    /// SQEs written to the ring since the last `io_uring_enter`.
    to_submit: u32,

    cq_head: *const AtomicU32,
    cq_tail: *const AtomicU32,
    cq_mask: u32,
    cqes: *const Cqe,

    /// SQEs staged in userspace until the next submit — the batch one
    /// `io_uring_enter` flushes.
    pending: VecDeque<Sqe>,
    /// Operations in the kernel that still owe a terminal CQE.
    in_flight: u64,

    /// Connection slots keyed by truncated token (see user_data docs).
    slots: HashMap<u64, Slot>,
    /// Events discovered outside a harvest (staged leftovers), drained
    /// first by the next `wait`.
    backlog: Vec<Event>,

    accept_fd: RawFd,
    accept_registered: bool,
    accept_armed: bool,
    accept_multishot: bool,
    accept_error: Option<i32>,
    /// Accepted-and-not-yet-adopted connection fds out of accept CQEs.
    accepted: VecDeque<RawFd>,

    wake_fd: RawFd,
    wake_registered: bool,
    wake_armed: bool,
}

// The raw ring pointers pin this to one thread at a time, which is
// exactly how the reactor uses it (moved into the reactor thread,
// never shared).
unsafe impl Send for UringEngine {}

impl UringEngine {
    /// Set up a ring of `entries` SQEs (CQ sized at 4096 so a full
    /// connection slab's completions can never overflow it) and mmap
    /// both rings.
    pub fn new(entries: u32) -> io::Result<UringEngine> {
        let mut params = UringParams {
            flags: IORING_SETUP_CQSIZE,
            cq_entries: 4096,
            ..Default::default()
        };
        let ring_fd = unsafe {
            syscall(
                SYS_IO_URING_SETUP,
                entries as usize,
                (&mut params as *mut UringParams) as usize,
            )
        };
        if ring_fd < 0 {
            return Err(last_os_error());
        }
        let ring_fd = ring_fd as RawFd;
        if params.features & REQUIRED_FEATURES != REQUIRED_FEATURES {
            unsafe { close(ring_fd) };
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!(
                    "kernel io_uring too old (features {:#x}, need {:#x})",
                    params.features, REQUIRED_FEATURES
                ),
            ));
        }
        let sq_len = params.sq_off.array as usize + params.sq_entries as usize * 4;
        let cq_len = params.cq_off.cqes as usize + params.cq_entries as usize * 16;
        let ring_len = sq_len.max(cq_len);
        let map = |len: usize, offset: i64| -> io::Result<*mut c_void> {
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE,
                    ring_fd,
                    offset,
                )
            };
            if ptr as isize == -1 {
                Err(last_os_error())
            } else {
                Ok(ptr)
            }
        };
        let ring_ptr = match map(ring_len, IORING_OFF_SQ_RING) {
            Ok(p) => p,
            Err(e) => {
                unsafe { close(ring_fd) };
                return Err(e);
            }
        };
        let sqes_len = params.sq_entries as usize * std::mem::size_of::<Sqe>();
        let sqes_ptr = match map(sqes_len, IORING_OFF_SQES) {
            Ok(p) => p,
            Err(e) => {
                unsafe {
                    munmap(ring_ptr, ring_len);
                    close(ring_fd);
                }
                return Err(e);
            }
        };
        let at = |off: u32| unsafe { ring_ptr.cast::<u8>().add(off as usize) };
        let engine = UringEngine {
            ring_fd,
            ring_ptr,
            ring_len,
            sqes_ptr,
            sqes_len,
            sq_head: at(params.sq_off.head).cast::<AtomicU32>(),
            sq_tail: at(params.sq_off.tail).cast::<AtomicU32>(),
            sq_mask: unsafe { *at(params.sq_off.ring_mask).cast::<u32>() },
            sq_entries: params.sq_entries,
            sq_array: at(params.sq_off.array).cast::<u32>(),
            sqes: sqes_ptr.cast::<Sqe>(),
            to_submit: 0,
            cq_head: at(params.cq_off.head).cast::<AtomicU32>(),
            cq_tail: at(params.cq_off.tail).cast::<AtomicU32>(),
            cq_mask: unsafe { *at(params.cq_off.ring_mask).cast::<u32>() },
            cqes: at(params.cq_off.cqes).cast::<Cqe>(),
            pending: VecDeque::new(),
            in_flight: 0,
            slots: HashMap::new(),
            backlog: Vec::new(),
            accept_fd: -1,
            accept_registered: false,
            accept_armed: false,
            accept_multishot: true,
            accept_error: None,
            accepted: VecDeque::new(),
            wake_fd: -1,
            wake_registered: false,
            wake_armed: false,
        };
        // The indirection array never changes: slot i holds SQE i.
        for i in 0..engine.sq_entries {
            unsafe { *engine.sq_array.add(i as usize) = i };
        }
        Ok(engine)
    }

    // --- submission ------------------------------------------------

    /// Stage an SQE for the next submit and account its future CQE.
    fn push(&mut self, sqe: Sqe) {
        self.in_flight += 1;
        self.pending.push_back(sqe);
    }

    /// Move staged SQEs into the ring while there is space.
    fn fill_ring(&mut self) {
        let head = unsafe { (*self.sq_head).load(Ordering::Acquire) };
        let mut tail = unsafe { (*self.sq_tail).load(Ordering::Relaxed) };
        while tail.wrapping_sub(head) < self.sq_entries {
            let Some(sqe) = self.pending.pop_front() else {
                break;
            };
            let idx = (tail & self.sq_mask) as usize;
            unsafe { *self.sqes.add(idx) = sqe };
            tail = tail.wrapping_add(1);
            self.to_submit += 1;
        }
        unsafe { (*self.sq_tail).store(tail, Ordering::Release) };
    }

    /// `io_uring_enter`, optionally blocking for completions.
    fn enter(&mut self, min_complete: u32, timeout: Option<Duration>) -> io::Result<()> {
        let to_submit = self.to_submit;
        let mut flags = 0u32;
        if min_complete > 0 {
            flags |= IORING_ENTER_GETEVENTS;
        }
        let ts;
        let arg;
        let (arg_ptr, arg_sz) = match timeout {
            Some(d) if min_complete > 0 => {
                flags |= IORING_ENTER_EXT_ARG;
                ts = KernelTimespec {
                    tv_sec: d.as_secs() as i64,
                    tv_nsec: d.subsec_nanos() as i64,
                };
                arg = GeteventsArg {
                    sigmask: 0,
                    sigmask_sz: 0,
                    pad: 0,
                    ts: (&ts as *const KernelTimespec) as u64,
                };
                (
                    (&arg as *const GeteventsArg) as usize,
                    std::mem::size_of::<GeteventsArg>(),
                )
            }
            _ => (0usize, 0usize),
        };
        let rc = unsafe {
            syscall(
                SYS_IO_URING_ENTER,
                self.ring_fd as usize,
                to_submit as usize,
                min_complete as usize,
                flags as usize,
                arg_ptr,
                arg_sz,
            )
        };
        if rc < 0 {
            let err = last_os_error();
            return match err.raw_os_error() {
                // Interrupted or timed out: nothing submitted was
                // lost? EINTR can interrupt before consuming the SQ —
                // keep `to_submit` so the next enter retries it.
                Some(EINTR) | Some(ETIME) => Ok(()),
                // CQ saturated (NODROP backlog): harvest, then retry.
                Some(EBUSY) => Ok(()),
                _ => Err(err),
            };
        }
        self.to_submit -= (rc as u32).min(self.to_submit);
        Ok(())
    }

    /// Flush every staged SQE into the kernel *now* — the teardown
    /// path: in-flight operations take their file reference at
    /// submission, so anything submitted here survives the caller
    /// closing the fd right after.
    fn submit_now(&mut self) {
        loop {
            self.fill_ring();
            if self.to_submit == 0 && self.pending.is_empty() {
                return;
            }
            if self.enter(0, None).is_err() {
                // Unsubmittable (ring dead): drop the batch rather
                // than spin; the accounting unwinds via never-arriving
                // CQEs only at engine drop, which leaks those buffers
                // deliberately instead of freeing them under the
                // kernel.
                return;
            }
            if self.to_submit > 0 {
                // The kernel consumed nothing (should not happen
                // without SQPOLL) — avoid a hot loop.
                return;
            }
        }
    }

    // --- op arming -------------------------------------------------

    fn arm_recv(&mut self, key: u64) {
        let slot = self.slots.get_mut(&key).expect("arming recv on live slot");
        debug_assert!(slot.recv != RecvState::Armed);
        slot.recv = RecvState::Armed;
        let sqe = Sqe {
            opcode: IORING_OP_RECV,
            fd: slot.fd,
            addr: slot.recv_buf.as_ptr() as u64,
            len: RECV_BUF_LEN as u32,
            user_data: user_data(KIND_RECV, key),
            ..Sqe::ZERO
        };
        self.push(sqe);
    }

    fn arm_send(&mut self, key: u64) {
        let slot = self.slots.get_mut(&key).expect("arming send on live slot");
        debug_assert!(slot.send_armed);
        let sqe = Sqe {
            opcode: IORING_OP_SEND,
            fd: slot.fd,
            addr: unsafe { slot.send_buf.as_ptr().add(slot.send_pos) } as u64,
            len: (slot.send_buf.len() - slot.send_pos) as u32,
            op_flags: MSG_NOSIGNAL,
            user_data: user_data(KIND_SEND, key),
            ..Sqe::ZERO
        };
        self.push(sqe);
    }

    fn arm_accept(&mut self) {
        debug_assert!(!self.accept_armed);
        self.accept_armed = true;
        let sqe = Sqe {
            opcode: IORING_OP_ACCEPT,
            fd: self.accept_fd,
            ioprio: if self.accept_multishot {
                IORING_ACCEPT_MULTISHOT
            } else {
                0
            },
            op_flags: SOCK_CLOEXEC_FLAG,
            user_data: user_data(KIND_ACCEPT, 0),
            ..Sqe::ZERO
        };
        self.push(sqe);
    }

    fn arm_wake(&mut self) {
        debug_assert!(!self.wake_armed);
        self.wake_armed = true;
        let sqe = Sqe {
            opcode: IORING_OP_POLL_ADD,
            fd: self.wake_fd,
            op_flags: POLLIN,
            user_data: user_data(KIND_WAKE, 0),
            ..Sqe::ZERO
        };
        self.push(sqe);
    }

    fn push_cancel(&mut self, target: u64) {
        let sqe = Sqe {
            opcode: IORING_OP_ASYNC_CANCEL,
            fd: -1,
            addr: target,
            user_data: user_data(KIND_CANCEL, 0),
            ..Sqe::ZERO
        };
        self.push(sqe);
    }

    /// Re-arm the standing listener/wake operations that completed (or
    /// downgraded) since the last batch.
    fn rearm_standing(&mut self) {
        if self.accept_registered && !self.accept_armed && self.accept_error.is_none() {
            self.arm_accept();
        }
        if self.wake_registered && !self.wake_armed {
            self.arm_wake();
        }
    }

    // --- completion harvest ----------------------------------------

    fn cq_ready(&self) -> bool {
        let head = unsafe { (*self.cq_head).load(Ordering::Relaxed) };
        let tail = unsafe { (*self.cq_tail).load(Ordering::Acquire) };
        head != tail
    }

    /// Drain the completion queue, translating CQEs into events.
    fn harvest(&mut self, events: &mut Vec<Event>) {
        loop {
            let head = unsafe { (*self.cq_head).load(Ordering::Relaxed) };
            let tail = unsafe { (*self.cq_tail).load(Ordering::Acquire) };
            if head == tail {
                return;
            }
            let mut h = head;
            while h != tail {
                let cqe = unsafe { *self.cqes.add((h & self.cq_mask) as usize) };
                h = h.wrapping_add(1);
                // Publish consumption before processing: processing
                // may push + submit, and a full CQ must see the space.
                unsafe { (*self.cq_head).store(h, Ordering::Release) };
                self.complete(cqe, events);
            }
        }
    }

    fn complete(&mut self, cqe: Cqe, events: &mut Vec<Event>) {
        let kind = cqe.user_data >> KIND_SHIFT;
        let key = cqe.user_data & TOKEN_MASK;
        let more = cqe.flags & IORING_CQE_F_MORE != 0;
        if !more {
            self.in_flight = self.in_flight.saturating_sub(1);
        }
        match kind {
            KIND_RECV => self.complete_recv(key, cqe.res, events),
            KIND_SEND => self.complete_send(key, cqe.res, events),
            KIND_ACCEPT => self.complete_accept(cqe.res, more, events),
            KIND_WAKE => {
                self.wake_armed = false;
                if cqe.res >= 0 {
                    events.push(Event {
                        token: WAKE,
                        readable: true,
                        writable: false,
                    });
                }
            }
            _ => {} // cancel results (ENOENT/EALREADY/0) carry no state
        }
    }

    fn complete_recv(&mut self, key: u64, res: i32, events: &mut Vec<Event>) {
        let Some(slot) = self.slots.get_mut(&key) else {
            return;
        };
        if slot.closing {
            // Cancelled (or raced its cancel with real bytes): either
            // way the connection is gone — discard and reclaim.
            slot.recv = RecvState::Idle;
            self.reclaim_if_done(key);
            return;
        }
        let token = slot.token;
        match res {
            0 => slot.recv = RecvState::Eof,
            n if n > 0 => {
                slot.recv = RecvState::Staged;
                slot.recv_len = n as usize;
                slot.recv_pos = 0;
            }
            e if -e == EAGAIN || -e == EINTR => {
                // Transient: re-arm without surfacing an event.
                slot.recv = RecvState::Idle;
                self.arm_recv(key);
                return;
            }
            e => slot.recv = RecvState::Failed(-e),
        }
        events.push(Event {
            token,
            readable: true,
            writable: false,
        });
    }

    fn complete_send(&mut self, key: u64, res: i32, events: &mut Vec<Event>) {
        let Some(slot) = self.slots.get_mut(&key) else {
            return;
        };
        slot.send_armed = false;
        match res {
            n if n >= 0 => {
                slot.send_pos += n as usize;
                if slot.send_pos < slot.send_buf.len() && slot.send_err.is_none() {
                    // Short send: re-arm the remainder (on the linger
                    // dup when the connection already closed — this is
                    // how a parting response's tail still drains).
                    slot.send_armed = true;
                    self.arm_send(key);
                    return;
                }
                slot.send_buf.clear();
                slot.send_pos = 0;
            }
            e if -e == EAGAIN || -e == EINTR => {
                slot.send_armed = true;
                self.arm_send(key);
                return;
            }
            e => slot.send_err = Some(-e),
        }
        if slot.closing {
            self.reclaim_if_done(key);
            return;
        }
        let token = slot.token;
        events.push(Event {
            token,
            readable: false,
            writable: true,
        });
    }

    fn complete_accept(&mut self, res: i32, more: bool, events: &mut Vec<Event>) {
        if !more {
            self.accept_armed = false;
        }
        if res >= 0 {
            self.accepted.push_back(res as RawFd);
        } else if -res == EINVAL && self.accept_multishot {
            // Kernel predates multishot accept: downgrade and re-arm
            // as a oneshot (rearm_standing picks it up this batch).
            self.accept_multishot = false;
        } else if -res == ECANCELED {
            // Listener deregistered (drain / EMFILE pause).
        } else if -res == EAGAIN || -res == EINTR {
            // Transient; rearm_standing re-arms.
        } else {
            self.accept_error = Some(-res);
        }
        if !self.accepted.is_empty() || self.accept_error.is_some() {
            events.push(Event {
                token: LISTENER,
                readable: true,
                writable: false,
            });
        }
    }

    /// Drop a closing slot once its kernel operations have drained.
    fn reclaim_if_done(&mut self, key: u64) {
        let Some(slot) = self.slots.get(&key) else {
            return;
        };
        if !(slot.closing && slot.quiescent()) {
            return;
        }
        let slot = self.slots.remove(&key).expect("checked");
        if slot.owns_fd {
            unsafe { close(slot.fd) };
        }
    }
}

impl Backend for UringEngine {
    fn name(&self) -> &'static str {
        "uring"
    }

    fn add(&mut self, fd: RawFd, token: u64, _interest: Interest) -> io::Result<()> {
        match token {
            LISTENER => {
                self.accept_fd = fd;
                self.accept_registered = true;
                self.accept_error = None;
                if !self.accept_armed {
                    self.arm_accept();
                }
            }
            WAKE => {
                self.wake_fd = fd;
                self.wake_registered = true;
                if !self.wake_armed {
                    self.arm_wake();
                }
            }
            token => {
                let key = token & TOKEN_MASK;
                debug_assert!(
                    !self.slots.contains_key(&key),
                    "token collision on the uring slot table"
                );
                self.slots.insert(key, Slot::new(token, fd));
                self.arm_recv(key);
            }
        }
        Ok(())
    }

    fn modify(&mut self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
        // Completion engines have no interest sets: reads re-arm on
        // staging drain and stop on EOF; writes are armed by
        // `write_vectored` and complete on their own.
        Ok(())
    }

    fn remove(&mut self, fd: RawFd, token: u64) -> io::Result<()> {
        match token {
            LISTENER => {
                self.accept_registered = false;
                self.accept_error = None;
                if self.accept_armed {
                    self.push_cancel(user_data(KIND_ACCEPT, 0));
                }
                // Accepted-but-unadopted fds die with the listener
                // registration (drain path; the EMFILE pause only
                // removes after the queue ran dry).
                while let Some(conn_fd) = self.accepted.pop_front() {
                    unsafe { close(conn_fd) };
                }
                self.submit_now();
            }
            WAKE => {
                self.wake_registered = false;
                if self.wake_armed {
                    self.push_cancel(user_data(KIND_WAKE, 0));
                }
                self.submit_now();
            }
            token => {
                let key = token & TOKEN_MASK;
                let Some(slot) = self.slots.get_mut(&key) else {
                    return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
                };
                slot.closing = true;
                let send_pending = slot.send_err.is_none()
                    && (slot.send_armed || slot.send_pos < slot.send_buf.len());
                if send_pending {
                    // The caller closes `fd` right after this returns,
                    // but staged output may still need re-arming on a
                    // short send: duplicate the fd so the remainder
                    // has something to submit against.
                    let dup = unsafe { fcntl(fd, F_DUPFD_CLOEXEC, 0) };
                    if dup >= 0 {
                        slot.fd = dup;
                        slot.owns_fd = true;
                    } else {
                        // Out of fds: the in-flight send still drains
                        // (it holds its own file reference) but a
                        // short-send remainder cannot be re-armed.
                        slot.send_err = Some(EAGAIN);
                    }
                }
                if slot.recv == RecvState::Armed {
                    self.push_cancel(user_data(KIND_RECV, key));
                }
                // Everything staged — including this connection's
                // final send — must reach the kernel before the caller
                // closes the original fd.
                self.submit_now();
                self.reclaim_if_done(key);
            }
        }
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        self.rearm_standing();
        events.append(&mut self.backlog);
        self.fill_ring();
        let have_work = !events.is_empty() || self.cq_ready();
        if have_work {
            // Completions (or carried-over events) are already here:
            // submit without blocking — often no syscall at all.
            if self.to_submit > 0 {
                self.enter(0, None)?;
            }
        } else {
            self.enter(1, timeout)?;
        }
        self.harvest(events);
        // A ring too small for one round of re-arms would deadlock on
        // quiet connections; drain the overflow eagerly instead.
        while !self.pending.is_empty() {
            self.fill_ring();
            self.enter(0, None)?;
        }
        Ok(())
    }

    fn accept(&mut self, _listener: &TcpListener) -> io::Result<TcpStream> {
        if let Some(fd) = self.accepted.pop_front() {
            // Multishot accept honoured SOCK_CLOEXEC; the stream is a
            // normal blocking socket the connection layer will flip to
            // non-blocking itself.
            return Ok(unsafe { TcpStream::from_raw_fd(fd) });
        }
        if let Some(errno) = self.accept_error.take() {
            return Err(io::Error::from_raw_os_error(errno));
        }
        Err(io::ErrorKind::WouldBlock.into())
    }

    fn read(&mut self, token: u64, _stream: &TcpStream, buf: &mut [u8]) -> io::Result<usize> {
        let key = token & TOKEN_MASK;
        let Some(slot) = self.slots.get_mut(&key) else {
            return Err(io::ErrorKind::WouldBlock.into());
        };
        match slot.recv {
            RecvState::Staged => {
                let staged = &slot.recv_buf[slot.recv_pos..slot.recv_len];
                let n = staged.len().min(buf.len());
                buf[..n].copy_from_slice(&staged[..n]);
                slot.recv_pos += n;
                if slot.recv_pos == slot.recv_len {
                    // Staging drained: re-arm *now*, not on the next
                    // WouldBlock — the caller stops reading after a
                    // short read and there would be no next call.
                    slot.recv = RecvState::Idle;
                    self.arm_recv(key);
                }
                Ok(n)
            }
            RecvState::Eof => Ok(0),
            RecvState::Failed(errno) => Err(io::Error::from_raw_os_error(errno)),
            RecvState::Armed => Err(io::ErrorKind::WouldBlock.into()),
            RecvState::Idle => {
                self.arm_recv(key);
                Err(io::ErrorKind::WouldBlock.into())
            }
        }
    }

    fn write_vectored(
        &mut self,
        token: u64,
        _stream: &TcpStream,
        bufs: &[io::IoSlice<'_>],
    ) -> io::Result<usize> {
        let key = token & TOKEN_MASK;
        let Some(slot) = self.slots.get_mut(&key) else {
            return Err(io::ErrorKind::WouldBlock.into());
        };
        if let Some(errno) = slot.send_err {
            return Err(io::Error::from_raw_os_error(errno));
        }
        if slot.send_armed || slot.send_pos < slot.send_buf.len() {
            // One send in flight at a time; the caller's output queue
            // holds the rest and a writable event resumes it.
            return Err(io::ErrorKind::WouldBlock.into());
        }
        debug_assert!(slot.send_buf.is_empty());
        let mut total = 0usize;
        for slice in bufs {
            slot.send_buf.extend_from_slice(slice);
            total += slice.len();
        }
        if total == 0 {
            return Ok(0);
        }
        slot.send_armed = true;
        self.arm_send(key);
        Ok(total)
    }
}

impl Drop for UringEngine {
    fn drop(&mut self) {
        // Cancel everything still armed, then drain with a bounded
        // wait so no kernel operation outlives the buffers it writes.
        if self.accept_armed {
            self.push_cancel(user_data(KIND_ACCEPT, 0));
        }
        if self.wake_armed {
            self.push_cancel(user_data(KIND_WAKE, 0));
        }
        let keys: Vec<u64> = self.slots.keys().copied().collect();
        for key in keys {
            if self.slots[&key].recv == RecvState::Armed {
                self.push_cancel(user_data(KIND_RECV, key));
            }
        }
        self.submit_now();
        let mut discard = Vec::new();
        let deadline = Instant::now() + Duration::from_millis(250);
        while self.in_flight > 0 && Instant::now() < deadline {
            if self.enter(1, Some(Duration::from_millis(50))).is_err() {
                break;
            }
            discard.clear();
            self.harvest(&mut discard);
        }
        while let Some(fd) = self.accepted.pop_front() {
            unsafe { close(fd) };
        }
        for (_, slot) in self.slots.drain() {
            if slot.owns_fd {
                unsafe { close(slot.fd) };
            }
            if self.in_flight > 0 {
                // Something never completed (the unreachable path):
                // leak the buffers the kernel might still touch rather
                // than free them under it.
                std::mem::forget(slot.recv_buf);
                std::mem::forget(slot.send_buf);
            }
        }
        unsafe {
            munmap(self.ring_ptr, self.ring_len);
            munmap(self.sqes_ptr, self.sqes_len);
            close(self.ring_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sys::WakePipe;
    use std::io::{Read as _, Write as _};

    fn engine_or_skip() -> Option<UringEngine> {
        match probe() {
            Ok(()) => Some(UringEngine::new(64).expect("probe passed")),
            Err(reason) => {
                eprintln!("skipping uring test: {reason}");
                None
            }
        }
    }

    #[test]
    fn probe_reports_a_reason_when_disabled() {
        // Probe twice: once honestly, once forced off via the env
        // override contract. (Env mutation is process-global; this is
        // the only test that touches URLID_NO_URING.)
        let honest = probe();
        std::env::set_var("URLID_NO_URING", "1");
        let forced = probe();
        std::env::remove_var("URLID_NO_URING");
        assert!(forced.unwrap_err().contains("URLID_NO_URING"));
        if let Err(reason) = honest {
            assert!(!reason.is_empty());
        }
    }

    #[test]
    fn wake_pipe_fires_under_the_reserved_token() {
        let Some(mut engine) = engine_or_skip() else {
            return;
        };
        let (pipe, waker) = WakePipe::new().unwrap();
        engine.add(pipe.fd(), WAKE, Interest::READ).unwrap();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
            waker
        });
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            engine
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == WAKE && e.readable) {
                break;
            }
        }
        assert!(events.iter().any(|e| e.token == WAKE && e.readable));
        let _waker = handle.join().unwrap();
        pipe.drain();
    }

    #[test]
    fn accept_recv_send_round_trip() {
        let Some(mut engine) = engine_or_skip() else {
            return;
        };
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        engine
            .add(
                std::os::fd::AsRawFd::as_raw_fd(&listener),
                LISTENER,
                Interest::READ,
            )
            .unwrap();

        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"ping").unwrap();

        // Accept through the ring.
        let mut events = Vec::new();
        let mut server = None;
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.is_none() && Instant::now() < deadline {
            events.clear();
            engine
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == LISTENER) {
                server = Some(engine.accept(&listener).unwrap());
            }
        }
        let server = server.expect("accept CQE arrived");
        let token = (7u64 << 32) | 3; // arbitrary generation-tagged token
        engine
            .add(
                std::os::fd::AsRawFd::as_raw_fd(&server),
                token,
                Interest::READ,
            )
            .unwrap();

        // Recv through the ring.
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while got.len() < 4 && Instant::now() < deadline {
            events.clear();
            engine
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == token && e.readable) {
                let mut chunk = [0u8; 64];
                match engine.read(token, &server, &mut chunk) {
                    Ok(n) => got.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) => panic!("read failed: {e}"),
                }
            }
        }
        assert_eq!(&got, b"ping");

        // Send through the ring; the engine stages and completes.
        let n = engine
            .write_vectored(
                token,
                &server,
                &[io::IoSlice::new(b"po"), io::IoSlice::new(b"ng")],
            )
            .unwrap();
        assert_eq!(n, 4);
        let mut events2 = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            events2.clear();
            engine
                .wait(&mut events2, Some(Duration::from_millis(50)))
                .unwrap();
            if events2.iter().any(|e| e.token == token && e.writable) {
                break;
            }
        }
        let mut reply = [0u8; 4];
        client.read_exact(&mut reply).unwrap();
        assert_eq!(&reply, b"pong");

        // Teardown through remove (cancels the armed recv).
        engine
            .remove(std::os::fd::AsRawFd::as_raw_fd(&server), token)
            .unwrap();
        drop(server);
    }

    #[test]
    fn close_with_staged_output_still_delivers_the_tail() {
        let Some(mut engine) = engine_or_skip() else {
            return;
        };
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        let token = 1u64 << 32; // generation 1, slab index 0
        engine
            .add(
                std::os::fd::AsRawFd::as_raw_fd(&server),
                token,
                Interest::READ,
            )
            .unwrap();
        // A payload comfortably bigger than the socket buffers so the
        // send cannot complete in one shot while the client is not
        // reading yet.
        let payload = vec![0xabu8; 4 << 20];
        let n = engine
            .write_vectored(token, &server, &[io::IoSlice::new(&payload)])
            .unwrap();
        assert_eq!(n, payload.len());
        // Close the connection immediately — remove() must keep the
        // staged bytes flowing via its linger dup.
        engine
            .remove(std::os::fd::AsRawFd::as_raw_fd(&server), token)
            .unwrap();
        drop(server);
        // The engine still needs wait() turns to re-arm short-send
        // remainders; pump it from a thread while the client drains.
        let reader = std::thread::spawn(move || {
            let mut client = client;
            client
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            let mut total = 0usize;
            let mut chunk = vec![0u8; 64 << 10];
            loop {
                match client.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => {
                        assert!(chunk[..n].iter().all(|&b| b == 0xab));
                        total += n;
                    }
                    Err(e) => panic!("client read failed: {e}"),
                }
            }
            total
        });
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while !engine.slots.is_empty() && Instant::now() < deadline {
            events.clear();
            engine
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
        }
        assert!(engine.slots.is_empty(), "linger slot reclaimed");
        drop(engine); // closes the linger dup -> client sees EOF
        assert_eq!(reader.join().unwrap(), 4 << 20);
    }
}
