//! Running classifiers (or pre-computed annotations) over a test set.

use crate::confusion::ConfusionMatrix;
use crate::metrics::{BinaryCounts, BinaryMetrics, MacroMetrics};
use serde::{Deserialize, Serialize};
use urlid_classifiers::LanguageClassifierSet;
use urlid_features::Dataset;
use urlid_lexicon::{Language, ALL_LANGUAGES};

/// The complete result of evaluating five binary classifiers on one test
/// set: per-language counts/metrics plus the confusion matrix.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EvaluationResult {
    /// Name of the test set.
    pub dataset: String,
    /// Raw outcome counts per language (canonical order).
    pub counts: [BinaryCounts; 5],
    /// The confusion matrix.
    pub confusion: ConfusionMatrix,
}

impl EvaluationResult {
    /// The paper's metrics for one language.
    pub fn metrics(&self, lang: Language) -> BinaryMetrics {
        self.counts[lang.index()].metrics()
    }

    /// Metrics for all languages.
    pub fn macro_metrics(&self) -> MacroMetrics {
        let mut mm = MacroMetrics::default();
        for lang in ALL_LANGUAGES {
            mm.per_language[lang.index()] = self.metrics(lang);
        }
        mm
    }

    /// Average F-measure over the five languages.
    pub fn mean_f_measure(&self) -> f64 {
        self.macro_metrics().mean_f_measure()
    }
}

/// Evaluate a [`LanguageClassifierSet`] on a labelled test set.
///
/// Runs on the single-pass batch pipeline: one feature extraction per
/// test URL, URLs fanned out over all CPU cores.
pub fn evaluate_classifier_set(set: &LanguageClassifierSet, test: &Dataset) -> EvaluationResult {
    let urls: Vec<&str> = test.urls.iter().map(|u| u.url.as_str()).collect();
    let decisions: Vec<(Language, [bool; 5])> = test
        .urls
        .iter()
        .map(|u| u.language)
        .zip(set.classify_batch(&urls))
        .collect();
    accumulate(&test.name, decisions)
}

/// Evaluate pre-computed per-URL decisions (e.g. the simulated human
/// annotations) against the test set's labels. `annotations[i]` must
/// correspond to `test.urls[i]`.
///
/// # Panics
/// Panics if the lengths differ.
pub fn evaluate_annotations(annotations: &[[bool; 5]], test: &Dataset) -> EvaluationResult {
    assert_eq!(
        annotations.len(),
        test.urls.len(),
        "one annotation per test URL is required"
    );
    let decisions: Vec<(Language, [bool; 5])> = test
        .urls
        .iter()
        .zip(annotations)
        .map(|(u, d)| (u.language, *d))
        .collect();
    accumulate(&test.name, decisions)
}

fn accumulate(name: &str, decisions: Vec<(Language, [bool; 5])>) -> EvaluationResult {
    let mut result = EvaluationResult {
        dataset: name.to_owned(),
        ..EvaluationResult::default()
    };
    for (true_lang, decision) in decisions {
        result.confusion.record(true_lang, decision);
        for lang in ALL_LANGUAGES {
            result.counts[lang.index()].record(true_lang == lang, decision[lang.index()]);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use urlid_classifiers::CcTldClassifier;
    use urlid_features::LabeledUrl;

    fn cctld_set() -> LanguageClassifierSet {
        LanguageClassifierSet::build(|lang| Box::new(CcTldClassifier::cctld(lang)))
    }

    fn tiny_test_set() -> Dataset {
        let mut d = Dataset::new("tiny");
        d.urls
            .push(LabeledUrl::new("http://www.beispiel.de/", Language::German));
        d.urls.push(LabeledUrl::new(
            "http://www.beispiel2.de/",
            Language::German,
        ));
        d.urls
            .push(LabeledUrl::new("http://www.deutsch.com/", Language::German));
        d.urls
            .push(LabeledUrl::new("http://www.exemple.fr/", Language::French));
        d.urls.push(LabeledUrl::new(
            "http://www.example.co.uk/",
            Language::English,
        ));
        d.urls.push(LabeledUrl::new(
            "http://www.example2.com/",
            Language::English,
        ));
        d
    }

    #[test]
    fn cctld_evaluation_matches_hand_computation() {
        let result = evaluate_classifier_set(&cctld_set(), &tiny_test_set());
        // German: 2 of 3 URLs have .de -> recall 2/3, no false positives.
        let de = result.metrics(Language::German);
        assert!((de.recall - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(de.negative_success, 1.0);
        assert_eq!(de.precision, 1.0);
        // French: 1/1.
        assert_eq!(result.metrics(Language::French).recall, 1.0);
        // English: only the .co.uk URL is found -> recall 0.5.
        assert!((result.metrics(Language::English).recall - 0.5).abs() < 1e-9);
        // Confusion diagonal matches recalls.
        assert!((result.confusion.recalls()[Language::German.index()] - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(result.dataset, "tiny");
    }

    #[test]
    fn macro_metrics_average_over_languages() {
        let result = evaluate_classifier_set(&cctld_set(), &tiny_test_set());
        let mm = result.macro_metrics();
        assert!(mm.mean_f_measure() > 0.0);
        assert!(mm.mean_f_measure() <= 1.0);
        assert_eq!(result.mean_f_measure(), mm.mean_f_measure());
        // Languages with no test URLs (Spanish, Italian) drag the average
        // down because their recall is 0 — exactly like an absent class.
        assert!(mm.per_language[Language::Spanish.index()].recall == 0.0);
    }

    #[test]
    fn annotations_path_agrees_with_classifier_path() {
        let set = cctld_set();
        let test = tiny_test_set();
        let annotations: Vec<[bool; 5]> =
            test.urls.iter().map(|u| set.classify_all(&u.url)).collect();
        let a = evaluate_annotations(&annotations, &test);
        let b = evaluate_classifier_set(&set, &test);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.confusion, b.confusion);
    }

    #[test]
    #[should_panic]
    fn mismatched_annotation_length_panics() {
        let test = tiny_test_set();
        let _ = evaluate_annotations(&[[false; 5]], &test);
    }

    #[test]
    fn empty_test_set_is_harmless() {
        let result = evaluate_classifier_set(&cctld_set(), &Dataset::new("empty"));
        assert_eq!(result.mean_f_measure(), 0.0);
        assert_eq!(result.counts[0].total(), 0);
    }
}
