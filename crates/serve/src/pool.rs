//! The scoring pool: a small fixed set of CPU-bound worker threads.
//!
//! The reactors hand over fully parsed requests ([`Job`]); a worker
//! routes the request through the handlers (scoring, cache, metrics,
//! reload — all in `server.rs`), serialises the response, and pushes a
//! [`Completion`] back to the **originating reactor's** completion port
//! for it to write. (Keeping the socket writes on the reactor preserves
//! write batching: the reactor drains a whole burst of completions in
//! one scheduling quantum, where per-worker direct writes measured
//! *slower* on few-core boxes — each write immediately woke its client
//! and shredded the batch.)
//!
//! Two topologies, selected by `ServeConfig::pool`:
//!
//! * **Shared** (default): one job channel feeds every worker, any
//!   worker serves any reactor. Work-conserving — a traffic imbalance
//!   between reactors (the kernel balances *connections*, not
//!   *requests*) never strands CPU behind an idle reactor's private
//!   queue. The shared channel's mutex is the one cross-reactor lock in
//!   the system, and it sits on the *pool* side of the dispatch
//!   boundary, after the reactor has already handed the request off.
//! * **Partitioned**: each reactor owns a private job channel and a
//!   dedicated worker subset — zero cross-reactor contention anywhere,
//!   at the price of fragmenting the pool (an overloaded reactor cannot
//!   borrow a sibling's idle workers). Measured head-to-head in the
//!   README's serving-architecture section.
//!
//! A reactor is woken through its self-pipe, but the wake syscall is
//! **elided for all but the first completion of a burst**: workers
//! send-then-increment the reactor's pending counter and only wake when
//! it was zero, pairing with the reactor's swap(0)-then-drain — every
//! completion the swap observed is already visible to the drain, and an
//! increment landing after the swap sees zero and issues its own wake,
//! so nothing strands. The pool is sized to the CPU count — its threads
//! only ever run compute, never block on sockets, so there is no reason
//! to over-provision past the cores.

use crate::http::{self, Request};
use crate::server::{route, PoolTopology, RequestTrace, ServerState};
use crate::sys::Waker;
use std::io;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use urlid_telemetry::Stage;

/// A parsed request bound for the scoring pool, tagged with the
/// connection token the response must come back to.
pub(crate) struct Job {
    /// Reactor connection token (slot index + generation).
    pub token: u64,
    /// Index of the reactor that dispatched the job — selects the
    /// completion port the response goes back through, the result-cache
    /// shard set, and the `X-Urlid-Reactor` header value.
    pub reactor: usize,
    /// The reactor's result-cache shard set (`reactor % cache.sets()`,
    /// precomputed on the reactor).
    pub cache_set: usize,
    /// The parsed request.
    pub request: Request,
    /// Request id assigned at parse completion (span correlation).
    pub request_id: u64,
    /// When the reactor dispatched the job (queue-wait span start and
    /// the end-to-end latency clock).
    pub dispatched_at: Instant,
}

/// A finished response on its way back to a reactor.
pub(crate) struct Completion {
    /// The token of the connection the request came from. May be stale
    /// by the time the reactor sees it (the connection died while the
    /// request was scored) — the reactor checks the generation.
    pub token: u64,
    /// Serialised response bytes, ready for the wire.
    pub response: Vec<u8>,
    /// Whether the connection should stay open afterwards.
    pub keep_alive: bool,
    /// Request id (the write-stage span needs it on the reactor side).
    pub request_id: u64,
    /// Dispatch timestamp, echoed back so the reactor can record the
    /// end-to-end latency without any side table.
    pub dispatched_at: Instant,
    /// Whether this request counts into the latency histogram (the
    /// scoring endpoints do; `/healthz`-style bookkeeping does not —
    /// same scope the histogram had before the stage-tracing refactor).
    pub record_latency: bool,
}

/// One reactor's side of the completion hand-back: the channel the
/// response travels on plus the wake-elision pair for that reactor's
/// self-pipe.
pub(crate) struct CompletionPort {
    /// Completion channel into the reactor.
    pub completions: Sender<Completion>,
    /// The reactor's pending-completion counter (wake elision).
    pub pending: Arc<AtomicI64>,
    /// The reactor's self-pipe write end.
    pub waker: Arc<Waker>,
}

/// Handles to the running workers (join on shutdown).
pub(crate) struct ScoringPool {
    workers: Vec<JoinHandle<()>>,
}

impl ScoringPool {
    /// Spawn the pool for `ports.len()` reactors. Returns the pool and
    /// one job sender per reactor — in the shared topology they are
    /// clones of one channel, in the partitioned topology each is
    /// private. Workers exit when every sender they serve is dropped
    /// (the owning reactors exiting).
    pub(crate) fn spawn(
        topology: PoolTopology,
        threads: usize,
        state: &Arc<ServerState>,
        ports: Vec<CompletionPort>,
    ) -> io::Result<(ScoringPool, Vec<Sender<Job>>)> {
        let reactors = ports.len().max(1);
        let ports = Arc::new(ports);
        let mut workers = Vec::with_capacity(threads.max(reactors));
        let mut senders = Vec::with_capacity(reactors);
        match topology {
            PoolTopology::Shared => {
                let (job_tx, job_rx) = std::sync::mpsc::channel::<Job>();
                let job_rx: Arc<Mutex<Receiver<Job>>> = Arc::new(Mutex::new(job_rx));
                for i in 0..threads.max(1) {
                    workers.push(spawn_worker(i, &job_rx, state, &ports)?);
                }
                senders.resize_with(reactors, || job_tx.clone());
            }
            PoolTopology::Partitioned => {
                // Split the budget as evenly as it goes, never starving
                // a reactor of its last worker.
                let base = threads / reactors;
                let extra = threads % reactors;
                let mut next_worker = 0usize;
                for r in 0..reactors {
                    let count = (base + usize::from(r < extra)).max(1);
                    let (job_tx, job_rx) = std::sync::mpsc::channel::<Job>();
                    let job_rx: Arc<Mutex<Receiver<Job>>> = Arc::new(Mutex::new(job_rx));
                    for _ in 0..count {
                        workers.push(spawn_worker(next_worker, &job_rx, state, &ports)?);
                        next_worker += 1;
                    }
                    senders.push(job_tx);
                }
            }
        }
        Ok((ScoringPool { workers }, senders))
    }

    /// How many worker threads are actually running (the partitioned
    /// split can round the requested budget up to one per reactor).
    pub(crate) fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Wait for every worker to finish (call after the reactors exited,
    /// which drops the job senders and lets the workers drain out).
    pub(crate) fn join(&mut self) {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One worker thread: pull jobs, route, serialise, hand the completion
/// back to the dispatching reactor's port.
fn spawn_worker(
    index: usize,
    job_rx: &Arc<Mutex<Receiver<Job>>>,
    state: &Arc<ServerState>,
    ports: &Arc<Vec<CompletionPort>>,
) -> io::Result<JoinHandle<()>> {
    let job_rx = Arc::clone(job_rx);
    let state = Arc::clone(state);
    let ports = Arc::clone(ports);
    std::thread::Builder::new()
        .name(format!("urlid-serve-score-{index}"))
        .spawn(move || {
            // Each worker owns one extraction scratch for its whole
            // lifetime: after warm-up, scoring a cache-missed URL
            // allocates nothing.
            let mut scratch = urlid_features::ExtractScratch::new();
            loop {
                // A poisoned lock or closed channel both mean the
                // server is coming down — exit quietly, no panic
                // cascade.
                let received = match job_rx.lock() {
                    Ok(rx) => rx.recv(),
                    Err(_) => return,
                };
                let Ok(job) = received else { return };
                let metrics = state.metrics();
                let picked_up = Instant::now();
                let queue_micros = urlid_telemetry::duration_micros(
                    picked_up.saturating_duration_since(job.dispatched_at),
                );
                let mut trace = RequestTrace::new(job.request_id, 1 + (index % 7));
                trace.cache_set = job.cache_set;
                metrics.record_stage_end(
                    trace.stripe,
                    trace.request_id,
                    Stage::Queue,
                    queue_micros,
                );
                let (status, content_type, body) =
                    route(&state, &job.request, &mut scratch, &mut trace);
                let total_micros =
                    queue_micros + urlid_telemetry::duration_micros(picked_up.elapsed());
                if metrics.slow.should_log(total_micros, metrics.now_micros()) {
                    // Off the steady-state path by construction
                    // (threshold + rate limit); key=value so the
                    // line greps and splits mechanically.
                    eprintln!(
                        "slow_request request_id={} method={} path={} status={} \
                         queue_us={} cache_us={} extract_us={} score_us={} total_us={}",
                        trace.request_id,
                        job.request.method,
                        job.request.path,
                        status,
                        queue_micros,
                        trace.cache_us,
                        trace.extract_us,
                        trace.score_us,
                        total_micros,
                    );
                }
                let keep_alive = job.request.keep_alive;
                let completion = Completion {
                    token: job.token,
                    response: http::response_bytes_from_reactor(
                        status,
                        content_type,
                        &body,
                        keep_alive,
                        job.reactor as u64,
                    ),
                    keep_alive,
                    request_id: job.request_id,
                    dispatched_at: job.dispatched_at,
                    record_latency: matches!(
                        job.request.path.as_str(),
                        "/identify" | "/identify_batch"
                    ),
                };
                let Some(port) = ports.get(job.reactor) else {
                    continue; // a mis-tagged job has nowhere to go
                };
                if port.completions.send(completion).is_err() {
                    // That reactor is gone; its sibling ports may still
                    // be alive, so keep serving.
                    continue;
                }
                // Send-then-increment pairs with the reactor's
                // swap(0)-then-drain (see module docs): only the first
                // completion of a burst pays the wake syscall.
                if port.pending.fetch_add(1, Ordering::AcqRel) == 0 {
                    port.waker.wake();
                }
            }
        })
}
