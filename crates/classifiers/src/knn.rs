//! k-nearest-neighbour classifier.
//!
//! Section 3.2: "We also experimented with k-nearest neighbor classifiers.
//! However, we omitted them from these experiments as they gave
//! considerably worse results in preliminary experiments."
//!
//! The implementation is kept so that the repository can reproduce that
//! preliminary finding (see the `ablation` benches): a cosine-similarity
//! k-NN over URL feature vectors, with majority voting.

use crate::codec::{ByteReader, ByteWriter, CodecError};
use crate::model::VectorClassifier;
use serde::{Deserialize, Serialize};
use urlid_features::SparseVector;

/// Configuration for the k-NN classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnnConfig {
    /// Number of neighbours to consult.
    pub k: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        Self { k: 5 }
    }
}

/// A (lazy) k-nearest-neighbour binary classifier: training just stores
/// the normalised examples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KNearestNeighbors {
    /// Stored training examples: (L2-normalised dense-ish sparse vector, label).
    examples: Vec<(SparseVector, bool)>,
    config: KnnConfig,
}

impl KNearestNeighbors {
    /// "Train" by storing the examples.
    pub fn train(
        positives: &[SparseVector],
        negatives: &[SparseVector],
        config: KnnConfig,
    ) -> Self {
        assert!(config.k >= 1, "k must be at least 1");
        assert!(
            !positives.is_empty() && !negatives.is_empty(),
            "k-NN needs at least one example of each class"
        );
        let mut examples = Vec::with_capacity(positives.len() + negatives.len());
        for v in positives {
            examples.push((v.clone(), true));
        }
        for v in negatives {
            examples.push((v.clone(), false));
        }
        Self { examples, config }
    }

    /// Cosine similarity between two sparse vectors.
    fn cosine(a: &SparseVector, b: &SparseVector) -> f64 {
        let norm_a: f64 = a.iter().map(|(_, v)| v * v).sum::<f64>().sqrt();
        let norm_b: f64 = b.iter().map(|(_, v)| v * v).sum::<f64>().sqrt();
        if norm_a == 0.0 || norm_b == 0.0 {
            return 0.0;
        }
        // Merge-join over the sorted index lists.
        let mut dot = 0.0;
        let mut ai = a.iter().peekable();
        let mut bi = b.iter().peekable();
        while let (Some(&(ia, va)), Some(&(ib, vb))) = (ai.peek(), bi.peek()) {
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => {
                    ai.next();
                }
                std::cmp::Ordering::Greater => {
                    bi.next();
                }
                std::cmp::Ordering::Equal => {
                    dot += va * vb;
                    ai.next();
                    bi.next();
                }
            }
        }
        dot / (norm_a * norm_b)
    }

    /// Number of stored training examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Is the training set empty? (Never true for a constructed model.)
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }
}

impl VectorClassifier for KNearestNeighbors {
    fn score(&self, features: &SparseVector) -> f64 {
        if features.is_empty() {
            // A URL with no in-vocabulary features carries no information.
            return -1.0;
        }
        let mut sims: Vec<(f64, bool)> = self
            .examples
            .iter()
            .map(|(v, label)| (Self::cosine(features, v), *label))
            .collect();
        sims.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let k = self.config.k.min(sims.len());
        if k == 0 {
            return -1.0;
        }
        let pos_votes = sims[..k].iter().filter(|(_, l)| *l).count() as f64;
        // Majority vote mapped to [-1, 1]; ties are negative (conservative).
        2.0 * pos_votes / k as f64 - 1.0 - f64::EPSILON
    }
}

impl KNearestNeighbors {
    /// Append the stored examples to the `.urlm` `MODELS` codec stream
    /// (see [`crate::codec`]). Each sparse vector is written as its
    /// sorted `(index, value)` pairs, bit-exactly.
    pub fn write_binary(&self, w: &mut ByteWriter) {
        w.write_usize(self.config.k);
        w.write_usize(self.examples.len());
        for (vector, label) in &self.examples {
            w.write_bool(*label);
            w.write_usize(vector.nnz());
            for (index, value) in vector.iter() {
                w.write_u32(index);
                w.write_f64(value);
            }
        }
    }

    /// Decode a model previously written by
    /// [`KNearestNeighbors::write_binary`].
    pub fn read_binary(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let k = r.read_usize("knn.k")?;
        if k == 0 {
            return Err(CodecError::Invalid { what: "knn.k" });
        }
        let n = r.read_len("knn.examples")?;
        let mut examples = Vec::with_capacity(n);
        for _ in 0..n {
            let label = r.read_bool("knn.label")?;
            let nnz = r.read_len("knn.nnz")?;
            let mut pairs = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                pairs.push((r.read_u32("knn.index")?, r.read_f64("knn.value")?));
            }
            // `from_pairs` re-sorts and merges; for bytes we wrote
            // ourselves this is the identity, and for hostile bytes it
            // restores the sorted-unique invariant instead of trusting
            // the file.
            examples.push((SparseVector::from_pairs(pairs), label));
        }
        Ok(Self {
            examples,
            config: KnnConfig { k },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(indices: &[u32]) -> SparseVector {
        SparseVector::from_counts(indices.iter().copied())
    }

    fn toy_training() -> (Vec<SparseVector>, Vec<SparseVector>) {
        let positives = vec![vec_of(&[0, 1]), vec_of(&[0, 2]), vec_of(&[1, 2])];
        let negatives = vec![vec_of(&[3, 4]), vec_of(&[4, 5]), vec_of(&[3, 5])];
        (positives, negatives)
    }

    #[test]
    fn classifies_by_nearest_neighbours() {
        let (pos, neg) = toy_training();
        let knn = KNearestNeighbors::train(&pos, &neg, KnnConfig { k: 3 });
        assert!(knn.classify(&vec_of(&[0, 1, 2])));
        assert!(!knn.classify(&vec_of(&[3, 4, 5])));
        assert_eq!(knn.len(), 6);
        assert!(!knn.is_empty());
    }

    #[test]
    fn k_equal_one_copies_the_closest_label() {
        let (pos, neg) = toy_training();
        let knn = KNearestNeighbors::train(&pos, &neg, KnnConfig { k: 1 });
        assert!(knn.classify(&vec_of(&[0, 1])));
        assert!(!knn.classify(&vec_of(&[4, 5])));
    }

    #[test]
    fn zero_vector_is_rejected() {
        let (pos, neg) = toy_training();
        let knn = KNearestNeighbors::train(&pos, &neg, KnnConfig::default());
        assert!(!knn.classify(&SparseVector::new()));
    }

    #[test]
    fn cosine_is_scale_invariant() {
        let a = SparseVector::from_pairs(vec![(0, 1.0), (1, 2.0)]);
        let b = SparseVector::from_pairs(vec![(0, 10.0), (1, 20.0)]);
        assert!((KNearestNeighbors::cosine(&a, &b) - 1.0).abs() < 1e-12);
        let c = SparseVector::from_pairs(vec![(2, 1.0)]);
        assert_eq!(KNearestNeighbors::cosine(&a, &c), 0.0);
    }

    #[test]
    fn ties_are_resolved_negatively() {
        let pos = vec![vec_of(&[0])];
        let neg = vec![vec_of(&[1])];
        let knn = KNearestNeighbors::train(&pos, &neg, KnnConfig { k: 2 });
        // The query is equidistant; with one vote each, the tie is negative.
        assert!(!knn.classify(&vec_of(&[0, 1])));
    }

    #[test]
    #[should_panic]
    fn k_zero_panics() {
        let (pos, neg) = toy_training();
        let _ = KNearestNeighbors::train(&pos, &neg, KnnConfig { k: 0 });
    }

    #[test]
    fn serde_round_trip() {
        let (pos, neg) = toy_training();
        let knn = KNearestNeighbors::train(&pos, &neg, KnnConfig::default());
        let json = serde_json::to_string(&knn).unwrap();
        let back: KNearestNeighbors = serde_json::from_str(&json).unwrap();
        let x = vec_of(&[0, 1]);
        assert_eq!(knn.classify(&x), back.classify(&x));
    }
}
