//! "Shape" tests: the qualitative findings of the paper must hold on the
//! synthetic corpus. These are the properties DESIGN.md promises the
//! substitution preserves — who wins, in which regime, and where the
//! confusions are — not the paper's absolute numbers.

use urlid::eval::{domain_memorization_curve, evaluate_classifier_set};
use urlid::prelude::*;

fn corpus() -> PaperCorpus {
    PaperCorpus::generate(777, CorpusScale::tiny())
}

/// Table 4: the ccTLD baseline has high precision but poor recall, and the
/// recall is much worse for English/Spanish than for German/Italian.
#[test]
fn cctld_baseline_has_high_precision_low_recall() {
    let corpus = corpus();
    let set = train_classifier_set(
        &corpus.combined_training(),
        &TrainingConfig::new(FeatureSetKind::Words, Algorithm::CcTld),
    );
    let result = evaluate_classifier_set(&set, &corpus.odp.test);
    for lang in ALL_LANGUAGES {
        let m = result.metrics(lang);
        assert!(
            m.precision > 0.85,
            "{lang}: ccTLD precision {:.2}",
            m.precision
        );
    }
    let en = result.metrics(Language::English).recall;
    let ge = result.metrics(Language::German).recall;
    let it = result.metrics(Language::Italian).recall;
    let sp = result.metrics(Language::Spanish).recall;
    assert!(
        ge > 0.6 && it > 0.4,
        "German {ge:.2} / Italian {it:.2} recall should be decent"
    );
    assert!(
        en < 0.3 && sp < 0.5,
        "English {en:.2} / Spanish {sp:.2} recall should be poor"
    );
}

/// Table 5 / ccTLD+: counting .com/.org as English rescues English recall
/// but not the other languages'.
#[test]
fn cctld_plus_only_helps_english_recall() {
    let corpus = corpus();
    let training = corpus.combined_training();
    let test = &corpus.web_crawl;
    let plain = evaluate_classifier_set(
        &train_classifier_set(
            &training,
            &TrainingConfig::new(FeatureSetKind::Words, Algorithm::CcTld),
        ),
        test,
    );
    let plus = evaluate_classifier_set(
        &train_classifier_set(
            &training,
            &TrainingConfig::new(FeatureSetKind::Words, Algorithm::CcTldPlus),
        ),
        test,
    );
    assert!(
        plus.metrics(Language::English).recall > plain.metrics(Language::English).recall + 0.3,
        "ccTLD+ must lift English recall substantially"
    );
    for lang in [
        Language::German,
        Language::French,
        Language::Spanish,
        Language::Italian,
    ] {
        assert!(
            (plus.metrics(lang).recall - plain.metrics(lang).recall).abs() < 1e-9,
            "{lang}: ccTLD+ must not change non-English recall"
        );
    }
    // ...at the cost of English precision.
    assert!(plus.metrics(Language::English).precision < plain.metrics(Language::English).precision);
}

/// Section 5: the learning algorithms comfortably beat both baselines, and
/// SER is the easiest test set.
#[test]
fn learned_classifiers_beat_baselines_and_ser_is_easiest() {
    let corpus = corpus();
    let training = corpus.combined_training();
    let nb = train_classifier_set(&training, &TrainingConfig::paper_best());
    let cctld = train_classifier_set(
        &training,
        &TrainingConfig::new(FeatureSetKind::Words, Algorithm::CcTldPlus),
    );
    let mut nb_f = Vec::new();
    for (name, test) in corpus.test_sets() {
        let nb_result = evaluate_classifier_set(&nb, test);
        let cctld_result = evaluate_classifier_set(&cctld, test);
        assert!(
            nb_result.mean_f_measure() > cctld_result.mean_f_measure(),
            "{name}: NB {:.3} vs ccTLD+ {:.3}",
            nb_result.mean_f_measure(),
            cctld_result.mean_f_measure()
        );
        nb_f.push((name, nb_result.mean_f_measure()));
    }
    let ser = nb_f.iter().find(|(n, _)| *n == "SER").unwrap().1;
    let odp = nb_f.iter().find(|(n, _)| *n == "ODP").unwrap().1;
    assert!(
        ser >= odp,
        "SER ({ser:.3}) should be at least as easy as ODP ({odp:.3})"
    );
}

/// Table 6 / Table 3: the dominant confusion is "non-English URL labelled
/// English", for machines and humans alike.
#[test]
fn dominant_confusion_is_with_english() {
    let corpus = corpus();
    let training = corpus.combined_training();
    let nb = train_classifier_set(&training, &TrainingConfig::paper_best());
    let result = evaluate_classifier_set(&nb, &corpus.web_crawl);
    for lang in [Language::German, Language::French, Language::Spanish] {
        let with_english = result.confusion.confusion_with_english(lang);
        let mut max_other: f64 = 0.0;
        for other in ALL_LANGUAGES {
            if other != lang && other != Language::English {
                max_other = max_other.max(result.confusion.percentage(lang, other) / 100.0);
            }
        }
        assert!(
            with_english >= max_other,
            "{lang}: confusion with English ({with_english:.2}) should dominate ({max_other:.2})"
        );
    }
}

/// Section 6 / Figure 2: with very little training data trigram features
/// are at least as good as word features; with the full training set word
/// features win (or tie).
#[test]
fn trigrams_win_low_data_words_win_high_data() {
    let corpus = PaperCorpus::generate(4242, CorpusScale::small());
    let training = corpus.combined_training();
    let test = &corpus.odp.test;
    let f_of = |feature_set: FeatureSetKind, fraction: f64| {
        let reduced = training.take_fraction(fraction);
        let set = train_classifier_set(
            &reduced,
            &TrainingConfig::new(feature_set, Algorithm::NaiveBayes),
        );
        evaluate_classifier_set(&set, test).mean_f_measure()
    };
    let words_low = f_of(FeatureSetKind::Words, 0.01);
    let tri_low = f_of(FeatureSetKind::Trigrams, 0.01);
    let words_full = f_of(FeatureSetKind::Words, 1.0);
    let tri_full = f_of(FeatureSetKind::Trigrams, 1.0);
    assert!(
        tri_low >= words_low - 0.03,
        "low data: trigrams ({tri_low:.3}) should not lose to words ({words_low:.3})"
    );
    assert!(
        words_full >= tri_full - 0.03,
        "full data: words ({words_full:.3}) should not lose to trigrams ({tri_full:.3})"
    );
    assert!(words_full > words_low, "more data must help word features");
}

/// Figure 3: the fraction of test URLs with a training-set domain grows
/// with the training fraction and is substantial at 100 %.
#[test]
fn domain_memorization_curve_shape() {
    let corpus = PaperCorpus::generate(99, CorpusScale::small());
    let training = corpus.combined_training();
    let curve = domain_memorization_curve(&training, &corpus.web_crawl, &[0.01, 0.1, 1.0]);
    assert!(curve[0].1 <= curve[2].1);
    assert!(
        (25.0..=90.0).contains(&curve[2].1),
        "full-training domain coverage of the crawl should be substantial but partial: {:.1}%",
        curve[2].1
    );
}

/// Section 5.7: Italian is the easiest language, English the hardest (or
/// at least: Italian clearly beats English).
#[test]
fn italian_is_easier_than_english() {
    let corpus = corpus();
    let training = corpus.combined_training();
    let nb = train_classifier_set(&training, &TrainingConfig::paper_best());
    let mut it_sum = 0.0;
    let mut en_sum = 0.0;
    for (_, test) in corpus.test_sets() {
        let r = evaluate_classifier_set(&nb, test);
        it_sum += r.metrics(Language::Italian).f_measure;
        en_sum += r.metrics(Language::English).f_measure;
    }
    assert!(
        it_sum >= en_sum - 0.05,
        "Italian ({:.3}) should not be harder than English ({:.3})",
        it_sum / 3.0,
        en_sum / 3.0
    );
}
