//! Language-typical made-up words.
//!
//! Real URLs are full of tokens that appear in no dictionary: brand names,
//! compounds, truncations. The paper's trigram features succeed precisely
//! because such made-up tokens still *look like* their language ("the
//! trigrams ' th' or 'ing' are very common in English, which can then be
//! even applied to unknown tokens"). The corpus generator therefore needs
//! a source of out-of-dictionary tokens whose character statistics are
//! language-typical; this module provides it by combining dictionary stems
//! with language-typical prefixes/suffixes and (for German) compounding.

use rand::rngs::StdRng;
use rand::Rng;
use urlid_lexicon::{wordlists, Language};

/// Language-typical suffixes attached to stems to create plausible
/// out-of-dictionary tokens.
fn suffixes(lang: Language) -> &'static [&'static str] {
    match lang {
        Language::English => &[
            "ing", "tion", "ness", "ship", "land", "ville", "ware", "hub", "ly",
        ],
        Language::German => &[
            "ung", "heit", "keit", "schaft", "haus", "werk", "markt", "welt", "stadt",
        ],
        Language::French => &["eux", "tion", "ment", "erie", "age", "aire", "eau", "ois"],
        Language::Spanish => &[
            "cion", "dad", "ero", "ista", "illo", "anza", "miento", "eria",
        ],
        Language::Italian => &[
            "zione", "mente", "issimo", "eria", "etto", "aggio", "anza", "ino",
        ],
    }
}

/// A pool of "provider-style" host stems shared by all languages
/// (international platforms hosting pages of many languages, such as the
/// paper's `wordpress.com` example).
pub const SHARED_HOST_STEMS: &[&str] = &[
    "wordpress",
    "blogspot",
    "tripod",
    "geocities",
    "angelfire",
    "freehosting",
    "netfirms",
    "homestead",
    "webnode",
    "jimdo",
    "weebly",
    "altervista",
    "lycos",
    "tiscali",
    "myblog",
    "freeweb",
    "narod",
    "interfree",
    "chez",
    "ifrance",
];

/// Deterministically pick an element of a slice using the RNG.
pub(crate) fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[rng.random_range(0..items.len())]
}

/// A random dictionary word of the language.
pub fn dictionary_word(rng: &mut StdRng, lang: Language) -> String {
    (*pick(rng, wordlists::words_for(lang))).to_owned()
}

/// A made-up but language-typical token: a dictionary stem plus a
/// language-typical suffix, or (for German, which compounds heavily) the
/// concatenation of two stems.
pub fn invented_word(rng: &mut StdRng, lang: Language) -> String {
    let stem = dictionary_word(rng, lang);
    match lang {
        Language::German if rng.random_bool(0.5) => {
            // Compound: "wetterbericht", "reiseangebote", ...
            let second = dictionary_word(rng, lang);
            format!("{stem}{second}")
        }
        _ => {
            let suffix = pick(rng, suffixes(lang));
            format!("{stem}{suffix}")
        }
    }
}

/// A brandable host stem: either an invented word or two dictionary words
/// glued together (optionally hyphenated by the caller).
pub fn host_stem(rng: &mut StdRng, lang: Language) -> String {
    if rng.random_bool(0.4) {
        invented_word(rng, lang)
    } else {
        let a = dictionary_word(rng, lang);
        let b = dictionary_word(rng, lang);
        format!("{a}{b}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use urlid_lexicon::ALL_LANGUAGES;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn invented_words_are_lowercase_ascii_and_nonempty() {
        let mut r = rng();
        for lang in ALL_LANGUAGES {
            for _ in 0..200 {
                let w = invented_word(&mut r, lang);
                assert!(!w.is_empty());
                assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{lang}: {w:?}");
                assert!(w.len() >= 4);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for lang in ALL_LANGUAGES {
            assert_eq!(invented_word(&mut a, lang), invented_word(&mut b, lang));
            assert_eq!(host_stem(&mut a, lang), host_stem(&mut b, lang));
        }
    }

    #[test]
    fn german_invented_words_often_compound() {
        let mut r = rng();
        let mut long = 0;
        for _ in 0..200 {
            if invented_word(&mut r, Language::German).len() >= 10 {
                long += 1;
            }
        }
        assert!(
            long > 80,
            "German should produce many long compounds, got {long}"
        );
    }

    #[test]
    fn dictionary_words_come_from_the_lists() {
        let mut r = rng();
        for lang in ALL_LANGUAGES {
            for _ in 0..50 {
                let w = dictionary_word(&mut r, lang);
                assert!(wordlists::words_for(lang).contains(&w.as_str()));
            }
        }
    }

    #[test]
    fn shared_host_stems_are_nonempty() {
        assert!(SHARED_HOST_STEMS.len() >= 10);
    }
}
