//! Multinomial Naive Bayes.
//!
//! Section 3.2: "This simple algorithm assumes conditional statistical
//! independence of the individual features given the language. It then
//! applies the maximum likelihood principle to find the language which is
//! most likely to generate the observed feature vector."
//!
//! With word or trigram counts this is the classical multinomial Naive
//! Bayes text classifier: for each class *c* ∈ {positive, negative} a
//! per-feature probability `p(j | c)` is estimated from summed counts with
//! Laplace (add-α) smoothing, and a URL with feature counts `x` is scored
//! by
//!
//! ```text
//! score(x) = log P(+) − log P(−) + Σ_j x_j · (log p(j|+) − log p(j|−))
//! ```
//!
//! Positive scores mean "language X". Because the paper trains with
//! balanced positive/negative sets, the prior term is usually zero, but it
//! is kept for correctness when the sets are not balanced.

use crate::codec::{ByteReader, ByteWriter, CodecError};
use crate::compile::{CompileScorer, Lowering};
use crate::model::VectorClassifier;
use crate::stats::{PartialCounts, StatsTrainer};
use serde::{Deserialize, Serialize};
use urlid_features::SparseVector;

/// Configuration for Naive Bayes training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NaiveBayesConfig {
    /// Laplace smoothing strength α (default 1.0).
    pub alpha: f64,
    /// Dimensionality of the feature space. Needed for smoothing; pass
    /// the extractor's `dim()`.
    pub dim: usize,
}

impl NaiveBayesConfig {
    /// Default configuration for a feature space of the given size.
    pub fn for_dim(dim: usize) -> Self {
        Self { alpha: 1.0, dim }
    }
}

/// A trained multinomial Naive Bayes binary classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NaiveBayes {
    /// log p(j | +) − log p(j | −), indexed by feature.
    log_ratio: Vec<f64>,
    /// log P(+) − log P(−).
    log_prior_ratio: f64,
    /// log-ratio applied to unseen features (from smoothing only).
    default_log_ratio: f64,
    config: NaiveBayesConfig,
}

impl NaiveBayes {
    /// Train from positive and negative example feature vectors.
    ///
    /// Equivalent to folding every example into a [`PartialCounts`] and
    /// calling [`StatsTrainer::from_stats`] — which is exactly what the
    /// sharded training pipeline does, one accumulator per shard.
    ///
    /// # Panics
    /// Panics if both classes are empty or `config.dim == 0` while any
    /// vector is non-empty.
    pub fn train(
        positives: &[SparseVector],
        negatives: &[SparseVector],
        config: NaiveBayesConfig,
    ) -> Self {
        let mut stats = PartialCounts::new();
        for v in positives {
            stats.observe(v, true);
        }
        for v in negatives {
            stats.observe(v, false);
        }
        Self::from_stats(stats, config)
    }

    /// The learnt per-feature log-likelihood ratios.
    pub fn log_ratios(&self) -> &[f64] {
        &self.log_ratio
    }

    /// The configuration used for training.
    pub fn config(&self) -> NaiveBayesConfig {
        self.config
    }
}

impl StatsTrainer for NaiveBayes {
    type Stats = PartialCounts;
    type Config = NaiveBayesConfig;

    fn observe(stats: &mut PartialCounts, features: &SparseVector, positive: bool) {
        stats.observe(features, positive);
    }

    fn merge(stats: &mut PartialCounts, other: PartialCounts) {
        stats.merge(other);
    }

    /// Build the model from fully reduced counts.
    ///
    /// # Panics
    /// Panics if the statistics observed no examples at all.
    fn from_stats(stats: PartialCounts, config: NaiveBayesConfig) -> Self {
        assert!(
            stats.n_pos() + stats.n_neg() > 0,
            "cannot train Naive Bayes on an empty training set"
        );
        let dim = config.dim.max(stats.min_dim());
        let alpha = config.alpha;

        let (n_pos_raw, n_neg_raw) = (stats.n_pos(), stats.n_neg());
        let (mut pos_counts, mut neg_counts) = stats.into_counts();
        pos_counts.resize(dim, 0.0);
        neg_counts.resize(dim, 0.0);

        let pos_total: f64 = pos_counts.iter().sum::<f64>() + alpha * dim as f64;
        let neg_total: f64 = neg_counts.iter().sum::<f64>() + alpha * dim as f64;

        let log_ratio: Vec<f64> = (0..dim)
            .map(|j| {
                let p_pos = (pos_counts[j] + alpha) / pos_total;
                let p_neg = (neg_counts[j] + alpha) / neg_total;
                p_pos.ln() - p_neg.ln()
            })
            .collect();
        // A feature never seen in training at all gets the pure-smoothing
        // ratio alpha/pos_total vs alpha/neg_total.
        let default_log_ratio = (alpha / pos_total).ln() - (alpha / neg_total).ln();

        let n_pos = n_pos_raw.max(1) as f64;
        let n_neg = n_neg_raw.max(1) as f64;
        let log_prior_ratio = (n_pos / (n_pos + n_neg)).ln() - (n_neg / (n_pos + n_neg)).ln();

        Self {
            log_ratio,
            log_prior_ratio,
            default_log_ratio,
            config: NaiveBayesConfig { alpha, dim },
        }
    }
}

impl VectorClassifier for NaiveBayes {
    fn score(&self, features: &SparseVector) -> f64 {
        let mut score = self.log_prior_ratio;
        for (j, x) in features.iter() {
            let r = self
                .log_ratio
                .get(j as usize)
                .copied()
                .unwrap_or(self.default_log_ratio);
            score += x * r;
        }
        score
    }

    fn as_compile(&self) -> Option<&dyn CompileScorer> {
        Some(self)
    }
}

impl CompileScorer for NaiveBayes {
    /// NB is already a linear model: the lane is the per-feature
    /// log-likelihood ratio, padded with the pure-smoothing default so
    /// the fused pass applies exactly the interpreted `unwrap_or`.
    fn lower(&self, dim: usize) -> Lowering {
        let mut weights = self.log_ratio.clone();
        if weights.len() < dim {
            weights.resize(dim, self.default_log_ratio);
        }
        Lowering::NaiveBayes {
            weights,
            bias: self.log_prior_ratio,
            default: self.default_log_ratio,
        }
    }
}

impl NaiveBayes {
    /// Append the trained model to the `.urlm` `MODELS` codec stream
    /// (see [`crate::codec`]). Floats are written bit-exactly.
    pub fn write_binary(&self, w: &mut ByteWriter) {
        w.write_f64(self.config.alpha);
        w.write_usize(self.config.dim);
        w.write_f64(self.log_prior_ratio);
        w.write_f64(self.default_log_ratio);
        w.write_f64_slice(&self.log_ratio);
    }

    /// Decode a model previously written by
    /// [`NaiveBayes::write_binary`].
    pub fn read_binary(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            config: NaiveBayesConfig {
                alpha: r.read_f64("nb.alpha")?,
                dim: r.read_usize("nb.dim")?,
            },
            log_prior_ratio: r.read_f64("nb.log_prior_ratio")?,
            default_log_ratio: r.read_f64("nb.default_log_ratio")?,
            log_ratio: r.read_f64_vec("nb.log_ratio")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(indices: &[u32]) -> SparseVector {
        SparseVector::from_counts(indices.iter().copied())
    }

    /// Tiny synthetic task: features 0..3 are "German" tokens, 4..7 are
    /// "English" tokens.
    fn toy_training() -> (Vec<SparseVector>, Vec<SparseVector>) {
        let positives = vec![
            vec_of(&[0, 1]),
            vec_of(&[0, 2]),
            vec_of(&[1, 2, 3]),
            vec_of(&[0, 3]),
        ];
        let negatives = vec![
            vec_of(&[4, 5]),
            vec_of(&[5, 6]),
            vec_of(&[4, 6, 7]),
            vec_of(&[5, 7]),
        ];
        (positives, negatives)
    }

    #[test]
    fn separable_data_is_classified_correctly() {
        let (pos, neg) = toy_training();
        let nb = NaiveBayes::train(&pos, &neg, NaiveBayesConfig::for_dim(8));
        assert!(nb.classify(&vec_of(&[0, 1, 2])));
        assert!(!nb.classify(&vec_of(&[4, 5, 6])));
        assert!(nb.score(&vec_of(&[0])) > 0.0);
        assert!(nb.score(&vec_of(&[7])) < 0.0);
    }

    #[test]
    fn repeated_tokens_strengthen_the_score() {
        let (pos, neg) = toy_training();
        let nb = NaiveBayes::train(&pos, &neg, NaiveBayesConfig::for_dim(8));
        let once = nb.score(&SparseVector::from_pairs(vec![(0, 1.0)]));
        let thrice = nb.score(&SparseVector::from_pairs(vec![(0, 3.0)]));
        assert!(thrice > once);
    }

    #[test]
    fn unseen_and_empty_vectors_fall_back_to_prior() {
        let (pos, neg) = toy_training();
        let nb = NaiveBayes::train(&pos, &neg, NaiveBayesConfig::for_dim(8));
        // Balanced training: prior ratio ~ 0, and the empty vector scores 0.
        assert!(nb.score(&SparseVector::new()).abs() < 1e-9);
        // A feature index outside the training dimension uses the default
        // ratio (finite, not NaN).
        let s = nb.score(&vec_of(&[100]));
        assert!(s.is_finite());
    }

    #[test]
    fn unbalanced_priors_shift_the_decision() {
        let pos = vec![vec_of(&[0]); 9];
        let neg = vec![vec_of(&[1]); 1];
        let nb = NaiveBayes::train(&pos, &neg, NaiveBayesConfig::for_dim(2));
        // Prior strongly favours positive.
        assert!(nb.score(&SparseVector::new()) > 0.0);
    }

    #[test]
    fn mixed_evidence_weighs_counts() {
        let (pos, neg) = toy_training();
        let nb = NaiveBayes::train(&pos, &neg, NaiveBayesConfig::for_dim(8));
        // Two German features vs one English feature -> German.
        assert!(nb.classify(&vec_of(&[0, 1, 4])));
        // One German vs two English -> not German.
        assert!(!nb.classify(&vec_of(&[0, 4, 5])));
    }

    #[test]
    fn smoothing_strength_affects_confidence_not_sign() {
        let (pos, neg) = toy_training();
        let sharp = NaiveBayes::train(&pos, &neg, NaiveBayesConfig { alpha: 0.1, dim: 8 });
        let smooth = NaiveBayes::train(
            &pos,
            &neg,
            NaiveBayesConfig {
                alpha: 10.0,
                dim: 8,
            },
        );
        let x = vec_of(&[0, 1]);
        assert!(sharp.score(&x) > smooth.score(&x));
        assert!(sharp.classify(&x) && smooth.classify(&x));
    }

    #[test]
    #[should_panic]
    fn empty_training_panics() {
        let _ = NaiveBayes::train(&[], &[], NaiveBayesConfig::for_dim(4));
    }

    #[test]
    fn serde_round_trip() {
        let (pos, neg) = toy_training();
        let nb = NaiveBayes::train(&pos, &neg, NaiveBayesConfig::for_dim(8));
        let json = serde_json::to_string(&nb).unwrap();
        let back: NaiveBayes = serde_json::from_str(&json).unwrap();
        let x = vec_of(&[0, 5]);
        assert!((nb.score(&x) - back.score(&x)).abs() < 1e-12);
    }
}
