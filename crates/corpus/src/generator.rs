//! The synthetic URL generator.
//!
//! [`UrlGenerator`] owns the persistent per-language domain pools (so that
//! the same registered domains recur across training and test URLs, as on
//! the real web) and produces individual URLs according to a
//! [`DatasetProfile`].
//!
//! Anatomy of a generated URL:
//!
//! ```text
//! http://  [www.]  [sub.]  stem[-stem2]  .tld  /seg1/seg2/page.html  [?k=v]
//! ```
//!
//! * the *lexical language* of stems and path segments is the URL's true
//!   language, except for "English-looking" URLs of non-English pages,
//!   whose lexical material is English (the paper's central difficulty);
//! * the TLD is drawn from the per-language mix of the profile;
//! * with probability `shared_domain` the host stem comes from a shared
//!   multi-language provider pool (the `wordpress.com` effect);
//! * otherwise the registered domain comes from the language's persistent
//!   pool with probability `pool_domain`, and is freshly invented
//!   otherwise.

use crate::morphology;
use crate::profiles::DatasetProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use urlid_lexicon::{cctld::CcTldTable, cities, wordlists, Language, ALL_LANGUAGES};

/// TLDs assigned to none of the five languages (and not com/org/net).
const OTHER_TLDS: &[&str] = &[
    "ru", "jp", "ch", "nl", "se", "pl", "cz", "pt", "eu", "info", "biz",
];

/// Subdomain words occasionally prepended to hosts.
const GENERIC_SUBDOMAINS: &[&str] = &[
    "shop", "forum", "news", "blog", "mail", "web", "online", "home",
];

/// Path file extensions.
const EXTENSIONS: &[&str] = &["html", "htm", "php", "asp", "shtml"];

/// The stateful URL generator.
#[derive(Debug, Clone)]
pub struct UrlGenerator {
    rng: StdRng,
    /// Persistent per-language pools of host stems.
    stem_pools: [Vec<String>; 5],
    /// Persistent pool of shared provider host names (stem only).
    shared_pool: Vec<String>,
}

impl UrlGenerator {
    /// Default number of host stems per language pool.
    pub const DEFAULT_POOL_SIZE: usize = 300;

    /// Create a generator with the default pool size.
    pub fn new(seed: u64) -> Self {
        Self::with_pool_size(seed, Self::DEFAULT_POOL_SIZE)
    }

    /// Create a generator with a custom per-language pool size (smaller
    /// pools mean more domain reuse / memorisation).
    pub fn with_pool_size(seed: u64, pool_size: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stem_pools: [Vec<String>; 5] = Default::default();
        for lang in ALL_LANGUAGES {
            let pool = &mut stem_pools[lang.index()];
            while pool.len() < pool_size {
                pool.push(morphology::host_stem(&mut rng, lang));
            }
        }
        let shared_pool = morphology::SHARED_HOST_STEMS
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        Self {
            rng,
            stem_pools,
            shared_pool,
        }
    }

    /// The persistent stem pool of a language (exposed for tests and for
    /// the domain-memorisation analysis).
    pub fn stem_pool(&self, lang: Language) -> &[String] {
        &self.stem_pools[lang.index()]
    }

    /// Generate one URL of `lang` according to `profile`.
    pub fn generate(&mut self, lang: Language, profile: &DatasetProfile) -> String {
        let lp = *profile.language(lang);
        // Lexical language: non-English URLs may "look English".
        let english_looking = lang != Language::English && self.rng.random_bool(lp.english_looking);
        let lex = if english_looking {
            Language::English
        } else {
            lang
        };

        let tld = self.sample_tld(lang, &lp);
        let host = self.sample_host(lang, lex, &lp, profile, &tld);
        let path = self.sample_path(lex, &lp, profile);
        let query = if self.rng.random_bool(profile.query) {
            format!("?{}={}", self.pick_word(lex), self.rng.random_range(1..500))
        } else {
            String::new()
        };
        let www = if self.rng.random_bool(0.55) {
            "www."
        } else {
            ""
        };
        format!("http://{www}{host}{path}{query}")
    }

    /// Generate a mixed-language crawl-frontier sample: `n` URLs drawn
    /// round-robin from all five languages with the web-crawl profile —
    /// the URL mix the serving layer's load generator replays against a
    /// running server.
    pub fn crawl_frontier_mix(seed: u64, n: usize) -> Vec<String> {
        let mut generator = Self::new(seed);
        let profile = DatasetProfile::web_crawl();
        (0..n)
            .map(|i| generator.generate(ALL_LANGUAGES[i % ALL_LANGUAGES.len()], &profile))
            .collect()
    }

    /// Generate `n` URLs of `lang`.
    pub fn generate_many(
        &mut self,
        lang: Language,
        profile: &DatasetProfile,
        n: usize,
    ) -> Vec<String> {
        (0..n).map(|_| self.generate(lang, profile)).collect()
    }

    fn sample_tld(&mut self, lang: Language, lp: &crate::profiles::LanguageProfile) -> String {
        let r: f64 = self.rng.random();
        let own = CcTldTable::cctlds_for(lang);
        if r < lp.own_cctld {
            // Primary ccTLD 75% of the time, any other of the language's
            // ccTLDs otherwise.
            if own.len() == 1 || self.rng.random_bool(0.75) {
                own[0].to_owned()
            } else {
                own[self.rng.random_range(1..own.len())].to_owned()
            }
        } else if r < lp.own_cctld + lp.com {
            "com".to_owned()
        } else if r < lp.own_cctld + lp.com + lp.org {
            "org".to_owned()
        } else if r < lp.own_cctld + lp.com + lp.org + lp.net {
            "net".to_owned()
        } else {
            (*morphology::pick(&mut self.rng, OTHER_TLDS)).to_owned()
        }
    }

    fn sample_host(
        &mut self,
        lang: Language,
        lex: Language,
        lp: &crate::profiles::LanguageProfile,
        profile: &DatasetProfile,
        tld: &str,
    ) -> String {
        let shared = self.rng.random_bool(profile.shared_domain);
        let stem = if shared {
            morphology::pick(&mut self.rng, &self.shared_pool).clone()
        } else if self.rng.random_bool(profile.pool_domain) {
            // Pool stems always come from the URL's *true* language: a
            // brand host such as splinder.com is not obviously Italian to
            // a human, but word-feature classifiers can memorise it from
            // the training data (Section 5.1 / Section 6 of the paper).
            morphology::pick(&mut self.rng, &self.stem_pools[lang.index()]).clone()
        } else if self.rng.random_bool(lp.hyphenation) {
            format!("{}-{}", self.pick_word(lex), self.pick_word(lex))
        } else {
            morphology::host_stem(&mut self.rng, lex)
        };
        // Occasional subdomain; a small fraction uses a language-code
        // subdomain (the de.wikipedia.org pattern).
        let sub = if self.rng.random_bool(0.04) {
            format!("{}.", lang.iso_code())
        } else if self.rng.random_bool(0.08) {
            format!("{}.", morphology::pick(&mut self.rng, GENERIC_SUBDOMAINS))
        } else {
            String::new()
        };
        // Shared providers host user areas as subpaths, not subdomains.
        format!("{sub}{stem}.{tld}")
    }

    fn sample_path(
        &mut self,
        lex: Language,
        lp: &crate::profiles::LanguageProfile,
        profile: &DatasetProfile,
    ) -> String {
        // Geometric-ish path depth with the configured mean.
        let p_continue = profile.mean_path_depth / (1.0 + profile.mean_path_depth);
        let mut depth = 0;
        while depth < 6 && self.rng.random_bool(p_continue) {
            depth += 1;
        }
        if depth == 0 {
            return if self.rng.random_bool(0.5) {
                "/".to_owned()
            } else {
                String::new()
            };
        }
        let mut segments = Vec::with_capacity(depth);
        for i in 0..depth {
            let last = i + 1 == depth;
            let mut seg = self.sample_segment(lex, lp);
            if last && self.rng.random_bool(0.45) {
                let ext = morphology::pick(&mut self.rng, EXTENSIONS);
                seg = format!("{seg}.{ext}");
            }
            segments.push(seg);
        }
        format!("/{}", segments.join("/"))
    }

    fn sample_segment(&mut self, lex: Language, lp: &crate::profiles::LanguageProfile) -> String {
        let r: f64 = self.rng.random();
        if r < 0.08 {
            // index-style or numeric segment.
            if self.rng.random_bool(0.5) {
                format!("{}", self.rng.random_range(1..10_000))
            } else {
                format!("t-{}", self.rng.random_range(100..99_999))
            }
        } else if r < 0.15 {
            (*morphology::pick(&mut self.rng, cities::cities_for(lex))).to_owned()
        } else if r < 0.15 + lp.hyphenation {
            format!("{}-{}", self.pick_word(lex), self.pick_word(lex))
        } else if r < 0.75 {
            self.pick_word(lex)
        } else if r < 0.90 {
            morphology::invented_word(&mut self.rng, lex)
        } else {
            format!("{}{}", self.pick_word(lex), self.rng.random_range(1..100))
        }
    }

    fn pick_word(&mut self, lex: Language) -> String {
        (*morphology::pick(&mut self.rng, wordlists::words_for(lex))).to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urlid_tokenize::ParsedUrl;

    fn count_own_cctld(urls: &[String], lang: Language) -> usize {
        let table = CcTldTable::cctld();
        urls.iter()
            .filter(|u| {
                ParsedUrl::parse(u)
                    .tld()
                    .map(|t| table.language_of(t) == Some(lang))
                    .unwrap_or(false)
            })
            .count()
    }

    #[test]
    fn urls_are_parseable_and_well_formed() {
        let mut g = UrlGenerator::new(1);
        let profile = DatasetProfile::odp();
        for lang in ALL_LANGUAGES {
            for url in g.generate_many(lang, &profile, 200) {
                assert!(url.starts_with("http://"), "{url}");
                let parsed = ParsedUrl::parse(&url);
                assert!(!parsed.host().is_empty(), "no host in {url}");
                assert!(parsed.tld().is_some(), "no tld in {url}");
                assert!(url.is_ascii(), "non-ascii URL {url}");
                assert!(!url.contains(' '), "space in {url}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let profile = DatasetProfile::ser();
        let mut a = UrlGenerator::new(99);
        let mut b = UrlGenerator::new(99);
        let ua = a.generate_many(Language::French, &profile, 50);
        let ub = b.generate_many(Language::French, &profile, 50);
        assert_eq!(ua, ub);
        let mut c = UrlGenerator::new(100);
        let uc = c.generate_many(Language::French, &profile, 50);
        assert_ne!(ua, uc);
    }

    #[test]
    fn cctld_rates_roughly_match_the_profile() {
        let mut g = UrlGenerator::new(7);
        let profile = DatasetProfile::odp();
        let n = 3000;
        for (lang, expected) in [
            (Language::German, 0.80),
            (Language::English, 0.13),
            (Language::Italian, 0.62),
        ] {
            let urls = g.generate_many(lang, &profile, n);
            let rate = count_own_cctld(&urls, lang) as f64 / n as f64;
            assert!(
                (rate - expected).abs() < 0.06,
                "{lang}: rate {rate:.3} vs expected {expected}"
            );
        }
    }

    #[test]
    fn german_urls_hyphenate_much_more_than_english() {
        let mut g = UrlGenerator::new(11);
        let profile = DatasetProfile::odp();
        let n = 2000;
        let hyphens =
            |urls: &[String]| -> usize { urls.iter().map(|u| u.matches('-').count()).sum() };
        let de = hyphens(&g.generate_many(Language::German, &profile, n));
        let en = hyphens(&g.generate_many(Language::English, &profile, n));
        assert!(
            de as f64 > 2.5 * en as f64,
            "German hyphens {de} should far exceed English {en}"
        );
    }

    #[test]
    fn domains_repeat_because_of_the_pool() {
        let mut g = UrlGenerator::new(3);
        let profile = DatasetProfile::odp();
        let urls = g.generate_many(Language::Italian, &profile, 2000);
        // `registered_domain` is None for IP literals and other odd
        // hosts; skip those rather than unwrapping (the generator never
        // produces them today, but the test must not panic if it does).
        let domains: std::collections::HashSet<String> = urls
            .iter()
            .filter_map(|u| ParsedUrl::parse(u).registered_domain())
            .collect();
        // Far fewer distinct domains than URLs -> reuse happens.
        assert!(
            domains.len() < urls.len() * 6 / 10,
            "{} domains for {} urls",
            domains.len(),
            urls.len()
        );
    }

    #[test]
    fn some_non_english_urls_look_english() {
        let mut g = UrlGenerator::new(5);
        let profile = DatasetProfile::web_crawl();
        let urls = g.generate_many(Language::Spanish, &profile, 1500);
        let english_words: std::collections::HashSet<&str> =
            wordlists::words_for(Language::English)
                .iter()
                .copied()
                .collect();
        let spanish_words: std::collections::HashSet<&str> =
            wordlists::words_for(Language::Spanish)
                .iter()
                .copied()
                .collect();
        let mut english_looking = 0;
        let mut spanish_looking = 0;
        for u in &urls {
            let tokens = urlid_tokenize::tokenize_url(u);
            let en_hits = tokens
                .iter()
                .filter(|t| english_words.contains(t.as_str()))
                .count();
            let es_hits = tokens
                .iter()
                .filter(|t| spanish_words.contains(t.as_str()))
                .count();
            if en_hits > es_hits {
                english_looking += 1;
            } else if es_hits > en_hits {
                spanish_looking += 1;
            }
        }
        assert!(
            english_looking > urls.len() / 10,
            "too few English-looking Spanish URLs: {english_looking}"
        );
        assert!(
            spanish_looking > urls.len() / 4,
            "Spanish URLs should still usually look Spanish: {spanish_looking}"
        );
    }

    #[test]
    fn smaller_pools_mean_more_reuse() {
        let profile = DatasetProfile::odp();
        let distinct = |pool: usize| {
            let mut g = UrlGenerator::with_pool_size(21, pool);
            let urls = g.generate_many(Language::French, &profile, 1000);
            urls.iter()
                .filter_map(|u| ParsedUrl::parse(u).registered_domain())
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        assert!(distinct(50) < distinct(2000));
    }

    #[test]
    fn stem_pools_have_the_requested_size() {
        let g = UrlGenerator::with_pool_size(1, 123);
        for lang in ALL_LANGUAGES {
            assert_eq!(g.stem_pool(lang).len(), 123);
        }
    }
}
