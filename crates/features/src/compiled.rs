//! Compiled feature transforms — the extraction half of the compiled
//! scoring plane.
//!
//! A [`CompiledTransform`] is the runtime form of a fitted word or
//! trigram extractor: the same tokenizer, but the vocabulary interned
//! into an [`InternedVocabulary`] so that token→feature-id resolution is
//! a zero-allocation `&[u8]` probe instead of a `HashMap<String, u32>`
//! lookup. [`CompiledTransform::extract`] produces **exactly** the same
//! [`SparseVector`] as the source extractor's
//! [`crate::FeatureExtractor::transform_with`] — the compiled plane's
//! correctness contract starts here.
//!
//! Extractors opt in through
//! [`crate::FeatureExtractor::compile_transform`]; extractors whose
//! transform is not a vocabulary lookup (the custom features, the
//! raw-URL trigram ablation, instrumented test wrappers) simply return
//! `None` and keep being called through the trait object.

use crate::intern::InternedVocabulary;
use crate::scratch::ExtractScratch;
use crate::vector::SparseVector;
use urlid_tokenize::{ngram, Tokenizer};

/// A compiled word- or trigram-feature transform.
#[derive(Debug, Clone)]
pub enum CompiledTransform {
    /// Word features: one vocabulary probe per token.
    Words {
        /// The interned word vocabulary.
        vocab: InternedVocabulary,
        /// The tokenizer the extractor was fitted with.
        tokenizer: Tokenizer,
    },
    /// Within-token n-gram features: one probe per padded n-gram.
    Trigrams {
        /// The interned n-gram vocabulary.
        vocab: InternedVocabulary,
        /// The tokenizer the extractor was fitted with.
        tokenizer: Tokenizer,
        /// n-gram length (3 in the paper).
        n: usize,
    },
}

impl CompiledTransform {
    /// Dimensionality of the compiled feature space (the vocabulary
    /// size, matching the source extractor's `dim()`).
    pub fn dim(&self) -> usize {
        match self {
            CompiledTransform::Words { vocab, .. } => vocab.len(),
            CompiledTransform::Trigrams { vocab, .. } => vocab.len(),
        }
    }

    /// Map a URL to its feature vector, reusing the caller's scratch
    /// buffers. Produces exactly the vector the source extractor's
    /// `transform_with` produces (asserted by this module's tests and by
    /// the workspace-level differential suite).
    pub fn extract(&self, url: &str, scratch: &mut ExtractScratch) -> SparseVector {
        self.extract_into(url, scratch);
        std::mem::take(&mut scratch.vector)
    }

    /// Like [`CompiledTransform::extract`], but the result lands in
    /// `scratch.vector` so its entry storage is reused across URLs: a
    /// warm extraction performs **zero heap allocations**.
    pub fn extract_into(&self, url: &str, scratch: &mut ExtractScratch) {
        match self {
            CompiledTransform::Words { vocab, tokenizer } => {
                let ExtractScratch {
                    token,
                    indices,
                    vector,
                    ..
                } = scratch;
                indices.clear();
                tokenizer.for_each_token(url, token, |tok| {
                    if let Some(i) = vocab.get(tok.as_bytes()) {
                        indices.push(i);
                    }
                });
                vector.refill_from_index_buffer(indices);
            }
            CompiledTransform::Trigrams {
                vocab,
                tokenizer,
                n,
            } => {
                let ExtractScratch {
                    padded,
                    indices,
                    vector,
                    ..
                } = scratch;
                indices.clear();
                for token in tokenizer.iter(url) {
                    ngram::for_each_token_ngram(token, *n, padded, |gram| {
                        if let Some(i) = vocab.get(gram.as_bytes()) {
                            indices.push(i);
                        }
                    });
                }
                vector.refill_from_index_buffer(indices);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::LabeledUrl;
    use crate::extractor::FeatureExtractor;
    use crate::trigrams::TrigramFeatureExtractor;
    use crate::words::WordFeatureExtractor;
    use urlid_lexicon::Language;

    fn training() -> Vec<LabeledUrl> {
        vec![
            LabeledUrl::new("http://www.wetter-bericht.de/berlin", Language::German),
            LabeledUrl::new("http://www.weather-report.co.uk/london", Language::English),
            LabeledUrl::new("http://www.meteo-prevision.fr/paris", Language::French),
        ]
    }

    fn probe_urls() -> Vec<&'static str> {
        vec![
            "http://www.wetter.de/berlin/bericht",
            "http://Weather.CO.UK/London",
            "http://unseen.example.xyz/nothing",
            "http://192.168.0.1/index.html",
            "http://xn--mnchen-3ya.de/",
            "",
            "http://wetter.de/wetter/wetter", // repeated tokens
        ]
    }

    #[test]
    fn compiled_words_match_transform_with_exactly() {
        let mut ex = WordFeatureExtractor::default();
        ex.fit(&training());
        let compiled = ex.compile_transform().expect("words compile");
        assert_eq!(compiled.dim(), ex.dim());
        let mut s1 = ExtractScratch::new();
        let mut s2 = ExtractScratch::new();
        for url in probe_urls() {
            assert_eq!(
                compiled.extract(url, &mut s1),
                ex.transform_with(url, &mut s2),
                "{url}"
            );
        }
    }

    #[test]
    fn compiled_trigrams_match_transform_with_exactly() {
        let mut ex = TrigramFeatureExtractor::default();
        ex.fit(&training());
        let compiled = ex.compile_transform().expect("trigrams compile");
        assert_eq!(compiled.dim(), ex.dim());
        let mut s1 = ExtractScratch::new();
        let mut s2 = ExtractScratch::new();
        for url in probe_urls() {
            assert_eq!(
                compiled.extract(url, &mut s1),
                ex.transform_with(url, &mut s2),
                "{url}"
            );
        }
    }

    #[test]
    fn raw_url_trigram_scope_does_not_compile() {
        let mut ex = TrigramFeatureExtractor::raw_url_scope();
        ex.fit(&training());
        assert!(
            ex.compile_transform().is_none(),
            "the raw-URL ablation stays interpreted"
        );
    }

    #[test]
    fn unfitted_extractors_compile_to_empty_transforms() {
        let ex = WordFeatureExtractor::default();
        let compiled = ex.compile_transform().unwrap();
        assert_eq!(compiled.dim(), 0);
        assert!(compiled
            .extract("http://a.de/wetter", &mut ExtractScratch::new())
            .is_empty());
    }
}
