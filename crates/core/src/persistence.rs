//! Model persistence: the JSON interchange format and the `.urlm`
//! zero-copy binary format behind one format-aware API.
//!
//! The paper's crawler scenario trains once on hundreds of thousands of
//! labelled URLs and then classifies billions of frontier URLs; retraining
//! at every crawler start-up would be wasteful. [`ModelBundle`] is the
//! serialisable form of a trained identifier: the fitted feature extractor
//! plus the five per-language models and the training configuration.
//!
//! Two on-disk representations exist:
//!
//! * **JSON** — the interchange and oracle format: the training-time
//!   structs, portable across endianness, diffable, and the input to
//!   every differential test. Loading parses and then recompiles the
//!   dense scoring plane.
//! * **`.urlm` binary** ([`crate::format`]) — the serving format: the
//!   compiled plane's runtime arrays laid out page-aligned so loading
//!   is mmap + validate + cast. [`ModelBundle::pack`] writes it;
//!   [`ModelSource`] loads either format behind magic-byte sniffing.
//!
//! The two paths are provably equivalent: the `binary_differential`
//! suite asserts bit-identical scores for every recipe in both weight
//! lanes.
//!
//! Only single-configuration models are persistable (the ccTLD baselines
//! need no persistence, and the Section 5.6 combinations can be rebuilt
//! from two bundles).

use crate::format::{looks_binary, SectionId, UrlmFile, UrlmWriter};
use crate::identifier::LanguageIdentifier;
use crate::trainer::{
    train_pipeline, train_pipeline_traced, AnyExtractor, AnyModel, TrainOptions, TrainTrace,
    TrainingConfig,
};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use urlid_classifiers::{
    Algorithm, ByteReader, ByteWriter, CodecError, LanguageClassifierSet, PlaneMeta, PlanePayload,
    PlaneViews, VectorClassifier,
};
use urlid_features::{
    CompiledTransform, CustomFeatureExtractor, Dataset, FeatureExtractor, InternedVocabulary,
    RestoredExtractor, TransformMeta,
};
use urlid_lexicon::{Language, ALL_LANGUAGES};

/// Errors that can occur when saving or loading a model, covering both
/// formats: I/O and JSON problems, and the `.urlm` container's
/// corruption taxonomy — every way a binary file can fail validation is
/// a distinct variant, so callers (and tests) can tell a truncated
/// download from a bit-flipped sector from a version skew.
#[derive(Debug)]
pub enum PersistenceError {
    /// Filesystem error.
    Io(io::Error),
    /// (De)serialisation error.
    Serde(serde_json::Error),
    /// The configuration is not persistable (ccTLD baselines).
    NotPersistable(Algorithm),
    /// The file does not start with the `.urlm` magic.
    BadMagic,
    /// The file's format version is not supported by this build.
    UnsupportedVersion(u32),
    /// The file was written on a machine of the other endianness.
    Endianness,
    /// The file ends before a declared structure does.
    Truncated(String),
    /// A section's checksum does not match its bytes.
    ChecksumMismatch(String),
    /// A section offset violates the format's alignment guarantees.
    Misaligned(String),
    /// Structurally invalid content in an otherwise well-formed
    /// container (bad cross-references, impossible cardinalities, …).
    Corrupt(String),
}

impl std::fmt::Display for PersistenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistenceError::Io(e) => write!(f, "i/o error: {e}"),
            PersistenceError::Serde(e) => write!(f, "serialisation error: {e}"),
            PersistenceError::NotPersistable(a) => {
                write!(f, "{a} needs no trained model and cannot be persisted")
            }
            PersistenceError::BadMagic => write!(f, "not a .urlm model file (bad magic)"),
            PersistenceError::UnsupportedVersion(v) => {
                write!(f, "unsupported .urlm format version {v}")
            }
            PersistenceError::Endianness => {
                write!(
                    f,
                    ".urlm file was written on a machine of the other endianness"
                )
            }
            PersistenceError::Truncated(what) => write!(f, "truncated .urlm file: {what}"),
            PersistenceError::ChecksumMismatch(what) => {
                write!(f, ".urlm checksum mismatch: {what}")
            }
            PersistenceError::Misaligned(what) => write!(f, ".urlm misalignment: {what}"),
            PersistenceError::Corrupt(what) => write!(f, "corrupt model: {what}"),
        }
    }
}

impl std::error::Error for PersistenceError {}

impl From<io::Error> for PersistenceError {
    fn from(e: io::Error) -> Self {
        PersistenceError::Io(e)
    }
}

impl From<serde_json::Error> for PersistenceError {
    fn from(e: serde_json::Error) -> Self {
        PersistenceError::Serde(e)
    }
}

impl From<CodecError> for PersistenceError {
    fn from(e: CodecError) -> Self {
        PersistenceError::Corrupt(e.to_string())
    }
}

/// A serialisable trained model: one fitted extractor + five binary models.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelBundle {
    config: TrainingConfig,
    extractor: AnyExtractor,
    models: Vec<AnyModel>,
}

impl ModelBundle {
    /// Train a bundle (same pipeline as [`crate::trainer::train_classifier_set`],
    /// but keeping the concrete models so they can be serialised).
    pub fn train(training: &Dataset, config: &TrainingConfig) -> Result<Self, PersistenceError> {
        Self::train_with(training, config, TrainOptions::serial())
    }

    /// [`ModelBundle::train`] with explicit parallelism options: the
    /// map-reduce pipeline of [`crate::trainer`]. The persisted JSON is
    /// bit-identical at any job and shard count.
    pub fn train_with(
        training: &Dataset,
        config: &TrainingConfig,
        opts: TrainOptions,
    ) -> Result<Self, PersistenceError> {
        if matches!(config.algorithm, Algorithm::CcTld | Algorithm::CcTldPlus) {
            return Err(PersistenceError::NotPersistable(config.algorithm));
        }
        let (extractor, models) = train_pipeline(training, config, opts);
        Ok(Self {
            config: *config,
            extractor,
            models,
        })
    }

    /// [`ModelBundle::train_with`] plus the training observability
    /// trace: per-shard map timings of the fit and vectorize phases,
    /// per-language model timings, and — for Maximum Entropy — the
    /// per-iteration GIS convergence deltas. The instrumentation is
    /// purely observational; the bundle is bit-identical to the one
    /// [`ModelBundle::train_with`] returns.
    pub fn train_traced(
        training: &Dataset,
        config: &TrainingConfig,
        opts: TrainOptions,
    ) -> Result<(Self, TrainTrace), PersistenceError> {
        if matches!(config.algorithm, Algorithm::CcTld | Algorithm::CcTldPlus) {
            return Err(PersistenceError::NotPersistable(config.algorithm));
        }
        let (extractor, models, trace) = train_pipeline_traced(training, config, opts);
        Ok((
            Self {
                config: *config,
                extractor,
                models,
            },
            trace,
        ))
    }

    /// The training configuration stored in the bundle.
    pub fn config(&self) -> &TrainingConfig {
        &self.config
    }

    /// Binary decision for one URL and language straight from the bundle.
    pub fn is_language(&self, url: &str, lang: Language) -> bool {
        let v = self.extractor.transform(url);
        self.models[lang.index()].classify(&v)
    }

    /// Convert into a ready-to-use [`LanguageIdentifier`] on the
    /// single-pass scoring pipeline (one shared extractor, five vector
    /// models).
    ///
    /// The identifier's classifier set is **compiled** on the way out:
    /// the load path — server start-up and `POST /admin/reload` alike —
    /// always serves through the fused dense-weight plane, while the
    /// persisted JSON keeps the training-time representation (the
    /// compiled plane is a pure function of it, rebuilt at every load).
    pub fn into_identifier(self) -> LanguageIdentifier {
        let extractor = Arc::new(self.extractor);
        let mut per_lang: Vec<Option<AnyModel>> = self.models.into_iter().map(Some).collect();
        let mut set = LanguageClassifierSet::build_vector(Arc::clone(&extractor) as _, |lang| {
            let model = per_lang[lang.index()]
                .take()
                .expect("bundle has one model per language");
            Box::new(model) as Box<dyn VectorClassifier>
        });
        set.compile();
        LanguageIdentifier::from_classifier_set(set, self.config)
    }

    /// Serialise to a JSON string.
    pub fn to_json(&self) -> Result<String, PersistenceError> {
        Ok(serde_json::to_string(self)?)
    }

    /// Deserialise from a JSON string.
    pub fn from_json(json: &str) -> Result<Self, PersistenceError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Save to a file (JSON).
    #[deprecated(
        since = "0.2.0",
        note = "use `ModelBundle::save_json` (or `ModelBundle::pack` for the binary format)"
    )]
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistenceError> {
        self.save_json(path)
    }

    /// Load from a file (JSON only; a `.urlm` file has no bundle form —
    /// load it through [`ModelSource`]).
    #[deprecated(
        since = "0.2.0",
        note = "use `ModelSource::detect(path)?.load_identifier()`"
    )]
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistenceError> {
        Self::load_json(path)
    }

    /// Save to a file in the JSON interchange format.
    pub fn save_json(&self, path: impl AsRef<Path>) -> Result<(), PersistenceError> {
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Load a bundle from a JSON file. Rejects `.urlm` bytes with
    /// [`PersistenceError::BadMagic`]-adjacent clarity instead of a
    /// JSON parse error.
    pub fn load_json(path: impl AsRef<Path>) -> Result<Self, PersistenceError> {
        let bytes = std::fs::read(path)?;
        if looks_binary(&bytes) {
            return Err(PersistenceError::Corrupt(
                "file is a .urlm binary model; a ModelBundle only exists for JSON models — \
                 load it through ModelSource instead"
                    .into(),
            ));
        }
        let text = String::from_utf8(bytes)
            .map_err(|e| PersistenceError::Corrupt(format!("model JSON is not UTF-8: {e}")))?;
        Self::from_json(&text)
    }

    /// Pack the bundle into the `.urlm` zero-copy binary format at
    /// `path` (written atomically: temporary file + rename).
    ///
    /// The file's dense sections are the *compiled* representation —
    /// the same interned vocabulary and weight matrices
    /// [`ModelBundle::into_identifier`] builds — so a binary load skips
    /// both JSON parsing and plane compilation. The training-time
    /// models are carried along in a compact tagged codec (the MODELS
    /// section), keeping the interpreted oracle scoring path available
    /// on binary-loaded sets.
    pub fn pack(&self, path: impl AsRef<Path>) -> Result<PackReport, PersistenceError> {
        // Serialise the training-time models first, from the bundle
        // itself (into_identifier consumes a clone).
        let mut models = ByteWriter::new();
        models.write_u32(self.models.len() as u32);
        for model in &self.models {
            model.write_binary(&mut models);
        }

        // Compile the plane exactly as the load path would.
        let identifier = self.clone().into_identifier();
        let set = identifier.classifier_set();
        let plane = set.plane().ok_or_else(|| {
            PersistenceError::Corrupt("trained set did not produce a compiled plane".into())
        })?;
        let mut payload = PlanePayload::default();
        plane.serialize_into(&mut payload);

        let extractor = match plane.transform() {
            Some(t) => ExtractorMeta::Compiled(TransformMeta::of(t)),
            None => match &self.extractor {
                AnyExtractor::Custom(c) => ExtractorMeta::Custom(c.clone()),
                _ => {
                    return Err(PersistenceError::Corrupt(
                        "word/trigram extractor failed to compile its transform".into(),
                    ))
                }
            },
        };
        let vocab_len = plane.transform().map(|t| t.dim()).unwrap_or(0);
        let meta = MetaDoc {
            config: self.config,
            extractor,
            plane: payload.meta.clone(),
            vocab_len,
        };

        let mut writer = UrlmWriter::new();
        writer.push(SectionId::Meta, serde_json::to_string(&meta)?.into_bytes());
        if let Some(
            CompiledTransform::Words { vocab, .. } | CompiledTransform::Trigrams { vocab, .. },
        ) = plane.transform()
        {
            let parts = vocab.parts();
            writer.push(SectionId::Arena, parts.arena.to_vec());
            writer.push(SectionId::Bounds, u32_bytes(parts.bounds));
            writer.push(SectionId::Hashes, u64_bytes(parts.hashes));
            writer.push(SectionId::Table, u32_bytes(parts.table));
        }
        writer.push(SectionId::Matrix, payload.matrix);
        writer.push(SectionId::MatrixF32, payload.matrix_f32);
        if !payload.markov.is_empty() {
            writer.push(SectionId::Markov, payload.markov);
        }
        writer.push(SectionId::Models, models.into_bytes());

        let bytes = writer.write_to(path)?;
        Ok(PackReport {
            bytes,
            vocab_len,
            dim: meta.plane.dim,
            stride: meta.plane.stride,
        })
    }
}

/// Native-endian byte image of a `u32` section body. (Mapped lanes
/// reinterpret file bytes natively; the endian tag in the header keeps
/// foreign-endian files out.)
fn u32_bytes(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_ne_bytes());
    }
    out
}

/// Native-endian byte image of a `u64` section body.
fn u64_bytes(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_ne_bytes());
    }
    out
}

/// What [`ModelBundle::pack`] wrote, for logs and the `urlid pack` CLI.
#[derive(Debug, Clone, Copy)]
pub struct PackReport {
    /// Total file size in bytes.
    pub bytes: u64,
    /// Vocabulary cardinality (0 for custom-feature models).
    pub vocab_len: usize,
    /// Feature-space dimensionality of the weight matrix.
    pub dim: usize,
    /// Weight-matrix stride (scoring lanes per feature).
    pub stride: usize,
}

/// The META section document: everything about a packed model that is
/// *not* a dense array — training config, the extractor's serialisable
/// half, the plane's scalar metadata, and the cardinalities `urlid
/// inspect` reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct MetaDoc {
    config: TrainingConfig,
    extractor: ExtractorMeta,
    plane: PlaneMeta,
    vocab_len: usize,
}

/// The serialisable half of the extractor. Word/trigram extractors
/// persist only their [`TransformMeta`] — the vocabulary itself lives
/// in the mapped sections; the custom extractor is a few dozen scalars
/// and travels whole.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum ExtractorMeta {
    Compiled(TransformMeta),
    Custom(CustomFeatureExtractor),
}

/// On-disk model representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelFormat {
    /// The JSON interchange format (training-time structs).
    Json,
    /// The `.urlm` zero-copy binary format (compiled runtime structs).
    Binary,
}

impl ModelFormat {
    /// Lower-case name, as reported by `/healthz` and `/admin/reload`.
    pub fn as_str(self) -> &'static str {
        match self {
            ModelFormat::Json => "json",
            ModelFormat::Binary => "binary",
        }
    }
}

impl std::fmt::Display for ModelFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for ModelFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "json" => Ok(ModelFormat::Json),
            "binary" | "urlm" => Ok(ModelFormat::Binary),
            other => Err(format!(
                "unknown model format {other:?} (expected \"auto\", \"json\" or \"binary\")"
            )),
        }
    }
}

/// A model file plus the format it is in — the one way every load path
/// (CLI boot, `/admin/reload`, tools) resolves "some path the operator
/// gave us" into a servable identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSource {
    path: PathBuf,
    format: ModelFormat,
}

impl ModelSource {
    /// A JSON model at `path`.
    pub fn json(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            format: ModelFormat::Json,
        }
    }

    /// A `.urlm` binary model at `path`.
    pub fn binary(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            format: ModelFormat::Binary,
        }
    }

    /// Detect the format of the file at `path`.
    ///
    /// The first 8 bytes decide: the `.urlm` magic means binary,
    /// anything else means JSON. The extension is only a cross-check —
    /// a `.urlm` file *without* the magic is reported as corrupt rather
    /// than silently fed to the JSON parser.
    pub fn detect(path: impl Into<PathBuf>) -> Result<Self, PersistenceError> {
        let path = path.into();
        let mut prefix = [0u8; 8];
        let sniffed = {
            use std::io::Read as _;
            let mut file = std::fs::File::open(&path)?;
            let n = file.read(&mut prefix)?;
            looks_binary(&prefix[..n])
        };
        let hinted = path.extension().is_some_and(|e| e == "urlm");
        if hinted && !sniffed {
            return Err(PersistenceError::BadMagic);
        }
        Ok(Self {
            path,
            format: if sniffed {
                ModelFormat::Binary
            } else {
                ModelFormat::Json
            },
        })
    }

    /// Resolve a path plus a CLI/API format argument
    /// (`"auto" | "json" | "binary"`).
    pub fn resolve(path: impl Into<PathBuf>, format: &str) -> Result<Self, PersistenceError> {
        match format {
            "auto" | "" => Self::detect(path),
            other => {
                let format: ModelFormat = other.parse().map_err(PersistenceError::Corrupt)?;
                Ok(Self {
                    path: path.into(),
                    format,
                })
            }
        }
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The resolved format.
    pub fn format(&self) -> ModelFormat {
        self.format
    }

    /// Load a ready-to-serve identifier.
    ///
    /// JSON loads deserialise the bundle and recompile the plane;
    /// binary loads map the file and serve straight out of its
    /// sections. Either way the returned identifier scores
    /// bit-identically (the `binary_differential` suite's contract).
    pub fn load_identifier(&self) -> Result<LanguageIdentifier, PersistenceError> {
        match self.format {
            ModelFormat::Json => Ok(ModelBundle::load_json(&self.path)?.into_identifier()),
            ModelFormat::Binary => load_binary(&self.path),
        }
    }
}

/// Parse the META section's JSON document.
fn meta_from_bytes(bytes: &[u8]) -> Result<MetaDoc, PersistenceError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| PersistenceError::Corrupt(format!("META section is not UTF-8: {e}")))?;
    Ok(serde_json::from_str(text)?)
}

/// Load a `.urlm` file into a serving identifier: map, validate,
/// rebuild the vocabulary and plane over zero-copy views, decode the
/// five training-time models.
fn load_binary(path: &Path) -> Result<LanguageIdentifier, PersistenceError> {
    let file = UrlmFile::open(path)?;
    let meta_bytes = file
        .section_bytes(SectionId::Meta)
        .ok_or_else(|| PersistenceError::Corrupt("META section is missing".into()))?;
    let meta = meta_from_bytes(meta_bytes)?;

    // Extractor + compiled transform (None for the custom features).
    let (extractor, transform): (Arc<dyn FeatureExtractor>, Option<CompiledTransform>) =
        match meta.extractor {
            ExtractorMeta::Compiled(tm) => {
                let vocab = InternedVocabulary::from_lanes(
                    file.lane(SectionId::Arena)?,
                    file.lane(SectionId::Bounds)?,
                    file.lane(SectionId::Hashes)?,
                    file.lane(SectionId::Table)?,
                )
                .map_err(PersistenceError::Corrupt)?;
                if vocab.len() != meta.vocab_len {
                    return Err(PersistenceError::Corrupt(format!(
                        "vocabulary has {} features but META declares {}",
                        vocab.len(),
                        meta.vocab_len
                    )));
                }
                let transform = tm.into_transform(vocab);
                (
                    Arc::new(RestoredExtractor::new(transform.clone())),
                    Some(transform),
                )
            }
            ExtractorMeta::Custom(custom) => (Arc::new(custom), None),
        };

    // The scoring plane, over zero-copy views of the mapped sections.
    let views = PlaneViews {
        matrix: file.lane(SectionId::Matrix)?,
        matrix_f32: Some(file.lane(SectionId::MatrixF32)?),
        markov: file.lane_opt(SectionId::Markov)?,
    };
    let plane = urlid_classifiers::CompiledPlane::from_bytes(transform, meta.plane, views)
        .map_err(PersistenceError::Corrupt)?;

    // The training-time models (the interpreted oracle path).
    let model_bytes = file
        .section_bytes(SectionId::Models)
        .ok_or_else(|| PersistenceError::Corrupt("MODELS section is missing".into()))?;
    let mut r = ByteReader::new(model_bytes);
    let count = r.read_u32("model count")? as usize;
    if count != ALL_LANGUAGES.len() {
        return Err(PersistenceError::Corrupt(format!(
            "MODELS section has {count} models, want {}",
            ALL_LANGUAGES.len()
        )));
    }
    let mut set = LanguageClassifierSet::with_extractor(extractor);
    for lang in ALL_LANGUAGES {
        let model = AnyModel::read_binary(&mut r)?;
        set.insert_model(lang, Box::new(model) as Box<dyn VectorClassifier>);
    }
    if !r.is_exhausted() {
        return Err(PersistenceError::Corrupt(format!(
            "MODELS section has {} trailing bytes",
            r.remaining()
        )));
    }
    set.install_plane(plane);
    Ok(LanguageIdentifier::from_classifier_set(set, meta.config))
}

/// Render a human-readable dump of a `.urlm` file: header, section
/// table with checksums, and the model cardinalities — the body of
/// `urlid inspect`.
pub fn inspect_model(path: impl AsRef<Path>) -> Result<String, PersistenceError> {
    use std::fmt::Write as _;
    let path = path.as_ref();
    let file = UrlmFile::open(path)?;
    let mut out = String::new();
    let _ = writeln!(out, "{}: urlm v{}", path.display(), file.version());
    let _ = writeln!(
        out,
        "  {} bytes, page {} bytes, {} sections, backend {}",
        file.file_len(),
        file.page(),
        file.sections().len(),
        file.backend()
    );
    let _ = writeln!(
        out,
        "  {:<10} {:>10} {:>12}  xxh64",
        "section", "offset", "bytes"
    );
    for s in file.sections() {
        let _ = writeln!(
            out,
            "  {:<10} {:>10} {:>12}  {:016x}",
            SectionId::name(s.id),
            s.offset,
            s.len,
            s.checksum
        );
    }
    if let Some(meta_bytes) = file.section_bytes(SectionId::Meta) {
        let meta = meta_from_bytes(meta_bytes)?;
        let _ = writeln!(
            out,
            "  model: {:?} features × {:?}, dim {} (vocabulary {}), stride {}, markov {}",
            meta.config.feature_set,
            meta.config.algorithm,
            meta.plane.dim,
            meta.vocab_len,
            meta.plane.stride,
            if meta.plane.markov.is_some() {
                "yes"
            } else {
                "no"
            },
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use urlid_corpus::{odp_dataset, CorpusScale, UrlGenerator};
    use urlid_features::FeatureSetKind;
    use urlid_lexicon::ALL_LANGUAGES;

    fn tiny_training() -> Dataset {
        let mut g = UrlGenerator::new(21);
        odp_dataset(&mut g, CorpusScale::tiny()).train
    }

    #[test]
    fn bundle_round_trips_through_json() {
        let training = tiny_training();
        let bundle = ModelBundle::train(&training, &TrainingConfig::paper_best()).unwrap();
        let json = bundle.to_json().unwrap();
        let restored = ModelBundle::from_json(&json).unwrap();
        // Decisions are identical before and after the round trip.
        let mut g = UrlGenerator::new(22);
        let profile = urlid_corpus::DatasetProfile::web_crawl();
        for lang in ALL_LANGUAGES {
            for url in g.generate_many(lang, &profile, 20) {
                for l in ALL_LANGUAGES {
                    assert_eq!(
                        bundle.is_language(&url, l),
                        restored.is_language(&url, l),
                        "{url} / {l}"
                    );
                }
            }
        }
    }

    #[test]
    fn bundle_agrees_with_directly_trained_identifier() {
        let training = tiny_training();
        let config = TrainingConfig::paper_best();
        let bundle = ModelBundle::train(&training, &config).unwrap();
        let direct = LanguageIdentifier::train(&training, &config);
        let from_bundle = bundle.clone().into_identifier();
        let mut g = UrlGenerator::new(23);
        let profile = urlid_corpus::DatasetProfile::odp();
        for lang in ALL_LANGUAGES {
            for url in g.generate_many(lang, &profile, 15) {
                assert_eq!(
                    direct.languages_of(&url),
                    from_bundle.languages_of(&url),
                    "{url}"
                );
            }
        }
    }

    #[test]
    #[allow(deprecated)] // the shims must keep working until removal
    fn save_and_load_files() {
        let training = tiny_training();
        let bundle = ModelBundle::train(
            &training,
            &TrainingConfig::new(FeatureSetKind::Custom, Algorithm::DecisionTree),
        )
        .unwrap();
        let dir = std::env::temp_dir().join("urlid-persistence-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        bundle.save(&path).unwrap();
        let loaded = ModelBundle::load(&path).unwrap();
        assert_eq!(loaded.config().algorithm, Algorithm::DecisionTree);
        assert!(ModelBundle::load(dir.join("missing.json")).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cctld_is_not_persistable() {
        let training = tiny_training();
        let err = ModelBundle::train(
            &training,
            &TrainingConfig::new(FeatureSetKind::Words, Algorithm::CcTld),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            PersistenceError::NotPersistable(Algorithm::CcTld)
        ));
        assert!(err.to_string().contains("ccTLD"));
    }

    #[test]
    fn corrupt_json_is_rejected() {
        assert!(ModelBundle::from_json("{not json").is_err());
        assert!(ModelBundle::from_json("{\"config\": 3}").is_err());
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("urlid-persistence-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn packed_model_serves_identically_to_json() {
        let training = tiny_training();
        let config = TrainingConfig::paper_best();
        let bundle = ModelBundle::train(&training, &config).unwrap();
        let json_path = temp_path("parity.json");
        let urlm_path = temp_path("parity.urlm");
        bundle.save_json(&json_path).unwrap();
        let report = bundle.pack(&urlm_path).unwrap();
        assert!(report.bytes > 0);
        assert!(report.vocab_len > 0);
        assert_eq!(report.dim, report.vocab_len);

        // Sniffing resolves each file to its format.
        let json_src = ModelSource::detect(&json_path).unwrap();
        let urlm_src = ModelSource::detect(&urlm_path).unwrap();
        assert_eq!(json_src.format(), ModelFormat::Json);
        assert_eq!(urlm_src.format(), ModelFormat::Binary);

        let from_json = json_src.load_identifier().unwrap();
        let from_urlm = urlm_src.load_identifier().unwrap();
        assert!(from_urlm.classifier_set().plane().unwrap().is_mapped());
        let mut g = UrlGenerator::new(31);
        let profile = urlid_corpus::DatasetProfile::web_crawl();
        for lang in ALL_LANGUAGES {
            for url in g.generate_many(lang, &profile, 10) {
                assert_eq!(
                    from_json.classifier_set().score_all(&url),
                    from_urlm.classifier_set().score_all(&url),
                    "{url}"
                );
                // The interpreted oracle survives the binary round trip
                // too (the MODELS section).
                assert_eq!(
                    from_json.classifier_set().score_all_interpreted(&url),
                    from_urlm.classifier_set().score_all_interpreted(&url),
                    "{url} (interpreted)"
                );
            }
        }
        std::fs::remove_file(&json_path).ok();
        std::fs::remove_file(&urlm_path).ok();
    }

    #[test]
    fn model_source_resolution_rules() {
        // Explicit formats never sniff.
        let src = ModelSource::resolve("whatever.bin", "binary").unwrap();
        assert_eq!(src.format(), ModelFormat::Binary);
        let src = ModelSource::resolve("whatever.txt", "json").unwrap();
        assert_eq!(src.format(), ModelFormat::Json);
        assert!(ModelSource::resolve("x", "protobuf").is_err());
        // A .urlm extension without the magic is rejected, not fed to
        // the JSON parser.
        let path = temp_path("fake.urlm");
        std::fs::write(&path, b"{\"this\": \"is json\"}").unwrap();
        assert!(matches!(
            ModelSource::detect(&path),
            Err(PersistenceError::BadMagic)
        ));
        std::fs::remove_file(&path).ok();
        // Loading a .urlm through the bundle API is a typed error.
        let path = temp_path("real.urlm");
        let bundle = ModelBundle::train(&tiny_training(), &TrainingConfig::paper_best()).unwrap();
        bundle.pack(&path).unwrap();
        assert!(matches!(
            ModelBundle::load_json(&path),
            Err(PersistenceError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inspect_reports_sections_and_cardinalities() {
        let path = temp_path("inspect.urlm");
        let bundle = ModelBundle::train(&tiny_training(), &TrainingConfig::paper_best()).unwrap();
        bundle.pack(&path).unwrap();
        let report = inspect_model(&path).unwrap();
        for section in [
            "META", "ARENA", "BOUNDS", "HASHES", "TABLE", "MATRIX", "MATRIX32", "MODELS",
        ] {
            assert!(report.contains(section), "missing {section} in:\n{report}");
        }
        assert!(report.contains("urlm v1"), "{report}");
        assert!(report.contains("NaiveBayes"), "{report}");
        std::fs::remove_file(&path).ok();
    }
}
