//! The training pipeline of Section 4.1.
//!
//! "For each language we trained the classifiers on the set of all
//! available positive training samples (about 250k) and a random subset of
//! equal size of negative samples, i.e., of URLs belonging to the four
//! other languages. Using all roughly 1.25M URLs to train each binary
//! classifier would have led to too conservative classifiers as the
//! negative samples (1M) would have dominated."
//!
//! [`train_classifier_set`] therefore:
//!
//! 1. fits one feature extractor of the requested family on the *whole*
//!    training set (the vocabulary / trained dictionaries are shared by
//!    the five binary classifiers);
//! 2. for every language, collects the positive feature vectors and an
//!    equal-sized random sample of negative ones;
//! 3. trains the requested algorithm and wraps the result together with
//!    the shared extractor into a [`urlid_classifiers::UrlClassifier`].
//!
//! ## The map-reduce pipeline
//!
//! At paper scale (≈1.2 M training URLs) every phase of that recipe is a
//! pass over the whole corpus, so the trainer runs as a map-reduce over
//! contiguous corpus shards ([`TrainOptions`]):
//!
//! 1. **two-pass extractor fit** — every shard counts features into a
//!    mergeable partial ([`urlid_features::ShardedFit`]), the partials
//!    reduce in shard order, and the merged counts freeze the vocabulary
//!    / trained dictionaries;
//! 2. **parallel vectorize** — shards transform their URLs against the
//!    frozen extractor; results concatenate in shard order;
//! 3. **per-language model fit** — the five binary models train
//!    concurrently; the count-based algorithms (NB, RE) fold mergeable
//!    sufficient statistics ([`urlid_classifiers::StatsTrainer`]) over
//!    the sampled vectors in data order.
//!
//! Negative sampling uses one fixed per-language seed schedule, every
//! reduce folds in ascending shard order, and the only floating-point
//! partials (vocabulary and dictionary counts) are exact integer sums —
//! so the trained model is **bit-identical** for every `--jobs` *and*
//! every `--shards` value. The knobs only decide how many scoped threads
//! execute the maps and how fine-grained the work items are.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;
use urlid_classifiers::{
    Algorithm, CcTldClassifier, CompileScorer, DecisionTree, DecisionTreeConfig, GisIteration,
    KNearestNeighbors, KnnConfig, LanguageClassifierSet, MaxEnt, MaxEntConfig, NaiveBayes,
    NaiveBayesConfig, RelativeEntropy, RelativeEntropyConfig, StatsTrainer, UrlClassifier,
    VectorClassifier,
};
use urlid_features::parallel::{effective_jobs, par_map};
use urlid_features::{
    CustomFeatureExtractor, CustomFeatureSet, Dataset, FeatureExtractor, FeatureSetKind,
    LabeledUrl, ShardedFit, SparseVector, TrigramFeatureExtractor, WordFeatureExtractor,
};
use urlid_lexicon::{Language, ALL_LANGUAGES};
use urlid_telemetry::{duration_micros, Histogram};

/// Default number of corpus shards of the training pipeline.
///
/// A constant (rather than "one per core") so that the work granularity
/// of a training run does not depend on the machine. The trained model
/// is invariant under the shard count anyway (see the module docs); the
/// constant keeps run *shapes* — logs, timings, profiles — comparable
/// across hosts.
pub const DEFAULT_TRAIN_SHARDS: usize = 16;

/// Parallelism and sharding knobs of the training pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainOptions {
    /// Scoped worker threads (0 = one per CPU core). Only schedules work;
    /// never changes the trained model.
    pub jobs: usize,
    /// Corpus shards per map pass (0 = [`DEFAULT_TRAIN_SHARDS`]): the
    /// work granularity. Never changes the trained model either — the
    /// sharded reduces are exact (see the module docs).
    pub shards: usize,
}

impl TrainOptions {
    /// One thread, one shard: the historical sequential pipeline.
    pub fn serial() -> Self {
        Self { jobs: 1, shards: 1 }
    }

    /// One worker per CPU core over the default shard schedule.
    pub fn auto() -> Self {
        Self {
            jobs: 0,
            shards: DEFAULT_TRAIN_SHARDS,
        }
    }

    /// An explicit job count over the default shard schedule.
    pub fn with_jobs(jobs: usize) -> Self {
        Self {
            jobs,
            shards: DEFAULT_TRAIN_SHARDS,
        }
    }

    /// Builder-style: set the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The resolved worker-thread count.
    pub fn effective_jobs(&self) -> usize {
        effective_jobs(self.jobs)
    }

    /// The resolved shard count.
    pub fn effective_shards(&self) -> usize {
        if self.shards == 0 {
            DEFAULT_TRAIN_SHARDS
        } else {
            self.shards
        }
    }
}

impl Default for TrainOptions {
    /// Defaults to the serial pipeline, keeping the one-argument training
    /// entry points exactly as deterministic as they always were.
    fn default() -> Self {
        Self::serial()
    }
}

/// Convergence trace of one language's Maximum Entropy training: the
/// per-iteration update magnitudes reported by the GIS observer, plus
/// the same series folded into a shared log-linear [`Histogram`]
/// (recorded as nanounits, `max_abs_delta × 1e9`, since the histogram
/// is integer-valued).
#[derive(Debug, Clone)]
pub struct GisTrace {
    /// Which language's binary model this traces.
    pub language: Language,
    /// One entry per GIS iteration, in iteration order.
    pub iterations: Vec<GisIteration>,
    /// `max_abs_delta × 1e9` of every iteration, as a histogram.
    pub delta_nanos: Histogram,
}

/// Timing and convergence observations of one training run, collected
/// by [`crate::ModelBundle::train_traced`] and printed by
/// `urlid train --verbose`.
///
/// Purely observational: the traced pipeline runs the exact same code
/// as the untraced one (same shard structure, same fold order, same
/// float ops), so the trained model is bit-identical with tracing on
/// or off — asserted by `traced_training_matches_untraced`.
///
/// All histograms are the shared log-linear `urlid-telemetry` type,
/// the same buckets the serve layer exports.
#[derive(Debug, Clone, Default)]
pub struct TrainTrace {
    /// Wall time of the sharded extractor fit (map + reduce + freeze).
    pub fit_micros: u64,
    /// Wall time of the sharded vectorize pass.
    pub vectorize_micros: u64,
    /// Wall time of the per-language model phase.
    pub models_micros: u64,
    /// Wall time of the whole pipeline.
    pub total_micros: u64,
    /// Per-shard durations of the extractor-fit map phase.
    pub fit_shard_micros: Histogram,
    /// Per-shard durations of the vectorize map phase.
    pub vectorize_shard_micros: Histogram,
    /// Per-language model-training durations, as a histogram.
    pub language_micros: Histogram,
    /// Per-language model-training durations, named.
    pub languages: Vec<(Language, u64)>,
    /// Per-language GIS convergence traces (Maximum Entropy only;
    /// empty for the other algorithms).
    pub gis: Vec<GisTrace>,
}

impl TrainTrace {
    /// Render the trace as a human-readable multi-line report (the
    /// `urlid train --verbose` output).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let ms = |us: u64| us as f64 / 1_000.0;
        let shard_line = |name: &str, h: &Histogram| {
            format!(
                "  {name:<14} {} shards: p50 {:.1}ms  p90 {:.1}ms  max {:.1}ms\n",
                h.count(),
                ms(h.quantile(0.50).unwrap_or(0)),
                ms(h.quantile(0.90).unwrap_or(0)),
                ms(h.max()),
            )
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "training trace: total {:.1}ms (fit {:.1}ms, vectorize {:.1}ms, models {:.1}ms)",
            ms(self.total_micros),
            ms(self.fit_micros),
            ms(self.vectorize_micros),
            ms(self.models_micros),
        );
        out.push_str(&shard_line("extractor fit", &self.fit_shard_micros));
        out.push_str(&shard_line("vectorize", &self.vectorize_shard_micros));
        let _ = write!(
            out,
            "  {:<14} {} languages:",
            "models",
            self.languages.len()
        );
        for (lang, us) in &self.languages {
            let _ = write!(out, "  {}={:.1}ms", lang.iso_code(), ms(*us));
        }
        out.push('\n');
        for trace in &self.gis {
            let (first, last) = match (trace.iterations.first(), trace.iterations.last()) {
                (Some(f), Some(l)) => (f, l),
                _ => continue,
            };
            let _ = writeln!(
                out,
                "  gis {:<11} {} iterations: max|Δw| {:.3e} -> {:.3e}  (p50 {:.3e}, mean|Δw| {:.3e} -> {:.3e})",
                trace.language.iso_code(),
                trace.iterations.len(),
                first.max_abs_delta,
                last.max_abs_delta,
                trace.delta_nanos.quantile(0.50).unwrap_or(0) as f64 / 1e9,
                first.mean_abs_delta,
                last.mean_abs_delta,
            );
        }
        out
    }
}

/// Configuration for training one (feature set, algorithm) combination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Which feature family to use.
    pub feature_set: FeatureSetKind,
    /// Which learning algorithm to use.
    pub algorithm: Algorithm,
    /// Which custom feature subset to use when `feature_set` is `Custom`.
    pub custom_features: CustomFeatureSet,
    /// Ratio of negative to positive training samples (paper: 1.0).
    pub negative_ratio: f64,
    /// Seed for negative sampling.
    pub seed: u64,
    /// Iterations for Maximum Entropy training (paper: 40; 2 in the
    /// Section 7 content experiment).
    pub maxent_iterations: usize,
    /// Use the page content of training examples when present (Section 7).
    pub use_training_content: bool,
}

impl TrainingConfig {
    /// A configuration with the paper's defaults for the given feature
    /// set / algorithm combination.
    pub fn new(feature_set: FeatureSetKind, algorithm: Algorithm) -> Self {
        Self {
            feature_set,
            algorithm,
            custom_features: CustomFeatureSet::Selected15,
            negative_ratio: 1.0,
            seed: 0xBA9_2008,
            maxent_iterations: 40,
            use_training_content: false,
        }
    }

    /// The paper's overall best single configuration: Naive Bayes on word
    /// features (Section 5.3).
    pub fn paper_best() -> Self {
        Self::new(FeatureSetKind::Words, Algorithm::NaiveBayes)
    }

    /// Builder-style: set the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: train on page content too (Section 7).
    pub fn with_training_content(mut self) -> Self {
        self.use_training_content = true;
        self
    }

    /// Builder-style: use the full 74 custom features instead of the
    /// selected 15.
    pub fn with_full_custom_features(mut self) -> Self {
        self.custom_features = CustomFeatureSet::Full74;
        self
    }

    /// Builder-style: set the Maximum Entropy iteration count.
    pub fn with_maxent_iterations(mut self, iterations: usize) -> Self {
        self.maxent_iterations = iterations;
        self
    }
}

/// The concrete extractor for a feature family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum AnyExtractor {
    Words(WordFeatureExtractor),
    Trigrams(TrigramFeatureExtractor),
    Custom(CustomFeatureExtractor),
}

impl AnyExtractor {
    pub(crate) fn build(config: &TrainingConfig) -> Self {
        match config.feature_set {
            FeatureSetKind::Words => {
                if config.use_training_content {
                    AnyExtractor::Words(WordFeatureExtractor::with_training_content())
                } else {
                    AnyExtractor::Words(WordFeatureExtractor::default())
                }
            }
            FeatureSetKind::Trigrams => {
                if config.use_training_content {
                    AnyExtractor::Trigrams(TrigramFeatureExtractor::with_training_content())
                } else {
                    AnyExtractor::Trigrams(TrigramFeatureExtractor::default())
                }
            }
            FeatureSetKind::Custom => {
                AnyExtractor::Custom(CustomFeatureExtractor::new(config.custom_features))
            }
        }
    }
}

impl FeatureExtractor for AnyExtractor {
    fn fit(&mut self, training: &[urlid_features::LabeledUrl]) {
        match self {
            AnyExtractor::Words(e) => e.fit(training),
            AnyExtractor::Trigrams(e) => e.fit(training),
            AnyExtractor::Custom(e) => e.fit(training),
        }
    }
    fn transform(&self, url: &str) -> SparseVector {
        match self {
            AnyExtractor::Words(e) => e.transform(url),
            AnyExtractor::Trigrams(e) => e.transform(url),
            AnyExtractor::Custom(e) => e.transform(url),
        }
    }
    fn transform_with(
        &self,
        url: &str,
        scratch: &mut urlid_features::ExtractScratch,
    ) -> SparseVector {
        match self {
            AnyExtractor::Words(e) => e.transform_with(url, scratch),
            AnyExtractor::Trigrams(e) => e.transform_with(url, scratch),
            AnyExtractor::Custom(e) => e.transform_with(url, scratch),
        }
    }
    fn transform_training(&self, example: &urlid_features::LabeledUrl) -> SparseVector {
        match self {
            AnyExtractor::Words(e) => e.transform_training(example),
            AnyExtractor::Trigrams(e) => e.transform_training(example),
            AnyExtractor::Custom(e) => e.transform_training(example),
        }
    }
    fn compile_transform(&self) -> Option<urlid_features::CompiledTransform> {
        match self {
            AnyExtractor::Words(e) => e.compile_transform(),
            AnyExtractor::Trigrams(e) => e.compile_transform(),
            AnyExtractor::Custom(e) => e.compile_transform(),
        }
    }
    fn dim(&self) -> usize {
        match self {
            AnyExtractor::Words(e) => e.dim(),
            AnyExtractor::Trigrams(e) => e.dim(),
            AnyExtractor::Custom(e) => e.dim(),
        }
    }
    fn feature_name(&self, index: u32) -> Option<String> {
        match self {
            AnyExtractor::Words(e) => e.feature_name(index),
            AnyExtractor::Trigrams(e) => e.feature_name(index),
            AnyExtractor::Custom(e) => e.feature_name(index),
        }
    }
    fn kind(&self) -> FeatureSetKind {
        match self {
            AnyExtractor::Words(e) => e.kind(),
            AnyExtractor::Trigrams(e) => e.kind(),
            AnyExtractor::Custom(e) => e.kind(),
        }
    }
}

/// Two-pass sharded fit of one concrete extractor: parallel frequency
/// count over shards (map), merge in ascending shard order (reduce),
/// freeze the index. Bit-identical to `extractor.fit(training)` for any
/// shard and job count — the partials are integer counts.
///
/// Returns the per-shard map durations (in shard order) for the
/// training trace; measuring them is two `Instant` reads per shard,
/// cheap enough to do unconditionally.
fn fit_sharded<E: ShardedFit>(
    extractor: &mut E,
    training: &Dataset,
    opts: TrainOptions,
) -> Vec<u64> {
    let shards: Vec<&[LabeledUrl]> = training.shards(opts.effective_shards()).collect();
    let shared: &E = extractor;
    let timed = par_map(opts.effective_jobs(), &shards, |shard| {
        let started = Instant::now();
        let partial = shared.observe_shard(shard);
        (partial, duration_micros(started.elapsed()))
    });
    let mut micros = Vec::with_capacity(timed.len());
    let merged = timed
        .into_iter()
        .map(|(partial, us)| {
            micros.push(us);
            partial
        })
        .reduce(|acc, next| shared.merge_partials(acc, next));
    extractor.finish_fit(merged);
    micros
}

impl AnyExtractor {
    /// Fit via the two-pass sharded build; returns the per-shard map
    /// durations in shard order.
    pub(crate) fn fit_with(&mut self, training: &Dataset, opts: TrainOptions) -> Vec<u64> {
        match self {
            AnyExtractor::Words(e) => fit_sharded(e, training, opts),
            AnyExtractor::Trigrams(e) => fit_sharded(e, training, opts),
            AnyExtractor::Custom(e) => fit_sharded(e, training, opts),
        }
    }
}

/// The concrete trained model for any of the learning algorithms.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum AnyModel {
    NaiveBayes(NaiveBayes),
    RelativeEntropy(RelativeEntropy),
    MaxEnt(MaxEnt),
    DecisionTree(DecisionTree),
    Knn(KNearestNeighbors),
}

impl AnyModel {
    /// Binary codec tag of the variant (stable across releases; new
    /// algorithms append, never renumber).
    fn tag(&self) -> u8 {
        match self {
            AnyModel::NaiveBayes(_) => 1,
            AnyModel::RelativeEntropy(_) => 2,
            AnyModel::MaxEnt(_) => 3,
            AnyModel::DecisionTree(_) => 4,
            AnyModel::Knn(_) => 5,
        }
    }

    /// Append the tagged binary encoding (the `.urlm` MODELS section
    /// stores five of these, in canonical language order).
    pub(crate) fn write_binary(&self, w: &mut urlid_classifiers::ByteWriter) {
        w.write_u8(self.tag());
        match self {
            AnyModel::NaiveBayes(m) => m.write_binary(w),
            AnyModel::RelativeEntropy(m) => m.write_binary(w),
            AnyModel::MaxEnt(m) => m.write_binary(w),
            AnyModel::DecisionTree(m) => m.write_binary(w),
            AnyModel::Knn(m) => m.write_binary(w),
        }
    }

    /// Decode one tagged model.
    pub(crate) fn read_binary(
        r: &mut urlid_classifiers::ByteReader<'_>,
    ) -> Result<Self, urlid_classifiers::CodecError> {
        match r.read_u8("model tag")? {
            1 => Ok(AnyModel::NaiveBayes(NaiveBayes::read_binary(r)?)),
            2 => Ok(AnyModel::RelativeEntropy(RelativeEntropy::read_binary(r)?)),
            3 => Ok(AnyModel::MaxEnt(MaxEnt::read_binary(r)?)),
            4 => Ok(AnyModel::DecisionTree(DecisionTree::read_binary(r)?)),
            5 => Ok(AnyModel::Knn(KNearestNeighbors::read_binary(r)?)),
            _ => Err(urlid_classifiers::CodecError::Invalid {
                what: "unknown model tag",
            }),
        }
    }
}

impl VectorClassifier for AnyModel {
    fn score(&self, features: &SparseVector) -> f64 {
        match self {
            AnyModel::NaiveBayes(m) => m.score(features),
            AnyModel::RelativeEntropy(m) => m.score(features),
            AnyModel::MaxEnt(m) => m.score(features),
            AnyModel::DecisionTree(m) => m.score(features),
            AnyModel::Knn(m) => m.score(features),
        }
    }

    fn as_compile(&self) -> Option<&dyn CompileScorer> {
        match self {
            AnyModel::NaiveBayes(m) => m.as_compile(),
            AnyModel::RelativeEntropy(m) => m.as_compile(),
            AnyModel::MaxEnt(m) => m.as_compile(),
            // Tree traversal and nearest-neighbour search are not dense
            // per-feature data; they stay interpreted in compiled sets.
            AnyModel::DecisionTree(_) | AnyModel::Knn(_) => None,
        }
    }
}

/// A shared fitted extractor paired with one trained model.
pub(crate) struct TrainedUrlClassifier {
    pub(crate) extractor: Arc<AnyExtractor>,
    pub(crate) model: AnyModel,
}

impl UrlClassifier for TrainedUrlClassifier {
    fn classify_url(&self, url: &str) -> bool {
        self.model.classify(&self.extractor.transform(url))
    }
    fn score_url(&self, url: &str) -> f64 {
        self.model.score(&self.extractor.transform(url))
    }
}

/// Collect the positive vectors of `lang` and an equal-size (times
/// `negative_ratio`) random sample of negative vectors.
///
/// Transforms lazily per (language, URL) pair over the index sample of
/// [`sample_indices`] — the same sampling the classifier-set pipeline
/// resolves against its shared vectorize pass, so the two paths cannot
/// drift. Kept for the combination recipes, which mix extractors per
/// language.
pub(crate) fn sample_vectors(
    training: &Dataset,
    extractor: &AnyExtractor,
    lang: Language,
    config: &TrainingConfig,
) -> (Vec<SparseVector>, Vec<SparseVector>) {
    let (pos_idx, neg_idx) = sample_indices(training, lang, config);
    let transform = |indices: &[usize]| {
        indices
            .iter()
            .map(|&i| extractor.transform_training(&training.urls[i]))
            .collect::<Vec<SparseVector>>()
    };
    (transform(&pos_idx), transform(&neg_idx))
}

pub(crate) fn train_model(
    positives: &[SparseVector],
    negatives: &[SparseVector],
    dim: usize,
    config: &TrainingConfig,
) -> AnyModel {
    train_model_jobs(positives, negatives, dim, config, 1)
}

/// [`train_model`] with up to `jobs` workers on the algorithms that
/// parallelise *inside* one language's training (MaxEnt's per-iteration
/// expectation shards). Bit-identical at any `jobs` — the interior
/// shard structure is a constant of the data, never of the job count.
pub(crate) fn train_model_jobs(
    positives: &[SparseVector],
    negatives: &[SparseVector],
    dim: usize,
    config: &TrainingConfig,
    jobs: usize,
) -> AnyModel {
    train_model_observed(positives, negatives, dim, config, jobs, None)
}

/// [`train_model_jobs`] with an optional GIS convergence observer
/// (forwarded to [`MaxEnt::train_jobs_observed`]; ignored by the other
/// algorithms, which have no iterative convergence to watch).
fn train_model_observed(
    positives: &[SparseVector],
    negatives: &[SparseVector],
    dim: usize,
    config: &TrainingConfig,
    jobs: usize,
    observer: Option<&mut dyn FnMut(GisIteration)>,
) -> AnyModel {
    match config.algorithm {
        Algorithm::NaiveBayes => AnyModel::NaiveBayes(NaiveBayes::train(
            positives,
            negatives,
            NaiveBayesConfig::for_dim(dim),
        )),
        Algorithm::RelativeEntropy => AnyModel::RelativeEntropy(RelativeEntropy::train(
            positives,
            negatives,
            RelativeEntropyConfig::for_dim(dim),
        )),
        Algorithm::MaxEnt => AnyModel::MaxEnt(MaxEnt::train_jobs_observed(
            positives,
            negatives,
            MaxEntConfig::with_iterations(dim, config.maxent_iterations),
            jobs,
            observer,
        )),
        Algorithm::DecisionTree => AnyModel::DecisionTree(DecisionTree::train(
            positives,
            negatives,
            DecisionTreeConfig::for_dim(dim),
        )),
        Algorithm::KNearestNeighbors => AnyModel::Knn(KNearestNeighbors::train(
            positives,
            negatives,
            KnnConfig::default(),
        )),
        Algorithm::CcTld | Algorithm::CcTldPlus => {
            unreachable!("ccTLD baselines are handled before feature extraction")
        }
    }
}

/// Train the binary classifier for one language.
pub fn train_language_classifier(
    training: &Dataset,
    lang: Language,
    config: &TrainingConfig,
) -> Box<dyn UrlClassifier> {
    match config.algorithm {
        Algorithm::CcTld | Algorithm::CcTldPlus => {
            return Box::new(CcTldClassifier::for_algorithm(config.algorithm, lang));
        }
        _ => {}
    }
    let mut extractor = AnyExtractor::build(config);
    extractor.fit(&training.urls);
    let (positives, negatives) = sample_vectors(training, &extractor, lang, config);
    let model = train_model(&positives, &negatives, extractor.dim(), config);
    Box::new(TrainedUrlClassifier {
        extractor: Arc::new(extractor),
        model,
    })
}

/// The deterministic negative-sampling schedule: the RNG of language
/// `lang` is a pure function of the configured seed and the language
/// index, independent of jobs, shards or the order languages train in.
fn sampling_rng(config: &TrainingConfig, lang: Language) -> StdRng {
    StdRng::seed_from_u64(config.seed ^ ((lang.index() as u64 + 1) * 0x9E37_79B9))
}

/// Positive indices of `lang` plus the sampled negative indices, into the
/// data-set order. Exactly the index arithmetic of [`sample_vectors`],
/// reproduced over precomputed vectors so the expensive transforms happen
/// once per URL in the sharded vectorize pass instead of once per
/// (language, URL) pair.
fn sample_indices(
    training: &Dataset,
    lang: Language,
    config: &TrainingConfig,
) -> (Vec<usize>, Vec<usize>) {
    let mut rng = sampling_rng(config, lang);
    let mut positives = Vec::new();
    let mut negative_pool = Vec::new();
    for (i, example) in training.urls.iter().enumerate() {
        if example.language == lang {
            positives.push(i);
        } else {
            negative_pool.push(i);
        }
    }
    let target = ((positives.len() as f64) * config.negative_ratio).round() as usize;
    let negatives: Vec<usize> = if negative_pool.len() <= target {
        negative_pool
    } else {
        // Partial Fisher–Yates: draw `target` distinct indices.
        let mut indices: Vec<usize> = (0..negative_pool.len()).collect();
        for i in 0..target {
            let j = rng.random_range(i..indices.len());
            indices.swap(i, j);
        }
        indices[..target]
            .iter()
            .map(|&i| negative_pool[i])
            .collect()
    };
    (positives, negatives)
}

/// Accumulate a [`StatsTrainer`]'s sufficient statistics over the
/// sampled vectors in sampling order. Runs on the language's own thread
/// (the parallelism of the model phase is across languages), so a single
/// in-order accumulator is both the least code and the strongest
/// contract: the fold never depends on the shard structure, making the
/// trained bytes invariant under `--shards` as well as `--jobs`.
fn accumulate_stats<M: StatsTrainer>(
    vectors: &[SparseVector],
    pos_idx: &[usize],
    neg_idx: &[usize],
) -> M::Stats {
    let mut stats = M::Stats::default();
    for &i in pos_idx {
        M::observe(&mut stats, &vectors[i], true);
    }
    for &i in neg_idx {
        M::observe(&mut stats, &vectors[i], false);
    }
    stats
}

/// Train one language's model from the precomputed training vectors.
/// The optional observer watches GIS convergence (Maximum Entropy only;
/// purely observational, see [`MaxEnt::train_jobs_observed`]).
fn train_model_from_vectors(
    vectors: &[SparseVector],
    pos_idx: &[usize],
    neg_idx: &[usize],
    dim: usize,
    config: &TrainingConfig,
    jobs: usize,
    observer: Option<&mut dyn FnMut(GisIteration)>,
) -> AnyModel {
    match config.algorithm {
        // Count-based algorithms fold mergeable statistics — no
        // materialised per-language vector copies at all.
        Algorithm::NaiveBayes => AnyModel::NaiveBayes(NaiveBayes::from_stats(
            accumulate_stats::<NaiveBayes>(vectors, pos_idx, neg_idx),
            NaiveBayesConfig::for_dim(dim),
        )),
        Algorithm::RelativeEntropy => AnyModel::RelativeEntropy(RelativeEntropy::from_stats(
            accumulate_stats::<RelativeEntropy>(vectors, pos_idx, neg_idx),
            RelativeEntropyConfig::for_dim(dim),
        )),
        // The iterative / structural algorithms train on the sampled
        // vectors themselves (gathered in sampling order, which the
        // contiguous shard reduce reproduces exactly).
        _ => {
            let positives: Vec<SparseVector> =
                pos_idx.iter().map(|&i| vectors[i].clone()).collect();
            let negatives: Vec<SparseVector> =
                neg_idx.iter().map(|&i| vectors[i].clone()).collect();
            train_model_observed(&positives, &negatives, dim, config, jobs, observer)
        }
    }
}

/// The shared map-reduce pipeline: sharded extractor fit, sharded
/// vectorize, then the five per-language models trained concurrently.
/// Returns the fitted extractor and the models in canonical language
/// order.
pub(crate) fn train_pipeline(
    training: &Dataset,
    config: &TrainingConfig,
    opts: TrainOptions,
) -> (AnyExtractor, Vec<AnyModel>) {
    let (extractor, models, _) = train_pipeline_impl(training, config, opts, false);
    (extractor, models)
}

/// [`train_pipeline`] plus the full [`TrainTrace`] (per-shard timings
/// *and* GIS convergence observation). Same pipeline, same bits.
pub(crate) fn train_pipeline_traced(
    training: &Dataset,
    config: &TrainingConfig,
    opts: TrainOptions,
) -> (AnyExtractor, Vec<AnyModel>, TrainTrace) {
    train_pipeline_impl(training, config, opts, true)
}

/// The one shared pipeline body. `observe_gis` only gates the GIS
/// convergence *collection* (the per-iteration delta arithmetic in the
/// observer branch); phase and shard timings are measured always —
/// they are a handful of `Instant` reads per training run.
fn train_pipeline_impl(
    training: &Dataset,
    config: &TrainingConfig,
    opts: TrainOptions,
    observe_gis: bool,
) -> (AnyExtractor, Vec<AnyModel>, TrainTrace) {
    let mut trace = TrainTrace::default();
    let pipeline_started = Instant::now();

    let fit_started = Instant::now();
    let mut extractor = AnyExtractor::build(config);
    for shard_micros in extractor.fit_with(training, opts) {
        trace.fit_shard_micros.record(shard_micros);
    }
    trace.fit_micros = duration_micros(fit_started.elapsed());

    // Sharded vectorize against the frozen extractor: one transform per
    // URL, shared by all five binary classifiers.
    let vectorize_started = Instant::now();
    let shards: Vec<&[LabeledUrl]> = training.shards(opts.effective_shards()).collect();
    let shared = &extractor;
    let chunks = par_map(opts.effective_jobs(), &shards, |shard| {
        let started = Instant::now();
        let vectors = shard
            .iter()
            .map(|example| shared.transform_training(example))
            .collect::<Vec<SparseVector>>();
        (vectors, duration_micros(started.elapsed()))
    });
    let mut vectors: Vec<SparseVector> = Vec::with_capacity(training.len());
    for (chunk, shard_micros) in chunks {
        trace.vectorize_shard_micros.record(shard_micros);
        vectors.extend(chunk);
    }
    trace.vectorize_micros = duration_micros(vectorize_started.elapsed());

    let dim = extractor.dim();
    // Languages train concurrently, and the iterative algorithms
    // additionally shard *inside* one language's training (MaxEnt's
    // expectation map-reduce) — both layers bit-identical at any jobs.
    let models_started = Instant::now();
    let results = par_map(opts.effective_jobs(), &ALL_LANGUAGES, |&lang| {
        let language_started = Instant::now();
        let (pos_idx, neg_idx) = sample_indices(training, lang, config);
        let mut iterations: Vec<GisIteration> = Vec::new();
        let model = if observe_gis {
            let mut observe = |it: GisIteration| iterations.push(it);
            train_model_from_vectors(
                &vectors,
                &pos_idx,
                &neg_idx,
                dim,
                config,
                opts.effective_jobs(),
                Some(&mut observe),
            )
        } else {
            train_model_from_vectors(
                &vectors,
                &pos_idx,
                &neg_idx,
                dim,
                config,
                opts.effective_jobs(),
                None,
            )
        };
        (
            model,
            iterations,
            duration_micros(language_started.elapsed()),
        )
    });
    let mut models = Vec::with_capacity(results.len());
    for (lang, (model, iterations, language_micros)) in ALL_LANGUAGES.into_iter().zip(results) {
        trace.language_micros.record(language_micros);
        trace.languages.push((lang, language_micros));
        if !iterations.is_empty() {
            let mut delta_nanos = Histogram::new();
            for it in &iterations {
                delta_nanos.record((it.max_abs_delta * 1e9) as u64);
            }
            trace.gis.push(GisTrace {
                language: lang,
                iterations,
                delta_nanos,
            });
        }
        models.push(model);
    }
    trace.models_micros = duration_micros(models_started.elapsed());
    trace.total_micros = duration_micros(pipeline_started.elapsed());
    (extractor, models, trace)
}

/// Train all five binary classifiers (sharing one fitted extractor).
///
/// The returned set holds the extractor *once* and five
/// [`VectorClassifier`] models, so classification extracts features
/// exactly once per URL and scores all languages from the same vector
/// (the single-pass pipeline).
///
/// Runs the sequential pipeline; [`train_classifier_set_with`] takes
/// explicit [`TrainOptions`].
pub fn train_classifier_set(training: &Dataset, config: &TrainingConfig) -> LanguageClassifierSet {
    train_classifier_set_with(training, config, TrainOptions::serial())
}

/// [`train_classifier_set`] with explicit parallelism options.
///
/// Any `opts` value produces a bit-identical classifier set (see the
/// module docs); the parity is enforced for all fifteen algorithm ×
/// feature recipes by the `training_parity` integration suite.
///
/// The returned set is **compiled** (see
/// [`LanguageClassifierSet::compile`]): its vocabulary is interned into
/// the arena form and the lowerable models fused into the dense scoring
/// plane. Compiled scores are bit-identical to the interpreted oracle,
/// which stays reachable via
/// [`LanguageClassifierSet::score_all_interpreted`].
pub fn train_classifier_set_with(
    training: &Dataset,
    config: &TrainingConfig,
    opts: TrainOptions,
) -> LanguageClassifierSet {
    match config.algorithm {
        Algorithm::CcTld | Algorithm::CcTldPlus => {
            return LanguageClassifierSet::build(|lang| {
                Box::new(CcTldClassifier::for_algorithm(config.algorithm, lang))
            });
        }
        _ => {}
    }
    let (extractor, models) = train_pipeline(training, config, opts);
    let extractor = Arc::new(extractor);
    let mut per_lang: Vec<Option<AnyModel>> = models.into_iter().map(Some).collect();
    let mut set = LanguageClassifierSet::build_vector(Arc::clone(&extractor) as _, |lang| {
        let model = per_lang[lang.index()]
            .take()
            .expect("pipeline trains one model per language");
        Box::new(model) as Box<dyn VectorClassifier>
    });
    set.compile();
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use urlid_corpus::{odp_dataset, CorpusScale, UrlGenerator};
    use urlid_eval::evaluate_classifier_set;

    fn tiny_corpus() -> (Dataset, Dataset) {
        let mut g = UrlGenerator::new(11);
        let odp = odp_dataset(&mut g, CorpusScale::tiny());
        (odp.train, odp.test)
    }

    #[test]
    fn naive_bayes_words_learns_the_task() {
        let (train, test) = tiny_corpus();
        let set = train_classifier_set(&train, &TrainingConfig::paper_best());
        let result = evaluate_classifier_set(&set, &test);
        assert!(
            result.mean_f_measure() > 0.70,
            "NB+words should reach a reasonable F even on a tiny corpus, got {:.3}",
            result.mean_f_measure()
        );
    }

    #[test]
    fn every_algorithm_and_feature_set_trains_and_beats_chance() {
        let (train, test) = tiny_corpus();
        for feature_set in [
            FeatureSetKind::Words,
            FeatureSetKind::Trigrams,
            FeatureSetKind::Custom,
        ] {
            for algorithm in [Algorithm::NaiveBayes, Algorithm::RelativeEntropy] {
                let config = TrainingConfig::new(feature_set, algorithm);
                let set = train_classifier_set(&train, &config);
                let result = evaluate_classifier_set(&set, &test);
                assert!(
                    result.mean_f_measure() > 0.40,
                    "{feature_set:?}/{algorithm:?} too weak: {:.3}",
                    result.mean_f_measure()
                );
            }
        }
    }

    #[test]
    fn cctld_configs_skip_feature_training() {
        let (train, test) = tiny_corpus();
        let set = train_classifier_set(
            &train,
            &TrainingConfig::new(FeatureSetKind::Words, Algorithm::CcTld),
        );
        let result = evaluate_classifier_set(&set, &test);
        // High precision, poor recall for English (the paper's Table 4).
        let en = result.metrics(Language::English);
        assert!(en.precision > 0.8);
        assert!(en.recall < 0.4);
    }

    #[test]
    fn single_language_classifier_agrees_with_set() {
        let (train, _test) = tiny_corpus();
        let config = TrainingConfig::paper_best();
        let set = train_classifier_set(&train, &config);
        let single = train_language_classifier(&train, Language::German, &config);
        // Same training data, same seed: decisions must agree.
        for url in [
            "http://www.wetter-nachrichten.de/berlin",
            "http://www.weather-news.co.uk/london",
        ] {
            assert_eq!(
                single.classify_url(url),
                set.classify(url, Language::German),
                "{url}"
            );
        }
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let (train, test) = tiny_corpus();
        let config = TrainingConfig::paper_best().with_seed(7);
        let a = evaluate_classifier_set(&train_classifier_set(&train, &config), &test);
        let b = evaluate_classifier_set(&train_classifier_set(&train, &config), &test);
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn parallel_training_is_bit_identical_to_single_job() {
        let (train, _test) = tiny_corpus();
        for feature_set in [
            FeatureSetKind::Words,
            FeatureSetKind::Trigrams,
            FeatureSetKind::Custom,
        ] {
            let config = TrainingConfig::new(feature_set, Algorithm::NaiveBayes);
            let opts1 = TrainOptions { jobs: 1, shards: 5 };
            let opts4 = TrainOptions { jobs: 4, shards: 5 };
            let a = crate::ModelBundle::train_with(&train, &config, opts1).unwrap();
            let b = crate::ModelBundle::train_with(&train, &config, opts4).unwrap();
            assert_eq!(
                a.to_json().unwrap(),
                b.to_json().unwrap(),
                "{feature_set:?}: jobs=1 and jobs=4 diverge at shards=5"
            );
        }
    }

    #[test]
    fn pipeline_matches_the_lazily_transformed_construction() {
        // The pipeline samples *indices* into one shared vectorize pass;
        // the combination recipes still use `sample_vectors`, which
        // transforms lazily per (language, URL) pair with the same RNG
        // schedule. If the two ever drift — RNG consumption, ordering,
        // transform choice — this catches it bit-for-bit.
        let (train, _test) = tiny_corpus();
        for config in [
            TrainingConfig::paper_best(),
            TrainingConfig::new(FeatureSetKind::Trigrams, Algorithm::RelativeEntropy),
        ] {
            let (extractor, models) = train_pipeline(&train, &config, TrainOptions::serial());
            let mut reference = AnyExtractor::build(&config);
            reference.fit(&train.urls);
            assert_eq!(
                serde_json::to_string(&extractor).unwrap(),
                serde_json::to_string(&reference).unwrap(),
                "{:?}: sharded fit diverges from FeatureExtractor::fit",
                config.feature_set
            );
            for lang in ALL_LANGUAGES {
                let (positives, negatives) = sample_vectors(&train, &reference, lang, &config);
                let expected = train_model(&positives, &negatives, reference.dim(), &config);
                assert_eq!(
                    serde_json::to_string(&models[lang.index()]).unwrap(),
                    serde_json::to_string(&expected).unwrap(),
                    "{:?}/{:?}: pipeline model diverges for {lang}",
                    config.feature_set,
                    config.algorithm
                );
            }
        }
    }

    #[test]
    fn traced_training_matches_untraced() {
        let (train, _test) = tiny_corpus();
        let config =
            TrainingConfig::new(FeatureSetKind::Words, Algorithm::MaxEnt).with_maxent_iterations(3);
        let opts = TrainOptions { jobs: 2, shards: 5 };
        let (plain_extractor, plain_models) = train_pipeline(&train, &config, opts);
        let (traced_extractor, traced_models, trace) = train_pipeline_traced(&train, &config, opts);
        assert_eq!(
            serde_json::to_string(&plain_extractor).unwrap(),
            serde_json::to_string(&traced_extractor).unwrap(),
            "tracing must not change the fitted extractor"
        );
        for (lang, (a, b)) in ALL_LANGUAGES
            .into_iter()
            .zip(plain_models.iter().zip(&traced_models))
        {
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap(),
                "tracing must not change the {lang} model"
            );
        }
        // The trace is fully populated: one sample per shard and phase.
        assert_eq!(trace.fit_shard_micros.count(), 5);
        assert_eq!(trace.vectorize_shard_micros.count(), 5);
        assert_eq!(trace.language_micros.count(), ALL_LANGUAGES.len() as u64);
        assert_eq!(trace.languages.len(), ALL_LANGUAGES.len());
        assert!(trace.total_micros >= trace.models_micros);
        // MaxEnt: every language converged over the configured iterations.
        assert_eq!(trace.gis.len(), ALL_LANGUAGES.len());
        for gis in &trace.gis {
            assert_eq!(gis.iterations.len(), 3);
            assert_eq!(gis.delta_nanos.count(), 3);
        }
        let report = trace.render();
        assert!(report.contains("training trace"), "{report}");
        assert!(report.contains("gis en"), "{report}");
    }

    #[test]
    fn non_iterative_algorithms_produce_no_gis_trace() {
        let (train, _test) = tiny_corpus();
        let (_, _, trace) = train_pipeline_traced(
            &train,
            &TrainingConfig::paper_best(),
            TrainOptions::serial(),
        );
        assert!(trace.gis.is_empty());
        assert_eq!(trace.fit_shard_micros.count(), 1);
        assert!(!trace.render().contains("gis"));
    }

    #[test]
    fn train_options_resolve_defaults() {
        assert_eq!(TrainOptions::default(), TrainOptions::serial());
        assert_eq!(TrainOptions::serial().effective_shards(), 1);
        assert_eq!(TrainOptions::with_jobs(3).jobs, 3);
        assert_eq!(
            TrainOptions::with_jobs(3).effective_shards(),
            DEFAULT_TRAIN_SHARDS
        );
        assert_eq!(TrainOptions::auto().with_shards(7).effective_shards(), 7);
        assert!(TrainOptions::auto().effective_jobs() >= 1);
    }

    #[test]
    fn sharded_set_still_learns_the_task() {
        let (train, test) = tiny_corpus();
        let set = train_classifier_set_with(
            &train,
            &TrainingConfig::paper_best(),
            TrainOptions { jobs: 2, shards: 7 },
        );
        let result = evaluate_classifier_set(&set, &test);
        assert!(
            result.mean_f_measure() > 0.70,
            "sharded NB+words should learn, got {:.3}",
            result.mean_f_measure()
        );
    }

    #[test]
    fn builder_methods_set_fields() {
        let c = TrainingConfig::new(FeatureSetKind::Custom, Algorithm::DecisionTree)
            .with_seed(9)
            .with_full_custom_features()
            .with_maxent_iterations(2)
            .with_training_content();
        assert_eq!(c.seed, 9);
        assert_eq!(c.custom_features, CustomFeatureSet::Full74);
        assert_eq!(c.maxent_iterations, 2);
        assert!(c.use_training_content);
    }
}
