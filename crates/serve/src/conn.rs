//! The per-connection state machine the reactor drives.
//!
//! A [`Conn`] owns one non-blocking socket, an incremental
//! [`RequestParser`], and an outbound queue of response segments
//! flushed with vectored writes. It never blocks and
//! never touches a thread of its own — the reactor calls in when the
//! poller reports readiness, and the scoring pool's finished responses
//! arrive through [`Conn::complete`]. The request lifecycle:
//!
//! ```text
//!          readable                    parser yields a request
//!   Idle ───────────► feed parser ───────────────────────────► InFlight
//!    ▲                                                            │
//!    │  output drained (keep-alive; parse any pipelined request)  │
//!    └─────────────────────────── write response ◄────────────────┘
//!                                                  Conn::complete
//! ```
//!
//! Only one request per connection is in flight at a time: while a
//! request is dispatched, arriving bytes are buffered but not parsed,
//! which both preserves response ordering for pipelined clients and
//! bounds the per-connection memory (a flood past the cap closes the
//! connection). Malformed or oversized input gets a `400`/`413` written
//! out and the connection closed — a misbehaving peer can never panic
//! or wedge anything.

use crate::http::{self, HttpError, ParserLimits, Request, RequestParser};
use crate::metrics::{ReactorStats, TRACE_STRIPES};
use crate::server::{error_body, ServerState};
use crate::sys::{Backend, Interest};
use std::collections::VecDeque;
use std::io::{self, IoSlice};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;
use urlid_telemetry::Stage;

/// Upper bound on the iovecs of one vectored write (Linux caps a single
/// `writev` at `IOV_MAX` = 1024; sixteen covers any realistic pipelining
/// burst while keeping the stack frame small).
const MAX_WRITE_SEGMENTS: usize = 16;

/// Pending response bytes, kept as a queue of whole-response segments so
/// pipelined responses flush through one vectored write instead of being
/// memmoved into a single growing buffer first.
#[derive(Default)]
struct OutQueue {
    segments: VecDeque<Vec<u8>>,
    /// How much of the front segment has already been written.
    head_pos: usize,
    /// Total unwritten bytes across all segments.
    unwritten: usize,
}

impl OutQueue {
    fn is_empty(&self) -> bool {
        self.unwritten == 0
    }

    fn push(&mut self, bytes: Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        self.unwritten += bytes.len();
        self.segments.push_back(bytes);
    }

    /// Gather up to [`MAX_WRITE_SEGMENTS`] segment tails into `slices`;
    /// returns how many were filled.
    fn gather<'a>(&'a self, slices: &mut [IoSlice<'a>; MAX_WRITE_SEGMENTS]) -> usize {
        let mut count = 0;
        for (i, segment) in self.segments.iter().enumerate() {
            if count == MAX_WRITE_SEGMENTS {
                break;
            }
            let tail = if i == 0 {
                &segment[self.head_pos..]
            } else {
                &segment[..]
            };
            slices[count] = IoSlice::new(tail);
            count += 1;
        }
        count
    }

    /// Account `written` bytes accepted by the kernel, dropping fully
    /// flushed segments.
    fn consume(&mut self, mut written: usize) {
        self.unwritten -= written.min(self.unwritten);
        while written > 0 {
            let Some(front) = self.segments.front() else {
                return;
            };
            let remaining = front.len() - self.head_pos;
            if written >= remaining {
                written -= remaining;
                self.head_pos = 0;
                self.segments.pop_front();
            } else {
                self.head_pos += written;
                return;
            }
        }
    }
}

/// What the reactor should do after driving a connection.
#[derive(Debug)]
pub(crate) enum Step {
    /// Nothing to hand off; keep the connection registered.
    Continue,
    /// A complete request was parsed — dispatch it to the scoring pool,
    /// tagged with its freshly assigned request id (correlates the
    /// stage spans of this request). The connection is now in flight
    /// and will not parse further input until [`Conn::complete`]
    /// delivers the response.
    Dispatch(Request, u64),
    /// The connection is finished (peer closed, fatal error, or final
    /// response flushed) — deregister and drop it.
    Close,
}

/// Where the connection is in the request lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for (or incrementally parsing) the next request.
    Idle,
    /// A request has been dispatched to the scoring pool.
    InFlight,
}

/// One client connection: socket, parser, pending output.
pub(crate) struct Conn {
    stream: TcpStream,
    /// This connection's generation-tagged slab token — the identity
    /// under which its socket is registered with the I/O backend (the
    /// uring engine keys its per-connection staging by it; readiness
    /// engines ignore it).
    token: u64,
    /// Shared server state, for the error counter (protocol-level
    /// `400`/`413` rejections bypass the router but must still count).
    state: Arc<ServerState>,
    /// The owning reactor's private stats: connection gauges plus the
    /// parse/write stage histograms recorded on the reactor thread.
    stats: Arc<ReactorStats>,
    /// Index of the owning reactor — a connection is driven by exactly
    /// one reactor for its whole life, so this never changes (the
    /// `X-Urlid-Reactor` response header makes that observable).
    reactor: usize,
    parser: RequestParser,
    /// Response segments not yet accepted by the kernel, flushed with
    /// vectored writes (one `writev` covers a whole pipelining burst).
    out: OutQueue,
    phase: Phase,
    /// Close once the output queue drains (error responses,
    /// `Connection: close`, shutdown drain).
    close_after_write: bool,
    /// The peer half-closed its write side (EOF seen).
    peer_closed: bool,
    /// Hard cap on buffered inbound bytes (see module docs).
    buffer_cap: usize,
    /// Last moment bytes moved on this connection (idle-eviction clock).
    last_activity: Instant,
    /// Parser CPU spent on the request currently being assembled,
    /// accumulated across reads (becomes the parse-stage span when the
    /// request completes — or when it is rejected).
    parse_accum_micros: u64,
    /// When the first byte of the request being assembled arrived;
    /// protocol rejects record their latency sample from this clock
    /// (dispatched requests switch to the reactor's dispatch clock).
    request_started: Option<Instant>,
}

impl Conn {
    /// Adopt an accepted stream: non-blocking, Nagle off.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        stream: TcpStream,
        token: u64,
        limits: ParserLimits,
        state: Arc<ServerState>,
        stats: Arc<ReactorStats>,
        reactor: usize,
        now: Instant,
    ) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        // Sub-millisecond responses: don't let Nagle batch them.
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            token,
            state,
            stats,
            reactor,
            parser: RequestParser::new(limits),
            out: OutQueue::default(),
            phase: Phase::Idle,
            close_after_write: false,
            peer_closed: false,
            // Generous: a full head plus a full body for the parsed
            // request and the same again for pipelined readahead.
            buffer_cap: 2 * (limits.max_header_bytes + limits.max_body_bytes),
            last_activity: now,
            parse_accum_micros: 0,
            request_started: None,
        })
    }

    /// The socket (the reactor needs its fd for poller registration).
    pub(crate) fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Trace-ring stripe for this connection's reactor-thread spans
    /// (pool workers use `1 + worker_index % 7`; a stripe collision
    /// between a reactor and a worker costs a dropped span at worst).
    fn stripe(&self) -> usize {
        self.reactor % TRACE_STRIPES
    }

    /// Which readiness events this connection currently needs. Read
    /// interest stays on for the connection's whole life (cheap
    /// peer-close detection, no per-request `epoll_ctl` churn) — until
    /// the peer half-closes: a level-triggered poller reports an
    /// EOF-readable socket forever, so read interest must drop with
    /// `peer_closed` or a client that sends-then-`shutdown(WR)`s while
    /// its request is in the scoring pool would spin the reactor.
    /// Write interest only while output is pending.
    pub(crate) fn interest(&self) -> Interest {
        Interest {
            read: !self.peer_closed,
            write: !self.out.is_empty(),
        }
    }

    /// True while a request is dispatched to the scoring pool (such a
    /// connection is never idle-evicted — the clock is on the pool).
    pub(crate) fn in_flight(&self) -> bool {
        self.phase == Phase::InFlight
    }

    /// Last moment bytes moved on this connection.
    pub(crate) fn last_activity(&self) -> Instant {
        self.last_activity
    }

    /// Shutdown drain triage: an idle connection with nothing queued
    /// closes immediately (returns `true`; a partially received request
    /// dies with it — the server is going away and a partial stream
    /// cannot be resynchronised anyway). A connection whose request is
    /// in flight, or whose response is still flushing, is marked to
    /// close the moment its output drains.
    pub(crate) fn begin_drain(&mut self) -> bool {
        self.close_after_write = true;
        self.phase == Phase::Idle && self.out.is_empty()
    }

    /// The poller says the socket is readable: pull bytes into the
    /// parser, then (when idle) try to produce the next request.
    ///
    /// At most one short read per event: the poller is level-triggered,
    /// so anything left in the socket buffer re-reports immediately —
    /// no need to read until `WouldBlock` (that second, empty syscall
    /// per request is measurable at six-figure request rates). Only a
    /// completely full chunk keeps reading, to drain large bodies in
    /// fewer loop iterations.
    pub(crate) fn on_readable(&mut self, io: &mut dyn Backend, now: Instant) -> Step {
        let mut chunk = [0u8; 8192];
        loop {
            match io.read(self.token, &self.stream, &mut chunk) {
                Ok(0) => {
                    self.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    self.parser.feed(&chunk[..n]);
                    if self.request_started.is_none() && self.phase == Phase::Idle {
                        self.request_started = Some(now);
                    }
                    self.last_activity = now;
                    if self.parser.buffered() > self.buffer_cap {
                        // Flooding while a request is in flight: drop
                        // the peer rather than buffer without bound.
                        return Step::Close;
                    }
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Step::Close,
            }
        }
        self.advance(io, now)
    }

    /// The poller says the socket is writable: flush pending output.
    pub(crate) fn on_writable(&mut self, io: &mut dyn Backend, now: Instant) -> Step {
        match self.flush_output(io, now) {
            Ok(()) => self.advance(io, now),
            Err(_) => Step::Close,
        }
    }

    /// The scoring pool finished the in-flight request: queue the
    /// response and push the lifecycle forward (write what the socket
    /// accepts now; parse the next pipelined request if one is already
    /// buffered). The write-stage span covers the immediate flush pass
    /// — what the kernel accepts now; a backpressure remainder drains
    /// on later writable events and is not re-counted.
    pub(crate) fn complete(
        &mut self,
        io: &mut dyn Backend,
        response: Vec<u8>,
        keep_alive: bool,
        request_id: u64,
        now: Instant,
    ) -> Step {
        debug_assert!(self.phase == Phase::InFlight, "completion without dispatch");
        self.phase = Phase::Idle;
        if !keep_alive {
            self.close_after_write = true;
        }
        self.queue_bytes(response);
        self.last_activity = now;
        let write_started = Instant::now();
        let flushed = self.flush_output(io, now);
        let metrics = self.state.metrics();
        metrics.record_stage_into(
            &self.stats.write,
            self.stripe(),
            request_id,
            Stage::Write,
            urlid_telemetry::duration_micros(write_started.elapsed()),
        );
        if flushed.is_err() {
            return Step::Close;
        }
        self.advance(io, now)
    }

    /// Queue a response for writing (whole segments; never memmoved).
    fn queue_bytes(&mut self, bytes: Vec<u8>) {
        self.out.push(bytes);
    }

    /// Write as much pending output as the kernel accepts: every pass
    /// gathers the queued response segments into one vectored write, so
    /// a burst of pipelined responses costs one `writev` syscall instead
    /// of one `write` per response.
    fn flush_output(&mut self, io: &mut dyn Backend, now: Instant) -> io::Result<()> {
        while !self.out.is_empty() {
            let written = {
                let mut slices = [IoSlice::new(&[]); MAX_WRITE_SEGMENTS];
                let count = self.out.gather(&mut slices);
                match io.write_vectored(self.token, &self.stream, &slices[..count]) {
                    Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            self.out.consume(written);
            self.last_activity = now;
        }
        Ok(())
    }

    /// Drive the state machine as far as it goes without new events:
    /// flush output, then either finish (close-after-write), parse the
    /// next buffered request, or wait for more bytes.
    fn advance(&mut self, io: &mut dyn Backend, now: Instant) -> Step {
        if self.flush_output(io, now).is_err() {
            return Step::Close;
        }
        if !self.out.is_empty() {
            // Output still pending: everything else waits for the
            // socket to accept it (write interest is now on).
            return Step::Continue;
        }
        if self.close_after_write {
            return Step::Close;
        }
        if self.phase == Phase::InFlight {
            return Step::Continue;
        }
        let parse_started = Instant::now();
        let parsed = self.parser.next_request();
        self.parse_accum_micros = self
            .parse_accum_micros
            .saturating_add(urlid_telemetry::duration_micros(parse_started.elapsed()));
        match parsed {
            Ok(Some(request)) => {
                let metrics = self.state.metrics();
                let request_id = metrics.next_request_id();
                let parse_micros = std::mem::take(&mut self.parse_accum_micros);
                metrics.record_stage_into(
                    &self.stats.parse,
                    self.stripe(),
                    request_id,
                    Stage::Parse,
                    parse_micros,
                );
                // Dispatched: the end-to-end latency clock is the
                // reactor's dispatch timestamp from here on.
                self.request_started = None;
                self.phase = Phase::InFlight;
                Step::Dispatch(request, request_id)
            }
            Ok(None) => {
                if self.peer_closed {
                    // Clean EOF at a request boundary — or a peer that
                    // gave up mid-request; either way nothing more can
                    // be served.
                    Step::Close
                } else {
                    Step::Continue
                }
            }
            Err(HttpError::Malformed(m)) => self.reject(io, 400, &m, now),
            Err(HttpError::TooLarge(m)) => self.reject(io, 413, &m, now),
            Err(HttpError::Io(_)) => Step::Close,
        }
    }

    /// Answer a protocol violation with an error response and close.
    /// (The parse error left the stream unsynchronisable, so the
    /// connection cannot be reused.)
    fn reject(&mut self, io: &mut dyn Backend, status: u16, message: &str, now: Instant) -> Step {
        // These rejections never reach the router, but they are error
        // responses all the same — the /metrics errors counter must
        // see the abuse the parser limits exist to surface. The same
        // goes for the latency and parse-stage histograms: a reject
        // spent real wall time and parser CPU, and dropping those
        // samples would flatter the percentiles exactly when the
        // server is being abused.
        let metrics = self.state.metrics();
        metrics.errors.fetch_add(1, Ordering::Relaxed);
        let total_micros = self
            .request_started
            .take()
            .map(|started| urlid_telemetry::duration_micros(started.elapsed()))
            .unwrap_or(0);
        metrics.record_latency(total_micros);
        let parse_micros = std::mem::take(&mut self.parse_accum_micros);
        let request_id = metrics.next_request_id();
        metrics.record_stage_into(
            &self.stats.parse,
            self.stripe(),
            request_id,
            Stage::Parse,
            parse_micros,
        );
        self.close_after_write = true;
        self.queue_bytes(http::response_bytes(status, &error_body(message), false));
        if self.flush_output(io, now).is_err() || self.out.is_empty() {
            return Step::Close;
        }
        Step::Continue
    }

    /// Admission control tripped: the owning reactor is at its
    /// in-flight limit, so answer `503` right here on the reactor
    /// thread — the scoring pool never sees the request, which is the
    /// point: rejecting must stay cheap when the server is drowning.
    /// Unlike protocol rejects the connection stays usable (the stream
    /// is still synchronised), so keep-alive is honoured and the
    /// client can retry on the same connection.
    ///
    /// The reject counts in the per-reactor `admission_rejects`
    /// counter, not in `errors` and not in the latency histogram:
    /// shedding load in microseconds is the mechanism working, and
    /// folding those near-zero samples into the latency percentiles
    /// would flatter them exactly when the server is overloaded. The
    /// load generator measures overload latency from the client side.
    pub(crate) fn reject_overload(
        &mut self,
        io: &mut dyn Backend,
        keep_alive: bool,
        now: Instant,
    ) -> Step {
        debug_assert!(self.phase == Phase::InFlight, "overload without dispatch");
        self.phase = Phase::Idle;
        self.stats.admission_rejects.fetch_add(1, Ordering::Relaxed);
        if !keep_alive {
            self.close_after_write = true;
        }
        self.queue_bytes(http::response_bytes_from_reactor(
            503,
            "application/json",
            &error_body("server overloaded, retry"),
            keep_alive,
            self.reactor as u64,
        ));
        if self.flush_output(io, now).is_err() {
            return Step::Close;
        }
        self.advance(io, now)
    }
}
