//! Sparse feature vectors.
//!
//! URLs are short (a handful of tokens, a few dozen trigrams), while the
//! word/trigram feature spaces learnt from hundreds of thousands of
//! training URLs have hundreds of thousands of dimensions. All extractors
//! therefore produce [`SparseVector`]s: sorted `(index, value)` pairs.
//!
//! The classifiers need only a few operations on these vectors: iteration,
//! dot products with dense weight vectors, L1 normalisation (the Relative
//! Entropy classifier converts each vector into a probability
//! distribution) and accumulation into dense per-class statistics.

use serde::{Deserialize, Serialize};

/// A sparse vector of non-negative feature values, stored as sorted
/// `(index, value)` pairs with unique indices.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SparseVector {
    entries: Vec<(u32, f64)>,
}

impl SparseVector {
    /// An empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from arbitrary (possibly repeated, unsorted) index/value
    /// pairs; repeated indices are summed, zero values dropped.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (u32, f64)>,
    {
        let mut entries: Vec<(u32, f64)> = pairs.into_iter().collect();
        entries.sort_unstable_by_key(|(i, _)| *i);
        let mut merged: Vec<(u32, f64)> = Vec::with_capacity(entries.len());
        for (i, v) in entries {
            match merged.last_mut() {
                Some((last_i, last_v)) if *last_i == i => *last_v += v,
                _ => merged.push((i, v)),
            }
        }
        merged.retain(|(_, v)| *v != 0.0);
        Self { entries: merged }
    }

    /// Build by counting occurrences of indices.
    pub fn from_counts<I>(indices: I) -> Self
    where
        I: IntoIterator<Item = u32>,
    {
        Self::from_pairs(indices.into_iter().map(|i| (i, 1.0)))
    }

    /// Build by counting the indices in a caller-owned buffer, sorting it
    /// in place. Produces exactly the same vector as
    /// [`SparseVector::from_counts`] on the same indices, but lets the hot
    /// path reuse one buffer across URLs instead of collecting a fresh
    /// iterator chain.
    pub fn from_index_buffer(indices: &mut [u32]) -> Self {
        indices.sort_unstable();
        let mut entries: Vec<(u32, f64)> = Vec::with_capacity(indices.len());
        for &i in indices.iter() {
            match entries.last_mut() {
                Some((last, count)) if *last == i => *count += 1.0,
                _ => entries.push((i, 1.0)),
            }
        }
        Self { entries }
    }

    /// Rebuild this vector in place by counting the indices in a
    /// caller-owned buffer, sorting it in place. Produces exactly the
    /// same vector as [`SparseVector::from_index_buffer`] on the same
    /// indices, but reuses this vector's entry storage — the steady
    /// state of a warm scoring loop allocates nothing here.
    pub fn refill_from_index_buffer(&mut self, indices: &mut [u32]) {
        indices.sort_unstable();
        self.entries.clear();
        for &i in indices.iter() {
            match self.entries.last_mut() {
                Some((last, count)) if *last == i => *count += 1.0,
                _ => self.entries.push((i, 1.0)),
            }
        }
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Is the vector all-zero?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(index, value)` pairs in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// The value at `index` (0.0 if absent).
    pub fn get(&self, index: u32) -> f64 {
        match self.entries.binary_search_by_key(&index, |(i, _)| *i) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Sum of all values (the L1 norm, since values are non-negative).
    pub fn l1_norm(&self) -> f64 {
        self.entries.iter().map(|(_, v)| v.abs()).sum()
    }

    /// Sum of all values.
    pub fn sum(&self) -> f64 {
        self.entries.iter().map(|(_, v)| v).sum()
    }

    /// Largest index present plus one (0 for the empty vector). The true
    /// dimensionality is owned by the extractor; this is a lower bound.
    pub fn min_dim(&self) -> usize {
        self.entries
            .last()
            .map(|(i, _)| *i as usize + 1)
            .unwrap_or(0)
    }

    /// Return a copy normalised to unit L1 norm (a probability
    /// distribution over feature indices). The empty vector stays empty.
    pub fn l1_normalized(&self) -> Self {
        let norm = self.l1_norm();
        if norm == 0.0 {
            return self.clone();
        }
        Self {
            entries: self.entries.iter().map(|(i, v)| (*i, v / norm)).collect(),
        }
    }

    /// Dot product with a dense weight vector (indices beyond the dense
    /// vector's length contribute 0).
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        self.entries
            .iter()
            .filter_map(|(i, v)| dense.get(*i as usize).map(|w| w * v))
            .sum()
    }

    /// Accumulate `scale * self` into a dense vector, growing it if needed.
    pub fn add_to_dense(&self, dense: &mut Vec<f64>, scale: f64) {
        if let Some((max_i, _)) = self.entries.last() {
            if dense.len() <= *max_i as usize {
                dense.resize(*max_i as usize + 1, 0.0);
            }
        }
        for (i, v) in &self.entries {
            dense[*i as usize] += scale * v;
        }
    }

    /// Convert to a dense vector of the given dimensionality. Entries with
    /// index ≥ `dim` are dropped.
    pub fn to_dense(&self, dim: usize) -> Vec<f64> {
        let mut out = vec![0.0; dim];
        for (i, v) in &self.entries {
            if (*i as usize) < dim {
                out[*i as usize] = *v;
            }
        }
        out
    }

    /// Element-wise addition of two sparse vectors.
    pub fn add(&self, other: &SparseVector) -> SparseVector {
        SparseVector::from_pairs(self.iter().chain(other.iter()))
    }
}

impl FromIterator<(u32, f64)> for SparseVector {
    fn from_iter<T: IntoIterator<Item = (u32, f64)>>(iter: T) -> Self {
        Self::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_merges_and_sorts() {
        let v = SparseVector::from_pairs(vec![(5, 1.0), (2, 2.0), (5, 3.0), (7, 0.0)]);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.get(5), 4.0);
        assert_eq!(v.get(2), 2.0);
        assert_eq!(v.get(7), 0.0);
        assert_eq!(v.get(100), 0.0);
        let indices: Vec<u32> = v.iter().map(|(i, _)| i).collect();
        assert_eq!(indices, vec![2, 5]);
    }

    #[test]
    fn from_counts_counts_occurrences() {
        let v = SparseVector::from_counts(vec![1, 3, 1, 1, 2]);
        assert_eq!(v.get(1), 3.0);
        assert_eq!(v.get(2), 1.0);
        assert_eq!(v.get(3), 1.0);
        assert_eq!(v.sum(), 5.0);
    }

    #[test]
    fn l1_normalization_produces_distribution() {
        let v = SparseVector::from_pairs(vec![(0, 1.0), (1, 3.0)]);
        let n = v.l1_normalized();
        assert!((n.l1_norm() - 1.0).abs() < 1e-12);
        assert!((n.get(1) - 0.75).abs() < 1e-12);
        // Empty vector stays empty without panicking.
        assert!(SparseVector::new().l1_normalized().is_empty());
    }

    #[test]
    fn dot_dense_ignores_out_of_range() {
        let v = SparseVector::from_pairs(vec![(0, 2.0), (3, 1.0), (10, 5.0)]);
        let dense = vec![1.0, 1.0, 1.0, 4.0];
        assert_eq!(v.dot_dense(&dense), 2.0 + 4.0);
    }

    #[test]
    fn add_to_dense_grows_vector() {
        let v = SparseVector::from_pairs(vec![(2, 1.0), (5, 2.0)]);
        let mut dense = vec![1.0, 1.0];
        v.add_to_dense(&mut dense, 2.0);
        assert_eq!(dense, vec![1.0, 1.0, 2.0, 0.0, 0.0, 4.0]);
    }

    #[test]
    fn to_dense_and_min_dim() {
        let v = SparseVector::from_pairs(vec![(1, 1.0), (4, 2.0)]);
        assert_eq!(v.min_dim(), 5);
        assert_eq!(v.to_dense(6), vec![0.0, 1.0, 0.0, 0.0, 2.0, 0.0]);
        assert_eq!(v.to_dense(3), vec![0.0, 1.0, 0.0]);
        assert_eq!(SparseVector::new().min_dim(), 0);
    }

    #[test]
    fn add_is_elementwise() {
        let a = SparseVector::from_pairs(vec![(0, 1.0), (2, 1.0)]);
        let b = SparseVector::from_pairs(vec![(2, 2.0), (3, 4.0)]);
        let c = a.add(&b);
        assert_eq!(c.get(0), 1.0);
        assert_eq!(c.get(2), 3.0);
        assert_eq!(c.get(3), 4.0);
        assert_eq!(c.nnz(), 3);
    }

    #[test]
    fn refill_matches_from_index_buffer_and_reuses_storage() {
        let mut v = SparseVector::new();
        for raw in [
            vec![],
            vec![7u32],
            vec![3, 1, 3, 3, 2],
            vec![9, 9, 9, 9],
            vec![0, 1],
        ] {
            let mut a = raw.clone();
            let mut b = raw.clone();
            v.refill_from_index_buffer(&mut a);
            assert_eq!(v, SparseVector::from_index_buffer(&mut b), "{raw:?}");
        }
        // After the first non-trivial refill the storage is warm: a
        // same-size refill must not grow capacity.
        let capacity = v.entries.capacity();
        v.refill_from_index_buffer(&mut [4, 4, 1]);
        assert_eq!(v.entries.capacity(), capacity);
        assert_eq!(v.get(4), 2.0);
    }

    #[test]
    fn serde_round_trip() {
        let v = SparseVector::from_counts(vec![0, 0, 9]);
        let json = serde_json::to_string(&v).unwrap();
        let back: SparseVector = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
