//! Training-size sweeps (Figure 2) and domain-memorisation analysis
//! (Figure 3).
//!
//! Section 6 of the paper varies the amount of training data from 0.1 %
//! to 100 % of the ≈1.2 M available URLs and shows (1) that the choice of
//! feature set matters more than the choice of algorithm, (2) that
//! trigrams win in the low-data regime while words win once enough data is
//! available, and (3) how much of the word-feature advantage is explained
//! by memorising domain names.

use crate::evaluate::EvaluationResult;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use urlid_features::Dataset;
use urlid_tokenize::ParsedUrl;

/// The fractions of training data used by Figure 2 of the paper
/// (0.1 %, 1 %, 10 %, 100 %).
pub const PAPER_TRAINING_FRACTIONS: [f64; 4] = [0.001, 0.01, 0.1, 1.0];

/// One point of a training-size sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Fraction of the training data used (0, 1].
    pub fraction: f64,
    /// Number of training URLs actually used.
    pub training_urls: usize,
    /// Evaluation on the test set with a model trained on that fraction.
    pub result: EvaluationResult,
}

impl SweepPoint {
    /// Convenience: the macro-averaged F-measure of this point.
    pub fn mean_f_measure(&self) -> f64 {
        self.result.mean_f_measure()
    }
}

/// Run a training-size sweep: for each fraction, take that fraction of the
/// (per-language stratified) training set, train via `trainer`, and
/// evaluate on `test`.
///
/// `trainer` receives the reduced training set and must return the five
/// binary classifiers wrapped in an [`EvaluationResult`]-producing closure
/// — in practice a [`urlid_classifiers::LanguageClassifierSet`], evaluated
/// here with [`crate::evaluate::evaluate_classifier_set`]. It is a closure
/// rather than a trait object so that callers can capture whatever
/// feature-set/algorithm configuration they want.
pub fn training_curve<F>(
    train: &Dataset,
    test: &Dataset,
    fractions: &[f64],
    mut trainer: F,
) -> Vec<SweepPoint>
where
    F: FnMut(&Dataset) -> urlid_classifiers::LanguageClassifierSet,
{
    let mut points = Vec::with_capacity(fractions.len());
    for &fraction in fractions {
        let reduced = train.take_fraction(fraction);
        let set = trainer(&reduced);
        let result = crate::evaluate::evaluate_classifier_set(&set, test);
        points.push(SweepPoint {
            fraction,
            training_urls: reduced.len(),
            result,
        });
    }
    points
}

/// The registered domains present in a data set.
fn domains_of(dataset: &Dataset) -> HashSet<String> {
    dataset
        .urls
        .iter()
        .filter_map(|u| ParsedUrl::parse(&u.url).registered_domain())
        .collect()
}

/// Figure 3: for each training fraction, the percentage of test URLs whose
/// registered domain occurs in the (reduced) training set, averaged over
/// the whole test set.
pub fn domain_memorization_curve(
    train: &Dataset,
    test: &Dataset,
    fractions: &[f64],
) -> Vec<(f64, f64)> {
    fractions
        .iter()
        .map(|&fraction| {
            let reduced = train.take_fraction(fraction);
            let train_domains = domains_of(&reduced);
            let seen = test
                .urls
                .iter()
                .filter(|u| {
                    ParsedUrl::parse(&u.url)
                        .registered_domain()
                        .map(|d| train_domains.contains(&d))
                        .unwrap_or(false)
                })
                .count();
            let pct = if test.is_empty() {
                0.0
            } else {
                100.0 * seen as f64 / test.len() as f64
            };
            (fraction, pct)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use urlid_classifiers::{CcTldClassifier, LanguageClassifierSet};
    use urlid_corpus::{odp_dataset, CorpusScale, UrlGenerator};
    use urlid_features::LabeledUrl;
    use urlid_lexicon::Language;

    #[test]
    fn training_curve_runs_every_fraction() {
        let mut g = UrlGenerator::new(1);
        let odp = odp_dataset(&mut g, CorpusScale::tiny());
        let points = training_curve(&odp.train, &odp.test, &[0.1, 1.0], |_reduced| {
            // A trainer that ignores the data: the ccTLD baseline.
            LanguageClassifierSet::build(|lang| Box::new(CcTldClassifier::cctld(lang)))
        });
        assert_eq!(points.len(), 2);
        assert!(points[0].training_urls < points[1].training_urls);
        // The ccTLD baseline does not depend on training data, so the
        // F-measure is identical at both points.
        assert!((points[0].mean_f_measure() - points[1].mean_f_measure()).abs() < 1e-9);
        assert!(points[1].mean_f_measure() > 0.3);
    }

    #[test]
    fn memorization_grows_with_training_fraction() {
        let mut g = UrlGenerator::new(2);
        let odp = odp_dataset(&mut g, CorpusScale::small());
        let curve = domain_memorization_curve(&odp.train, &odp.test, &[0.01, 0.1, 1.0]);
        assert_eq!(curve.len(), 3);
        assert!(curve[0].1 <= curve[1].1 + 1e-9);
        assert!(curve[1].1 <= curve[2].1 + 1e-9);
        assert!(
            curve[2].1 > 30.0,
            "full training should cover many domains: {:?}",
            curve
        );
        assert!(curve[2].1 <= 100.0);
    }

    #[test]
    fn memorization_of_disjoint_sets_is_zero() {
        let mut train = Dataset::new("train");
        train.urls.push(LabeledUrl::new(
            "http://only-in-train.de/",
            Language::German,
        ));
        let mut test = Dataset::new("test");
        test.urls
            .push(LabeledUrl::new("http://only-in-test.de/", Language::German));
        let curve = domain_memorization_curve(&train, &test, &[1.0]);
        assert_eq!(curve[0].1, 0.0);
    }

    #[test]
    fn paper_fractions_constant_is_sorted() {
        let mut sorted = PAPER_TRAINING_FRACTIONS;
        sorted.sort_by(f64::total_cmp);
        assert_eq!(sorted, PAPER_TRAINING_FRACTIONS);
        assert_eq!(PAPER_TRAINING_FRACTIONS[3], 1.0);
    }
}
