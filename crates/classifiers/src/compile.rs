//! The compiled scoring plane: fused dense-weight inference.
//!
//! Training produces per-language, per-classifier structures optimised
//! for *fitting* — hash maps, per-model `Vec`s, trait objects. Scoring a
//! URL through them walks five independent models, each probing its own
//! storage per feature. This module is the runtime representation the
//! hot path uses instead (the Polynesia lesson from PAPERS.md: co-design
//! the runtime layout with the access pattern):
//!
//! * every algorithm that is a function of dense per-feature data lowers
//!   itself through the [`CompileScorer`] trait into a [`Lowering`] —
//!   Naive Bayes and MaxEnt contribute one weight lane per feature,
//!   Relative Entropy two (the smoothed class distributions), rank-order
//!   two (dense rank tables), the character Markov model dense
//!   transition log-prob tables;
//! * `CompiledPlane` (crate-internal; reached through
//!   [`crate::LanguageClassifierSet::compile`]) interleaves all
//!   languages' lanes into **one
//!   contiguous language-major matrix** (`matrix[j * stride ..]` is
//!   feature `j`'s row holding every language's lanes side by side), so
//!   scoring is a single pass over the URL's sparse vector with one
//!   cache-friendly row fetch per feature instead of five independent
//!   probes.
//!
//! ## The correctness contract
//!
//! Lowering never re-derives a model — it copies the trained numbers
//! into the fused layout — and the fused pass replays **exactly the same
//! floating-point operations in exactly the same order** as the
//! interpreted scorers (each language's accumulator is its own chain, so
//! interleaving languages does not reassociate anything). Compiled
//! scores are therefore bit-identical to interpreted scores, which is
//! stronger than the 1e-12 the differential suite demands and is what
//! makes compiled *decisions* exactly equal to interpreted ones.
//!
//! Scorers that do not lower (decision trees, k-NN, the Section 5.6
//! combination classifiers, ad-hoc test scorers) stay interpreted inside
//! a compiled set: the plane scores what it can in the fused pass and
//! the set falls back to the boxed scorer for the rest — still
//! benefiting from the arena-interned extraction.

use crate::lanes::{self, LaneWeight};
use crate::markov::{markov_encode, markov_transition_index, MARKOV_TRANSITIONS};
use crate::set::LanguageScorer;
use serde::{Deserialize, Serialize};
use urlid_features::{CompiledTransform, ExtractScratch, FeatureExtractor, SparseVector};
use urlid_mapped::Lane;
use urlid_tokenize::Tokenizer;

/// Lowering a trained model into the compiled plane's dense form.
///
/// Implemented by every algorithm whose score is a function of dense
/// per-feature (or per-transition) data: Naive Bayes, Relative Entropy,
/// MaxEnt, rank-order and the character Markov model. The plane reaches
/// implementations through [`crate::VectorClassifier::as_compile`] /
/// [`crate::UrlClassifier::as_compile`].
pub trait CompileScorer {
    /// Lower the trained model for a feature space of `dim` dimensions.
    /// Implementations pad their dense arrays to `dim` with the exact
    /// out-of-vocabulary defaults their interpreted `score` uses, so the
    /// fused pass needs no per-algorithm special cases.
    fn lower(&self, dim: usize) -> Lowering;
}

/// The dense form of one language's trained model.
#[derive(Debug, Clone)]
pub enum Lowering {
    /// `score = bias + Σ_j x_j · weights[j]` (Naive Bayes: per-feature
    /// log-likelihood ratios, `bias` the log prior ratio, `default` the
    /// pure-smoothing ratio of features outside the trained dimension).
    NaiveBayes {
        /// Per-feature log-ratio lane, padded to `dim` with `default`.
        weights: Vec<f64>,
        /// The log prior ratio the accumulator starts from.
        bias: f64,
        /// Log ratio of features beyond the lane length.
        default: f64,
    },
    /// `score = Σ_j x_j · weights[j] + slack_diff · max(c − Σ_j x_j, 0)`
    /// (MaxEnt/GIS: weight differences plus the slack-feature term).
    MaxEnt {
        /// Per-feature weight-difference lane (λ⁺ − λ⁻), padded with 0.
        weights: Vec<f64>,
        /// Slack-feature weight difference.
        slack_diff: f64,
        /// The GIS constant C.
        c: f64,
    },
    /// `score = D(p‖q_neg) − D(p‖q_pos)` over `p = x / ‖x‖₁` (Relative
    /// Entropy: the two smoothed class distributions, pre-clamped to
    /// `f64::MIN_POSITIVE` exactly as the interpreted lookup clamps).
    RelativeEntropy {
        /// Positive-class distribution lane, padded with `default_pos`.
        q_pos: Vec<f64>,
        /// Negative-class distribution lane, padded with `default_neg`.
        q_neg: Vec<f64>,
        /// Clamped default for features beyond the lane length.
        default_pos: f64,
        /// Clamped default for features beyond the lane length.
        default_neg: f64,
    },
    /// Cavnar–Trenkle out-of-place distance over dense rank tables
    /// (−1.0 marks a feature absent from a profile).
    RankOrder {
        /// Positive-profile rank per feature (−1.0 = not in profile).
        rank_pos: Vec<f64>,
        /// Negative-profile rank per feature (−1.0 = not in profile).
        rank_neg: Vec<f64>,
        /// Penalty for features missing from a profile.
        max_penalty: usize,
    },
    /// Character Markov model: dense per-transition log-probability
    /// tables (one entry per `(context, next)` pair) for both classes.
    Markov {
        /// `log P(next | context)` of the positive class, indexed by
        /// the dense `(context, next)` transition index.
        log_pos: Vec<f64>,
        /// Same for the negative class.
        log_neg: Vec<f64>,
        /// The tokenizer the classifier scores through.
        tokenizer: Tokenizer,
    },
}

/// How one language participates in the fused vector pass.
#[derive(Debug, Clone)]
enum VectorPlan {
    /// Not lowered: the set scores this language through its boxed
    /// interpreted scorer.
    None,
    /// Naive Bayes lanes at `offset` within each feature row.
    NaiveBayes {
        offset: usize,
        bias: f64,
        default: f64,
    },
    /// MaxEnt lane at `offset`.
    MaxEnt {
        offset: usize,
        slack_diff: f64,
        c: f64,
    },
    /// Relative-entropy lanes `[q_pos, q_neg]` at `offset`.
    RelativeEntropy {
        offset: usize,
        default_pos: f64,
        default_neg: f64,
    },
    /// Rank-order lanes `[rank_pos, rank_neg]` at `offset`.
    RankOrder { offset: usize, max_penalty: usize },
}

impl VectorPlan {
    fn lanes(&self) -> usize {
        match self {
            VectorPlan::None => 0,
            VectorPlan::NaiveBayes { .. } | VectorPlan::MaxEnt { .. } => 1,
            VectorPlan::RelativeEntropy { .. } | VectorPlan::RankOrder { .. } => 2,
        }
    }
}

/// The fused Markov half of the plane: every Markov language's two
/// log-prob lanes interleaved per transition, so one row fetch per
/// character transition feeds all languages.
#[derive(Debug, Clone)]
struct MarkovPlane {
    tokenizer: Tokenizer,
    /// Lanes per transition row (2 × number of fused languages).
    stride: usize,
    /// `MARKOV_TRANSITIONS` rows × `stride`: `[lp_lang, ln_lang, ...]`.
    /// A [`Lane`] so a `.urlm`-loaded plane reads the tables straight
    /// out of the mapped file.
    matrix: Lane<f64>,
    /// Lane offset per language (`None` = not a fused Markov language).
    lanes: [Option<usize>; 5],
}

/// Uniform-algorithm shape of the vector pass, detected at build time.
/// When every lowered plan shares an accumulation kernel, the per-feature
/// loop drops the per-language plan dispatch and runs the fixed-width
/// chunked lanes of [`crate::lanes`] instead.
#[derive(Debug, Clone)]
enum FastPath {
    /// Heterogeneous plans (or rank-order lanes): the general loop.
    General,
    /// Every lowered language is Naive Bayes or MaxEnt — one linear lane
    /// each, so the whole row accumulates as a single chunked
    /// `acc[k] += x · row[k]`. `defaults` is the out-of-vocabulary row
    /// (the NB pure-smoothing ratio per NB lane; `0.0` per ME lane,
    /// which leaves the accumulator bit-unchanged exactly like the
    /// interpreted skip, since `x` is finite and the chain never
    /// produces `-0.0`).
    Linear {
        /// Out-of-vocabulary weight row, one entry per lane.
        defaults: Vec<f64>,
    },
    /// Every lowered language is Relative Entropy — the per-feature
    /// `(q_pos, q_neg)` pair loop runs without plan dispatch.
    Entropy {
        /// Out-of-vocabulary `(default_pos, default_neg)` row.
        defaults: Vec<f64>,
    },
}

/// The compiled runtime representation of a trained
/// [`crate::LanguageClassifierSet`]. Built by
/// [`crate::LanguageClassifierSet::compile`] from a trained set, or
/// reconstructed without recompilation from the mapped sections of a
/// `.urlm` model file via [`CompiledPlane::from_bytes`]; the set routes
/// its scoring entry points through it.
#[derive(Debug, Clone)]
pub struct CompiledPlane {
    /// The arena-interned extraction, when the shared extractor lowers.
    transform: Option<CompiledTransform>,
    /// Feature-space dimensionality (rows of the fused matrix).
    dim: usize,
    /// Lanes per feature row.
    stride: usize,
    /// `dim × stride` language-major matrix (the exact lane). A
    /// [`Lane`] so a `.urlm`-loaded plane scores straight out of the
    /// mapped file; compiled-in-process planes own their `Vec`.
    matrix: Lane<f64>,
    /// The quantised weight lane (see [`CompiledPlane::quantize_f32`]).
    /// Present but inactive on a freshly mapped model — `use_f32`
    /// decides which lane scores.
    matrix_f32: Option<Lane<f32>>,
    /// Is the quantised lane the active one? Distinct from the lane's
    /// *presence*: a `.urlm` file always carries both lanes, and the
    /// serving layer flips this switch without recompiling.
    use_f32: bool,
    /// Per-language participation in the fused vector pass.
    plans: [VectorPlan; 5],
    /// Detected uniform-algorithm kernel for the vector pass.
    fast: FastPath,
    markov: Option<MarkovPlane>,
}

impl CompiledPlane {
    /// Lower a classifier set's scorers into the fused plane.
    pub(crate) fn build(
        extractor: Option<&dyn FeatureExtractor>,
        scorers: &[Option<LanguageScorer>; 5],
    ) -> CompiledPlane {
        let dim = extractor.map(|e| e.dim()).unwrap_or(0);
        let transform = extractor.and_then(|e| e.compile_transform());
        debug_assert!(
            transform.as_ref().map(|t| t.dim() == dim).unwrap_or(true),
            "compiled transform must preserve the feature dimensionality"
        );

        /// One Markov language's lowering: (log_pos, log_neg, tokenizer).
        type MarkovLowering = (Vec<f64>, Vec<f64>, Tokenizer);
        let mut vector_lowerings: [Option<Lowering>; 5] = Default::default();
        let mut markov_lowerings: [Option<MarkovLowering>; 5] = Default::default();
        for (i, scorer) in scorers.iter().enumerate() {
            match scorer {
                Some(LanguageScorer::Vector(model)) => {
                    if let Some(compile) = model.as_compile() {
                        match compile.lower(dim) {
                            // A Markov lowering out of a vector scorer
                            // would be a bug in the implementation; stay
                            // interpreted rather than mis-score.
                            Lowering::Markov { .. } => {}
                            lowering => vector_lowerings[i] = Some(lowering),
                        }
                    }
                }
                Some(LanguageScorer::Url(classifier)) => {
                    if let Some(compile) = classifier.as_compile() {
                        if let Lowering::Markov {
                            log_pos,
                            log_neg,
                            tokenizer,
                        } = compile.lower(dim)
                        {
                            markov_lowerings[i] = Some((log_pos, log_neg, tokenizer));
                        }
                    }
                }
                // Hybrid scorers mix a URL-side constituent with the
                // shared vector; they stay interpreted (and still reuse
                // the plane's compiled extraction).
                Some(LanguageScorer::Hybrid(_)) | None => {}
            }
        }

        // Assign lane offsets and interleave the vector matrix.
        let mut plans: [VectorPlan; 5] = [
            VectorPlan::None,
            VectorPlan::None,
            VectorPlan::None,
            VectorPlan::None,
            VectorPlan::None,
        ];
        let mut offset = 0usize;
        for (i, lowering) in vector_lowerings.iter().enumerate() {
            let plan = match lowering {
                None => VectorPlan::None,
                Some(Lowering::NaiveBayes { bias, default, .. }) => VectorPlan::NaiveBayes {
                    offset,
                    bias: *bias,
                    default: *default,
                },
                Some(Lowering::MaxEnt { slack_diff, c, .. }) => VectorPlan::MaxEnt {
                    offset,
                    slack_diff: *slack_diff,
                    c: *c,
                },
                Some(Lowering::RelativeEntropy {
                    default_pos,
                    default_neg,
                    ..
                }) => VectorPlan::RelativeEntropy {
                    offset,
                    default_pos: *default_pos,
                    default_neg: *default_neg,
                },
                Some(Lowering::RankOrder { max_penalty, .. }) => VectorPlan::RankOrder {
                    offset,
                    max_penalty: *max_penalty,
                },
                Some(Lowering::Markov { .. }) => unreachable!("filtered above"),
            };
            offset += plan.lanes();
            plans[i] = plan;
        }
        let stride = offset;
        let mut matrix = vec![0.0f64; dim * stride];
        for j in 0..dim {
            let row = &mut matrix[j * stride..(j + 1) * stride];
            for (i, lowering) in vector_lowerings.iter().enumerate() {
                match (lowering, &plans[i]) {
                    (
                        Some(Lowering::NaiveBayes { weights, .. }),
                        VectorPlan::NaiveBayes {
                            offset, default, ..
                        },
                    ) => {
                        row[*offset] = weights.get(j).copied().unwrap_or(*default);
                    }
                    (Some(Lowering::MaxEnt { weights, .. }), VectorPlan::MaxEnt { offset, .. }) => {
                        row[*offset] = weights.get(j).copied().unwrap_or(0.0);
                    }
                    (
                        Some(Lowering::RelativeEntropy { q_pos, q_neg, .. }),
                        VectorPlan::RelativeEntropy {
                            offset,
                            default_pos,
                            default_neg,
                        },
                    ) => {
                        row[*offset] = q_pos.get(j).copied().unwrap_or(*default_pos);
                        row[*offset + 1] = q_neg.get(j).copied().unwrap_or(*default_neg);
                    }
                    (
                        Some(Lowering::RankOrder {
                            rank_pos, rank_neg, ..
                        }),
                        VectorPlan::RankOrder { offset, .. },
                    ) => {
                        row[*offset] = rank_pos.get(j).copied().unwrap_or(-1.0);
                        row[*offset + 1] = rank_neg.get(j).copied().unwrap_or(-1.0);
                    }
                    _ => {}
                }
            }
        }

        // Fuse the Markov languages that share a tokenizer configuration
        // (they always do in practice — `MarkovClassifier::train` uses
        // the default — but a mismatched one must stay interpreted
        // rather than be scored through the wrong tokenizer).
        let reference_tokenizer = markov_lowerings
            .iter()
            .flatten()
            .map(|(_, _, t)| t.clone())
            .next();
        let markov = reference_tokenizer.map(|tokenizer| {
            let mut lanes = [None; 5];
            let mut lane = 0usize;
            for (i, lowering) in markov_lowerings.iter().enumerate() {
                if let Some((_, _, t)) = lowering {
                    if *t == tokenizer {
                        lanes[i] = Some(lane);
                        lane += 2;
                    }
                }
            }
            let stride = lane;
            let mut matrix = vec![0.0f64; MARKOV_TRANSITIONS * stride];
            for (i, lowering) in markov_lowerings.iter().enumerate() {
                let (Some((log_pos, log_neg, _)), Some(off)) = (lowering, lanes[i]) else {
                    continue;
                };
                for t in 0..MARKOV_TRANSITIONS {
                    matrix[t * stride + off] = log_pos[t];
                    matrix[t * stride + off + 1] = log_neg[t];
                }
            }
            MarkovPlane {
                tokenizer,
                stride,
                matrix: Lane::from_vec(matrix),
                lanes,
            }
        });

        let fast = detect_fast_path(&plans, stride);
        CompiledPlane {
            transform,
            dim,
            stride,
            matrix: Lane::from_vec(matrix),
            matrix_f32: None,
            use_f32: false,
            plans,
            fast,
            markov,
        }
    }

    /// The compiled extraction, when the shared extractor lowered.
    pub fn transform(&self) -> Option<&CompiledTransform> {
        self.transform.as_ref()
    }

    /// Feature-space dimensionality (rows of the fused matrix).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Lanes per feature row of the fused matrix.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Does any of the plane's lanes read out of a mapped model file
    /// (as opposed to process-owned memory)?
    pub fn is_mapped(&self) -> bool {
        self.matrix.is_mapped()
            || self.matrix_f32.as_ref().is_some_and(|l| l.is_mapped())
            || self.markov.as_ref().is_some_and(|m| m.matrix.is_mapped())
    }

    /// Switch the plane onto a quantised `f32` weight lane: the vector
    /// matrix is narrowed element-wise (half the memory traffic per
    /// row), while every accumulator stays `f64`. Scores are no longer
    /// bit-identical to interpreted — the serving opt-in trades a
    /// bounded score perturbation (see the differential suite's
    /// tolerance) for throughput. Positive weights that would underflow
    /// to `0.0` are clamped to `f32::MIN_POSITIVE` so Relative
    /// Entropy's `MIN_POSITIVE`-clamped distributions never divide by
    /// zero; the Markov plane keeps its `f64` tables (its rows are
    /// shared log tables, not per-feature lanes).
    pub(crate) fn quantize_f32(&mut self) {
        if self.matrix_f32.is_none() {
            self.matrix_f32 = Some(Lane::from_vec(
                self.matrix.iter().map(|&w| quantize_weight(w)).collect(),
            ));
        }
        self.use_f32 = true;
    }

    /// Is the quantised lane active?
    pub fn is_f32(&self) -> bool {
        self.use_f32
    }

    /// Does the plane carry a quantised lane at all (active or not)?
    pub fn has_f32_lane(&self) -> bool {
        self.matrix_f32.is_some()
    }

    /// Switch between the exact `f64` lane and the quantised `f32` lane
    /// **without recompiling** — both lanes of a `.urlm`-loaded plane
    /// are mapped views, so this is a flag flip. Asking for `f32` when
    /// no quantised lane exists quantises one from the exact lane
    /// (deterministic, so the result is bit-identical to the lane a
    /// pack would have written). Returns whether `f32` is now active.
    pub fn prefer_f32(&mut self, on: bool) -> bool {
        if on {
            self.quantize_f32();
        } else {
            self.use_f32 = false;
        }
        self.use_f32
    }

    /// The fused vector pass: one walk over the sparse vector fills every
    /// lowered language's score into `out`. `ranked` is the caller's
    /// reusable rank-order scratch (untouched unless the plane holds
    /// rank lanes).
    pub(crate) fn score_vectors(
        &self,
        vector: &SparseVector,
        ranked: &mut Vec<(u32, f64)>,
        out: &mut [Option<f64>; 5],
    ) {
        match (self.use_f32, &self.matrix_f32) {
            (true, Some(matrix)) => self.score_vectors_with(matrix.as_slice(), vector, ranked, out),
            _ => self.score_vectors_with(self.matrix.as_slice(), vector, ranked, out),
        }
    }

    /// The vector pass over one weight lane (`W` = `f64` or `f32`).
    fn score_vectors_with<W: LaneWeight>(
        &self,
        matrix: &[W],
        vector: &SparseVector,
        ranked: &mut Vec<(u32, f64)>,
        out: &mut [Option<f64>; 5],
    ) {
        if self.stride == 0 {
            return;
        }
        match &self.fast {
            FastPath::Linear { defaults } => self.score_linear(matrix, defaults, vector, out),
            FastPath::Entropy { defaults } => self.score_entropy(matrix, defaults, vector, out),
            FastPath::General => self.score_general(matrix, vector, ranked, out),
        }
    }

    /// Uniform NB/ME fast path: per feature, one chunked
    /// `acc[k] += x · row[k]` over the whole row — no per-language
    /// dispatch, and a shape rustc autovectorizes (see
    /// [`crate::lanes::axpy`]). Bit-identical to the general loop: each
    /// lane is its own chain, NB lanes read the same in/out-of-range
    /// weights, and ME lanes add `x · 0.0 = +0.0` where the interpreted
    /// scorer skips (a bit-level no-op on an accumulator that is never
    /// `-0.0`).
    fn score_linear<W: LaneWeight>(
        &self,
        matrix: &[W],
        defaults: &[f64],
        vector: &SparseVector,
        out: &mut [Option<f64>; 5],
    ) {
        let mut lane_acc = [0.0f64; 5];
        let mut needs_sum = false;
        for plan in &self.plans {
            match plan {
                VectorPlan::NaiveBayes { offset, bias, .. } => lane_acc[*offset] = *bias,
                VectorPlan::MaxEnt { .. } => needs_sum = true,
                _ => {}
            }
        }
        let sum = if needs_sum { vector.sum() } else { 0.0 };
        let acc = &mut lane_acc[..self.stride];
        for (j, x) in vector.iter() {
            let j = j as usize;
            if j < self.dim {
                let start = j * self.stride;
                lanes::axpy(acc, x, &matrix[start..start + self.stride]);
            } else {
                lanes::axpy(acc, x, defaults);
            }
        }
        for (i, plan) in self.plans.iter().enumerate() {
            match plan {
                VectorPlan::NaiveBayes { offset, .. } => out[i] = Some(lane_acc[*offset]),
                VectorPlan::MaxEnt {
                    offset,
                    slack_diff,
                    c,
                } => {
                    let slack = (c - sum).max(0.0);
                    out[i] = Some(lane_acc[*offset] + slack_diff * slack);
                }
                _ => {}
            }
        }
    }

    /// Uniform Relative-Entropy fast path: the per-feature
    /// `(q_pos, q_neg)` walk without plan dispatch. The `ln` calls
    /// dominate, so this is about dropping the match, not SIMD.
    fn score_entropy<W: LaneWeight>(
        &self,
        matrix: &[W],
        defaults: &[f64],
        vector: &SparseVector,
        out: &mut [Option<f64>; 5],
    ) {
        let mut d = [0.0f64; 10];
        let pairs = self.stride / 2;
        let norm = vector.l1_norm();
        for (j, x) in vector.iter() {
            let p = x / norm;
            if p > 0.0 {
                let j = j as usize;
                if j < self.dim {
                    let row = &matrix[j * self.stride..(j + 1) * self.stride];
                    for k in 0..pairs {
                        d[2 * k] += p * (p / row[2 * k].to_f64()).ln();
                        d[2 * k + 1] += p * (p / row[2 * k + 1].to_f64()).ln();
                    }
                } else {
                    for k in 0..pairs {
                        d[2 * k] += p * (p / defaults[2 * k]).ln();
                        d[2 * k + 1] += p * (p / defaults[2 * k + 1]).ln();
                    }
                }
            }
        }
        for (i, plan) in self.plans.iter().enumerate() {
            if let VectorPlan::RelativeEntropy { offset, .. } = plan {
                out[i] = Some(if vector.is_empty() {
                    -f64::MIN_POSITIVE
                } else {
                    d[*offset + 1] - d[*offset]
                });
            }
        }
    }

    /// The general (heterogeneous-plan) vector pass.
    fn score_general<W: LaneWeight>(
        &self,
        matrix: &[W],
        vector: &SparseVector,
        ranked: &mut Vec<(u32, f64)>,
        out: &mut [Option<f64>; 5],
    ) {
        // One accumulator chain per language, exactly as interpreted:
        // NB starts from its prior, everything else from zero.
        let mut acc = [0.0f64; 5];
        let mut d_pos = [0.0f64; 5];
        let mut d_neg = [0.0f64; 5];
        let mut needs_norm = false;
        let mut needs_sum = false;
        let mut needs_rank = false;
        for (i, plan) in self.plans.iter().enumerate() {
            match plan {
                VectorPlan::NaiveBayes { bias, .. } => acc[i] = *bias,
                VectorPlan::MaxEnt { .. } => needs_sum = true,
                VectorPlan::RelativeEntropy { .. } => needs_norm = true,
                VectorPlan::RankOrder { .. } => needs_rank = true,
                VectorPlan::None => {}
            }
        }
        // Independent reductions in the same order the interpreted
        // scorers run them (`SparseVector::l1_norm` / `sum`).
        let norm = if needs_norm { vector.l1_norm() } else { 0.0 };
        let sum = if needs_sum { vector.sum() } else { 0.0 };

        for (j, x) in vector.iter() {
            let start = j as usize * self.stride;
            let row = if (j as usize) < self.dim {
                Some(&matrix[start..start + self.stride])
            } else {
                None // out-of-range feature: per-plan defaults below
            };
            for (i, plan) in self.plans.iter().enumerate() {
                match plan {
                    VectorPlan::NaiveBayes {
                        offset, default, ..
                    } => {
                        let w = row.map(|r| r[*offset].to_f64()).unwrap_or(*default);
                        acc[i] += x * w;
                    }
                    VectorPlan::MaxEnt { offset, .. } => {
                        // Interpreted `dot_dense` skips out-of-range
                        // indices entirely.
                        if let Some(r) = row {
                            acc[i] += x * r[*offset].to_f64();
                        }
                    }
                    VectorPlan::RelativeEntropy {
                        offset,
                        default_pos,
                        default_neg,
                    } => {
                        let p = x / norm;
                        if p > 0.0 {
                            let (qp, qn) = match row {
                                Some(r) => (r[*offset].to_f64(), r[*offset + 1].to_f64()),
                                None => (*default_pos, *default_neg),
                            };
                            d_pos[i] += p * (p / qp).ln();
                            d_neg[i] += p * (p / qn).ln();
                        }
                    }
                    VectorPlan::RankOrder { .. } | VectorPlan::None => {}
                }
            }
        }

        for (i, plan) in self.plans.iter().enumerate() {
            match plan {
                VectorPlan::NaiveBayes { .. } => out[i] = Some(acc[i]),
                VectorPlan::MaxEnt { slack_diff, c, .. } => {
                    let slack = (c - sum).max(0.0);
                    out[i] = Some(acc[i] + slack_diff * slack);
                }
                VectorPlan::RelativeEntropy { .. } => {
                    out[i] = Some(if vector.is_empty() {
                        // An empty URL gives no information; the
                        // conservative high-precision RE behaviour.
                        -f64::MIN_POSITIVE
                    } else {
                        d_neg[i] - d_pos[i]
                    });
                }
                VectorPlan::RankOrder { .. } | VectorPlan::None => {}
            }
        }

        if needs_rank {
            self.score_rank_order(matrix, vector, ranked, out);
        }
    }

    /// The rank-order leg of the vector pass: rank the test features
    /// once (they are shared by every rank-order language) and walk the
    /// ranked list against the dense rank lanes. `ranked` is reused
    /// scratch — a warm call allocates nothing.
    fn score_rank_order<W: LaneWeight>(
        &self,
        matrix: &[W],
        vector: &SparseVector,
        ranked: &mut Vec<(u32, f64)>,
        out: &mut [Option<f64>; 5],
    ) {
        if vector.is_empty() {
            for (i, plan) in self.plans.iter().enumerate() {
                if let VectorPlan::RankOrder { .. } = plan {
                    out[i] = Some(-1.0);
                }
            }
            return;
        }
        // Exactly `RankOrder::rank_test`: descending value, ties by
        // ascending feature index.
        ranked.clear();
        ranked.extend(vector.iter());
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut d_pos = [0.0f64; 5];
        let mut d_neg = [0.0f64; 5];
        for (test_rank, (j, _)) in ranked.iter().enumerate() {
            let start = *j as usize * self.stride;
            let row = if (*j as usize) < self.dim {
                Some(&matrix[start..start + self.stride])
            } else {
                None
            };
            for (i, plan) in self.plans.iter().enumerate() {
                if let VectorPlan::RankOrder {
                    offset,
                    max_penalty,
                } = plan
                {
                    let (rp, rn) = match row {
                        Some(r) => (r[*offset].to_f64(), r[*offset + 1].to_f64()),
                        None => (-1.0, -1.0),
                    };
                    let t = test_rank as f64;
                    d_pos[i] += if rp >= 0.0 {
                        (rp - t).abs()
                    } else {
                        *max_penalty as f64
                    };
                    d_neg[i] += if rn >= 0.0 {
                        (rn - t).abs()
                    } else {
                        *max_penalty as f64
                    };
                }
            }
        }
        for (i, plan) in self.plans.iter().enumerate() {
            if let VectorPlan::RankOrder { .. } = plan {
                out[i] = Some((d_neg[i] - d_pos[i]) / ranked.len() as f64);
            }
        }
    }

    /// The fused Markov pass: tokenize once, walk every token's padded
    /// character windows once, and accumulate every Markov language's
    /// log-likelihood ratio from the shared transition rows. The token
    /// and character buffers come from the caller's scratch, so a warm
    /// call allocates nothing.
    pub(crate) fn score_markov(
        &self,
        url: &str,
        scratch: &mut ExtractScratch,
        out: &mut [Option<f64>; 5],
    ) {
        let Some(plane) = &self.markov else {
            return;
        };
        if plane.stride == 0 {
            return;
        }
        let ExtractScratch {
            token: token_buf,
            bytes: chars,
            ..
        } = scratch;
        let mut ratios = [0.0f64; 5];
        let mut transitions = 0usize;
        plane.tokenizer.for_each_token(url, token_buf, |token| {
            chars.clear();
            chars.push(0);
            chars.push(0);
            chars.extend(token.chars().map(markov_encode));
            chars.push(0);
            // Per-token accumulators, mirroring the interpreted
            // `token_log_likelihood` call pair per class.
            let mut lp = [0.0f64; 5];
            let mut ln = [0.0f64; 5];
            let mut n = 0usize;
            for w in chars.windows(3) {
                let t = markov_transition_index(w[0], w[1], w[2]);
                let row = &plane.matrix[t * plane.stride..(t + 1) * plane.stride];
                for (i, lane) in plane.lanes.iter().enumerate() {
                    if let Some(off) = lane {
                        lp[i] += row[*off];
                        ln[i] += row[*off + 1];
                    }
                }
                n += 1;
            }
            for (i, lane) in plane.lanes.iter().enumerate() {
                if lane.is_some() {
                    ratios[i] += lp[i] - ln[i];
                }
            }
            transitions += n;
        });
        for (i, lane) in plane.lanes.iter().enumerate() {
            if lane.is_some() {
                out[i] = Some(if transitions == 0 {
                    -1.0
                } else {
                    ratios[i] / transitions as f64
                });
            }
        }
    }
}

/// Detect a uniform-algorithm kernel for the vector pass (see
/// [`FastPath`]). Rank-order lanes and hybrid plan mixes keep the
/// general loop.
fn detect_fast_path(plans: &[VectorPlan; 5], stride: usize) -> FastPath {
    let mut any = false;
    let mut linear = true;
    let mut entropy = true;
    for plan in plans {
        match plan {
            VectorPlan::None => {}
            VectorPlan::NaiveBayes { .. } | VectorPlan::MaxEnt { .. } => {
                any = true;
                entropy = false;
            }
            VectorPlan::RelativeEntropy { .. } => {
                any = true;
                linear = false;
            }
            VectorPlan::RankOrder { .. } => {
                any = true;
                linear = false;
                entropy = false;
            }
        }
    }
    if !any {
        return FastPath::General;
    }
    let mut defaults = vec![0.0f64; stride];
    for plan in plans {
        match plan {
            VectorPlan::NaiveBayes {
                offset, default, ..
            } => defaults[*offset] = *default,
            VectorPlan::RelativeEntropy {
                offset,
                default_pos,
                default_neg,
            } => {
                defaults[*offset] = *default_pos;
                defaults[*offset + 1] = *default_neg;
            }
            _ => {}
        }
    }
    if linear {
        FastPath::Linear { defaults }
    } else if entropy {
        FastPath::Entropy { defaults }
    } else {
        FastPath::General
    }
}

/// Narrow one matrix weight to the quantised lane. The nearest-`f32`
/// cast is exact for rank lanes (small integers and −1.0) and within
/// half an ULP elsewhere; values whose magnitude underflows to zero are
/// clamped to the smallest normal-direction `f32` so Relative Entropy's
/// `f64::MIN_POSITIVE`-clamped distributions never become a division by
/// zero (`p / 0.0 = ∞` would poison the score).
fn quantize_weight(w: f64) -> f32 {
    let narrowed = w as f32;
    if narrowed == 0.0 && w != 0.0 {
        // The cast preserves the sign in the underflowed zero.
        f32::MIN_POSITIVE.copysign(narrowed)
    } else if narrowed.is_infinite() && w.is_finite() {
        f32::MAX.copysign(narrowed)
    } else {
        narrowed
    }
}

// ---------------------------------------------------------------------
// `.urlm` (de)serialisation: the plane's dense matrices become raw
// sections of the binary model format, and everything else — the lane
// scalars below — becomes the JSON `PlaneMeta` in the format's META
// section. Lane *offsets* are deliberately not persisted: they are a
// pure function of the per-language plan kinds (assigned sequentially
// in language order, exactly as `build` assigns them), so the loader
// re-derives them instead of trusting the file.
// ---------------------------------------------------------------------

/// One language's participation in the fused vector pass, as persisted
/// in a `.urlm` model's META section (the scalar half of
/// [`CompiledPlane`]'s `VectorPlan`; offsets are re-derived at load).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum PlanMeta {
    /// Not lowered: the language scores through its boxed scorer.
    #[default]
    None,
    /// Naive Bayes lane.
    NaiveBayes {
        /// The log prior ratio the accumulator starts from.
        bias: f64,
        /// Log ratio of features beyond the lane length.
        default: f64,
    },
    /// MaxEnt lane.
    MaxEnt {
        /// Slack-feature weight difference.
        slack_diff: f64,
        /// The GIS constant C.
        c: f64,
    },
    /// Relative-entropy lane pair.
    RelativeEntropy {
        /// Clamped default for features beyond the lane length.
        default_pos: f64,
        /// Clamped default for features beyond the lane length.
        default_neg: f64,
    },
    /// Rank-order lane pair.
    RankOrder {
        /// Penalty for features missing from a profile.
        max_penalty: usize,
    },
}

/// The persisted form of the fused Markov plane's scalars (the dense
/// transition matrix is a raw section).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkovMeta {
    /// The tokenizer the fused Markov languages score through.
    pub tokenizer: Tokenizer,
    /// Lanes per transition row (2 × number of fused languages).
    pub stride: usize,
    /// Lane offset per language (`None` = not a fused Markov language).
    pub lanes: [Option<usize>; 5],
}

/// Everything a [`CompiledPlane`] is made of *except* its dense
/// matrices: the JSON half of the `.urlm` format's plane encoding.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PlaneMeta {
    /// Feature-space dimensionality (rows of the fused matrix).
    pub dim: usize,
    /// Lanes per feature row (validated against the re-derived plans).
    pub stride: usize,
    /// Per-language plan scalars in canonical language order.
    pub plans: [PlanMeta; 5],
    /// The fused Markov plane's scalars, when one exists.
    pub markov: Option<MarkovMeta>,
}

/// The raw section payloads of a serialised plane, plus their META
/// scalars — what [`CompiledPlane::serialize_into`] produces and the
/// `.urlm` writer turns into checksummed, page-aligned sections.
#[derive(Debug, Clone, Default)]
pub struct PlanePayload {
    /// The JSON half (scalars); see [`PlaneMeta`].
    pub meta: PlaneMeta,
    /// The exact `f64` weight matrix, native-endian bytes.
    pub matrix: Vec<u8>,
    /// The quantised `f32` lane, native-endian bytes. Always produced:
    /// quantisation is deterministic, so packing it eagerly lets the
    /// serving layer flip lanes without ever recompiling.
    pub matrix_f32: Vec<u8>,
    /// The fused Markov transition tables (`f64`), empty when the plane
    /// has no Markov half.
    pub markov: Vec<u8>,
}

/// Validated slices of a mapped (or heap-fallback) `.urlm` file that
/// [`CompiledPlane::from_bytes`] reconstructs a plane from — the safe
/// view layer between raw file bytes and typed matrices.
#[derive(Debug, Clone, Default)]
pub struct PlaneViews {
    /// The exact `f64` weight matrix.
    pub matrix: Lane<f64>,
    /// The quantised `f32` lane, if the file carries one.
    pub matrix_f32: Option<Lane<f32>>,
    /// The fused Markov transition tables, if the META says one exists.
    pub markov: Option<Lane<f64>>,
}

fn f64_section_bytes(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_ne_bytes());
    }
    out
}

fn f32_section_bytes(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_ne_bytes());
    }
    out
}

/// Re-derive the runtime plans (with lane offsets) from persisted plan
/// scalars — the same sequential assignment `build` performs.
fn plans_from_meta(meta: &[PlanMeta; 5]) -> ([VectorPlan; 5], usize) {
    let mut plans = [
        VectorPlan::None,
        VectorPlan::None,
        VectorPlan::None,
        VectorPlan::None,
        VectorPlan::None,
    ];
    let mut offset = 0usize;
    for (i, m) in meta.iter().enumerate() {
        let plan = match *m {
            PlanMeta::None => VectorPlan::None,
            PlanMeta::NaiveBayes { bias, default } => VectorPlan::NaiveBayes {
                offset,
                bias,
                default,
            },
            PlanMeta::MaxEnt { slack_diff, c } => VectorPlan::MaxEnt {
                offset,
                slack_diff,
                c,
            },
            PlanMeta::RelativeEntropy {
                default_pos,
                default_neg,
            } => VectorPlan::RelativeEntropy {
                offset,
                default_pos,
                default_neg,
            },
            PlanMeta::RankOrder { max_penalty } => VectorPlan::RankOrder {
                offset,
                max_penalty,
            },
        };
        offset += plan.lanes();
        plans[i] = plan;
    }
    (plans, offset)
}

impl CompiledPlane {
    /// Serialise the plane for packing into a `.urlm` file: scalars
    /// into `out.meta`, dense matrices into raw native-endian byte
    /// sections. The quantised `f32` lane is always emitted (computed
    /// on the fly when the plane has not been quantised), so the packed
    /// model can serve either lane without recompiling.
    pub fn serialize_into(&self, out: &mut PlanePayload) {
        let mut plans = [
            PlanMeta::None,
            PlanMeta::None,
            PlanMeta::None,
            PlanMeta::None,
            PlanMeta::None,
        ];
        for (i, plan) in self.plans.iter().enumerate() {
            plans[i] = match *plan {
                VectorPlan::None => PlanMeta::None,
                VectorPlan::NaiveBayes { bias, default, .. } => {
                    PlanMeta::NaiveBayes { bias, default }
                }
                VectorPlan::MaxEnt { slack_diff, c, .. } => PlanMeta::MaxEnt { slack_diff, c },
                VectorPlan::RelativeEntropy {
                    default_pos,
                    default_neg,
                    ..
                } => PlanMeta::RelativeEntropy {
                    default_pos,
                    default_neg,
                },
                VectorPlan::RankOrder { max_penalty, .. } => PlanMeta::RankOrder { max_penalty },
            };
        }
        out.meta = PlaneMeta {
            dim: self.dim,
            stride: self.stride,
            plans,
            markov: self.markov.as_ref().map(|m| MarkovMeta {
                tokenizer: m.tokenizer.clone(),
                stride: m.stride,
                lanes: m.lanes,
            }),
        };
        out.matrix = f64_section_bytes(&self.matrix);
        out.matrix_f32 = match &self.matrix_f32 {
            Some(lane) => f32_section_bytes(lane),
            None => {
                let quantised: Vec<f32> = self.matrix.iter().map(|&w| quantize_weight(w)).collect();
                f32_section_bytes(&quantised)
            }
        };
        out.markov = match &self.markov {
            Some(m) => f64_section_bytes(&m.matrix),
            None => Vec::new(),
        };
    }

    /// Reconstruct a plane from the validated views of a `.urlm` file —
    /// the mmap-and-serve load path. No recompilation happens: the
    /// matrices are used as stored (typically views into the mapped
    /// file), lane offsets and the fast-path kernel are re-derived from
    /// the plan kinds, and every cross-section size relation is checked
    /// so a structurally corrupt file fails closed here rather than
    /// panicking in the score hot path.
    pub fn from_bytes(
        transform: Option<CompiledTransform>,
        meta: PlaneMeta,
        views: PlaneViews,
    ) -> Result<CompiledPlane, String> {
        if let Some(t) = &transform {
            if t.dim() != meta.dim {
                return Err(format!(
                    "transform dimensionality {} does not match plane dim {}",
                    t.dim(),
                    meta.dim
                ));
            }
        }
        let (plans, stride) = plans_from_meta(&meta.plans);
        if stride != meta.stride {
            return Err(format!(
                "declared stride {} does not match the {} lanes of the plans",
                meta.stride, stride
            ));
        }
        let expected = meta
            .dim
            .checked_mul(stride)
            .ok_or_else(|| "matrix size overflows".to_string())?;
        if views.matrix.len() != expected {
            return Err(format!(
                "matrix section holds {} weights, expected dim {} × stride {} = {}",
                views.matrix.len(),
                meta.dim,
                stride,
                expected
            ));
        }
        if let Some(f32_lane) = &views.matrix_f32 {
            if f32_lane.len() != views.matrix.len() {
                return Err(format!(
                    "f32 lane holds {} weights but the f64 matrix holds {}",
                    f32_lane.len(),
                    views.matrix.len()
                ));
            }
        }
        let markov = match (meta.markov, views.markov) {
            (None, None) => None,
            (None, Some(_)) => {
                return Err("markov section present but META declares none".to_string())
            }
            (Some(_), None) => {
                return Err("META declares a markov plane but the section is missing".to_string())
            }
            (Some(mm), Some(matrix)) => {
                // Lane offsets are assigned sequentially (0, 2, 4, …) in
                // language order by `build`; require exactly that.
                let mut next = 0usize;
                for lane in mm.lanes.iter().flatten() {
                    if *lane != next {
                        return Err(format!(
                            "markov lane offset {lane} out of sequential order (expected {next})"
                        ));
                    }
                    next += 2;
                }
                if next != mm.stride {
                    return Err(format!(
                        "markov stride {} does not match the {} lanes declared",
                        mm.stride, next
                    ));
                }
                if matrix.len() != MARKOV_TRANSITIONS * mm.stride {
                    return Err(format!(
                        "markov section holds {} entries, expected {} × {}",
                        matrix.len(),
                        MARKOV_TRANSITIONS,
                        mm.stride
                    ));
                }
                Some(MarkovPlane {
                    tokenizer: mm.tokenizer,
                    stride: mm.stride,
                    matrix,
                    lanes: mm.lanes,
                })
            }
        };
        let fast = detect_fast_path(&plans, stride);
        Ok(CompiledPlane {
            transform,
            dim: meta.dim,
            stride,
            matrix: views.matrix,
            matrix_f32: views.matrix_f32,
            use_f32: false,
            plans,
            fast,
            markov,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::markov::{MarkovClassifier, MarkovConfig};
    use crate::maxent::{MaxEnt, MaxEntConfig};
    use crate::model::VectorClassifier;
    use crate::naive_bayes::{NaiveBayes, NaiveBayesConfig};
    use crate::rank_order::{RankOrder, RankOrderConfig};
    use crate::relative_entropy::{RelativeEntropy, RelativeEntropyConfig};
    use crate::set::LanguageClassifierSet;
    use std::sync::Arc;
    use urlid_features::{FeatureExtractor, LabeledUrl, SparseVector, WordFeatureExtractor};
    use urlid_lexicon::{Language, ALL_LANGUAGES};

    fn training() -> Vec<LabeledUrl> {
        vec![
            LabeledUrl::new(
                "http://www.wetter-bericht.de/berlin/nachrichten",
                Language::German,
            ),
            LabeledUrl::new(
                "http://www.weather-report.co.uk/london/news",
                Language::English,
            ),
            LabeledUrl::new(
                "http://www.meteo-prevision.fr/paris/infos",
                Language::French,
            ),
            LabeledUrl::new(
                "http://www.tiempo-noticias.es/madrid/hoy",
                Language::Spanish,
            ),
            LabeledUrl::new(
                "http://www.previsioni-meteo.it/roma/oggi",
                Language::Italian,
            ),
            LabeledUrl::new("http://www.nachrichten-heute.de/wetter", Language::German),
            LabeledUrl::new("http://www.daily-news.co.uk/weather", Language::English),
        ]
    }

    fn probe_urls() -> Vec<String> {
        let mut urls: Vec<String> = training().iter().map(|u| u.url.clone()).collect();
        urls.extend(
            [
                "http://unseen.example.xyz/nothing",
                "http://192.168.0.1/index.html",
                "http://xn--mnchen-3ya.de/",
                "",
                "http://wetter.de/wetter/wetter/berlin",
                "https://example.co.uk/weather/report?q=1",
            ]
            .map(str::to_owned),
        );
        urls
    }

    /// Per-language (positives, negatives) training vectors.
    type ClassVectors = Vec<(Vec<SparseVector>, Vec<SparseVector>)>;

    /// Fit a shared word extractor and the per-language vectors the toy
    /// models train on.
    fn fitted() -> (Arc<WordFeatureExtractor>, ClassVectors) {
        let data = training();
        let mut extractor = WordFeatureExtractor::default();
        extractor.fit(&data);
        let per_lang = ALL_LANGUAGES
            .iter()
            .map(|&lang| {
                let pos: Vec<SparseVector> = data
                    .iter()
                    .filter(|u| u.language == lang)
                    .map(|u| extractor.transform(&u.url))
                    .collect();
                let neg: Vec<SparseVector> = data
                    .iter()
                    .filter(|u| u.language != lang)
                    .map(|u| extractor.transform(&u.url))
                    .collect();
                (pos, neg)
            })
            .collect();
        (Arc::new(extractor), per_lang)
    }

    fn assert_compiled_matches_interpreted(set: &mut LanguageClassifierSet) {
        set.compile();
        assert!(set.is_compiled());
        for url in probe_urls() {
            let compiled_scores = set.score_all(&url);
            let interpreted_scores = set.score_all_interpreted(&url);
            assert_eq!(
                compiled_scores, interpreted_scores,
                "scores diverge on {url:?}"
            );
            assert_eq!(
                set.classify_all(&url),
                set.classify_all_interpreted(&url),
                "decisions diverge on {url:?}"
            );
        }
    }

    #[test]
    fn naive_bayes_plane_is_bit_identical() {
        let (extractor, per_lang) = fitted();
        let dim = extractor.dim();
        let mut set = LanguageClassifierSet::build_vector(extractor, |lang| {
            let (pos, neg) = &per_lang[lang.index()];
            Box::new(NaiveBayes::train(pos, neg, NaiveBayesConfig::for_dim(dim)))
        });
        assert_compiled_matches_interpreted(&mut set);
    }

    #[test]
    fn relative_entropy_plane_is_bit_identical() {
        let (extractor, per_lang) = fitted();
        let dim = extractor.dim();
        let mut set = LanguageClassifierSet::build_vector(extractor, |lang| {
            let (pos, neg) = &per_lang[lang.index()];
            Box::new(RelativeEntropy::train(
                pos,
                neg,
                RelativeEntropyConfig::for_dim(dim),
            ))
        });
        assert_compiled_matches_interpreted(&mut set);
    }

    #[test]
    fn maxent_plane_is_bit_identical() {
        let (extractor, per_lang) = fitted();
        let dim = extractor.dim();
        let mut set = LanguageClassifierSet::build_vector(extractor, |lang| {
            let (pos, neg) = &per_lang[lang.index()];
            Box::new(MaxEnt::train(
                pos,
                neg,
                MaxEntConfig::with_iterations(dim, 5),
            ))
        });
        assert_compiled_matches_interpreted(&mut set);
    }

    #[test]
    fn rank_order_plane_is_bit_identical() {
        let (extractor, per_lang) = fitted();
        let mut set = LanguageClassifierSet::build_vector(extractor, |lang| {
            let (pos, neg) = &per_lang[lang.index()];
            Box::new(RankOrder::train(pos, neg, RankOrderConfig::default()))
        });
        assert_compiled_matches_interpreted(&mut set);
    }

    #[test]
    fn markov_plane_is_bit_identical() {
        let data = training();
        let mut set = LanguageClassifierSet::build(|lang| {
            let pos: Vec<String> = data
                .iter()
                .filter(|u| u.language == lang)
                .map(|u| u.url.clone())
                .collect();
            let neg: Vec<String> = data
                .iter()
                .filter(|u| u.language != lang)
                .map(|u| u.url.clone())
                .collect();
            Box::new(MarkovClassifier::train(&pos, &neg, MarkovConfig::default()))
        });
        assert_compiled_matches_interpreted(&mut set);
    }

    /// Non-lowerable scorers fall back to interpreted inside a compiled
    /// set and heterogeneous planes stay consistent.
    #[test]
    fn mixed_plane_with_fallback_scorers_matches_interpreted() {
        struct Threshold(f64);
        impl VectorClassifier for Threshold {
            fn score(&self, features: &SparseVector) -> f64 {
                features.sum() - self.0
            }
        }
        let (extractor, per_lang) = fitted();
        let dim = extractor.dim();
        let mut set = LanguageClassifierSet::with_extractor(extractor);
        let (pos, neg) = &per_lang[Language::German.index()];
        set.insert_model(
            Language::German,
            Box::new(NaiveBayes::train(pos, neg, NaiveBayesConfig::for_dim(dim))),
        );
        let (pos, neg) = &per_lang[Language::French.index()];
        set.insert_model(
            Language::French,
            Box::new(RelativeEntropy::train(
                pos,
                neg,
                RelativeEntropyConfig::for_dim(dim),
            )),
        );
        // A scorer with no lowering: stays interpreted in the plane.
        set.insert_model(Language::English, Box::new(Threshold(0.5)));
        set.insert(
            Language::Italian,
            Box::new(crate::cctld::CcTldClassifier::cctld(Language::Italian)),
        );
        assert_compiled_matches_interpreted(&mut set);
    }

    #[test]
    fn inserting_a_scorer_discards_the_plane() {
        let (extractor, per_lang) = fitted();
        let dim = extractor.dim();
        let mut set = LanguageClassifierSet::build_vector(extractor, |lang| {
            let (pos, neg) = &per_lang[lang.index()];
            Box::new(NaiveBayes::train(pos, neg, NaiveBayesConfig::for_dim(dim)))
        });
        set.compile();
        assert!(set.is_compiled());
        let (pos, neg) = &per_lang[0];
        set.insert_model(
            Language::English,
            Box::new(NaiveBayes::train(pos, neg, NaiveBayesConfig::for_dim(dim))),
        );
        assert!(!set.is_compiled(), "stale plane must be discarded");
        set.compile();
        assert!(set.is_compiled());
        set.clear_compiled();
        assert!(!set.is_compiled());
    }

    #[test]
    fn compiling_an_empty_set_is_harmless() {
        let mut set = LanguageClassifierSet::new();
        set.compile();
        assert!(set.is_compiled());
        assert_eq!(set.score_all("http://a.de/"), [None; 5]);
        assert_eq!(set.classify_all("http://a.de/"), [false; 5]);
    }

    use super::{PlanePayload, PlaneViews};
    use std::sync::Arc as StdArc;
    use urlid_mapped::{Lane, Mapping};

    /// Serialise `set`'s plane and rebuild it through mapped views —
    /// the in-memory equivalent of a `.urlm` pack/load cycle.
    fn round_trip_plane(set: &LanguageClassifierSet) -> super::CompiledPlane {
        let plane = set.plane().expect("set is compiled");
        let mut payload = PlanePayload::default();
        plane.serialize_into(&mut payload);
        // META scalars go through JSON exactly as the `.urlm` format
        // stores them.
        let meta: super::PlaneMeta =
            serde_json::from_str(&serde_json::to_string(&payload.meta).unwrap()).unwrap();
        let matrix_map = StdArc::new(Mapping::from_bytes(&payload.matrix));
        let f32_map = StdArc::new(Mapping::from_bytes(&payload.matrix_f32));
        let markov_map = StdArc::new(Mapping::from_bytes(&payload.markov));
        let views = PlaneViews {
            matrix: Lane::view(&matrix_map, 0, payload.matrix.len()).unwrap(),
            matrix_f32: Some(Lane::view(&f32_map, 0, payload.matrix_f32.len()).unwrap()),
            markov: meta
                .markov
                .is_some()
                .then(|| Lane::view(&markov_map, 0, payload.markov.len()).unwrap()),
        };
        super::CompiledPlane::from_bytes(plane.transform().cloned(), meta, views)
            .expect("round trip must validate")
    }

    #[test]
    fn serialized_plane_round_trips_bit_identically() {
        let (extractor, per_lang) = fitted();
        let dim = extractor.dim();
        let mut set = LanguageClassifierSet::build_vector(extractor, |lang| {
            let (pos, neg) = &per_lang[lang.index()];
            Box::new(NaiveBayes::train(pos, neg, NaiveBayesConfig::for_dim(dim)))
        });
        set.compile();
        let before: Vec<_> = probe_urls().iter().map(|u| set.score_all(u)).collect();
        let rebuilt = round_trip_plane(&set);
        assert!(!rebuilt.is_f32(), "mapped planes start on the exact lane");
        set.install_plane(rebuilt);
        let after: Vec<_> = probe_urls().iter().map(|u| set.score_all(u)).collect();
        assert_eq!(before, after, "f64 scores must survive the round trip");

        // The always-packed f32 lane is bit-identical to quantising the
        // original plane, because quantisation is deterministic.
        set.set_weight_lane(true);
        let mapped_f32: Vec<_> = probe_urls().iter().map(|u| set.score_all(u)).collect();
        set.clear_compiled();
        set.compile_f32();
        let compiled_f32: Vec<_> = probe_urls().iter().map(|u| set.score_all(u)).collect();
        assert_eq!(mapped_f32, compiled_f32);

        // And flipping back restores the exact lane without recompiling.
        set.set_weight_lane(false);
        let back: Vec<_> = probe_urls().iter().map(|u| set.score_all(u)).collect();
        assert_eq!(before, back);
    }

    #[test]
    fn markov_plane_round_trips_through_the_binary_payload() {
        let data = training();
        let mut set = LanguageClassifierSet::build(|lang| {
            let pos: Vec<String> = data
                .iter()
                .filter(|u| u.language == lang)
                .map(|u| u.url.clone())
                .collect();
            let neg: Vec<String> = data
                .iter()
                .filter(|u| u.language != lang)
                .map(|u| u.url.clone())
                .collect();
            Box::new(MarkovClassifier::train(&pos, &neg, MarkovConfig::default()))
        });
        set.compile();
        let before: Vec<_> = probe_urls().iter().map(|u| set.score_all(u)).collect();
        let rebuilt = round_trip_plane(&set);
        set.install_plane(rebuilt);
        let after: Vec<_> = probe_urls().iter().map(|u| set.score_all(u)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn from_bytes_rejects_structural_corruption() {
        let (extractor, per_lang) = fitted();
        let dim = extractor.dim();
        let mut set = LanguageClassifierSet::build_vector(extractor, |lang| {
            let (pos, neg) = &per_lang[lang.index()];
            Box::new(NaiveBayes::train(pos, neg, NaiveBayesConfig::for_dim(dim)))
        });
        set.compile();
        let plane = set.plane().unwrap();
        let mut payload = PlanePayload::default();
        plane.serialize_into(&mut payload);
        let views = |matrix: &[u8], f32_bytes: &[u8]| {
            let m = StdArc::new(Mapping::from_bytes(matrix));
            let f = StdArc::new(Mapping::from_bytes(f32_bytes));
            PlaneViews {
                matrix: Lane::view(&m, 0, matrix.len()).unwrap(),
                matrix_f32: Some(Lane::view(&f, 0, f32_bytes.len()).unwrap()),
                markov: None,
            }
        };

        // Truncated matrix section.
        let err = super::CompiledPlane::from_bytes(
            plane.transform().cloned(),
            payload.meta.clone(),
            views(
                &payload.matrix[..payload.matrix.len() - 8],
                &payload.matrix_f32,
            ),
        )
        .unwrap_err();
        assert!(err.contains("matrix section"), "{err}");

        // Declared stride disagreeing with the plans.
        let mut meta = payload.meta.clone();
        meta.stride += 1;
        let err = super::CompiledPlane::from_bytes(
            plane.transform().cloned(),
            meta,
            views(&payload.matrix, &payload.matrix_f32),
        )
        .unwrap_err();
        assert!(err.contains("stride"), "{err}");

        // f32 lane shorter than the f64 matrix.
        let err = super::CompiledPlane::from_bytes(
            plane.transform().cloned(),
            payload.meta.clone(),
            views(
                &payload.matrix,
                &payload.matrix_f32[..payload.matrix_f32.len() - 4],
            ),
        )
        .unwrap_err();
        assert!(err.contains("f32 lane"), "{err}");

        // META claiming a markov plane with no section behind it.
        let mut meta = payload.meta.clone();
        meta.markov = Some(super::MarkovMeta {
            tokenizer: urlid_tokenize::Tokenizer::default(),
            stride: 2,
            lanes: [Some(0), None, None, None, None],
        });
        let err = super::CompiledPlane::from_bytes(
            plane.transform().cloned(),
            meta,
            views(&payload.matrix, &payload.matrix_f32),
        )
        .unwrap_err();
        assert!(err.contains("markov"), "{err}");
    }
}
