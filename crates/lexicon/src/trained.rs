//! Trained dictionaries.
//!
//! Section 3.1 of the paper ("Trained dictionary"):
//!
//! > We also trained dictionaries on all the URLs in the training set.
//! > Here we automatically added tokens to the dictionary for a language X
//! > if this token (i) appeared in at least .01% of the URLs of language X,
//! > and (ii) at least 80% of the URLs in which the token appeared belong
//! > to X. [...] Only tokens of minimum length 3 were included in the
//! > dictionary.
//!
//! The builder counts, per token, in how many URLs of each language it
//! occurs (document frequency, not term frequency — "appeared in" is a
//! per-URL notion), then applies the two thresholds.

use crate::dictionary::Dictionary;
use crate::language::{Language, ALL_LANGUAGES};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use urlid_tokenize::Tokenizer;

/// Thresholds controlling trained-dictionary construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainedDictionaryConfig {
    /// Minimum fraction of the language's URLs a token must appear in
    /// (paper: 0.0001, i.e. 0.01 %).
    pub min_language_fraction: f64,
    /// Minimum fraction of the URLs containing the token that must belong
    /// to the language (paper: 0.8).
    pub min_purity: f64,
    /// Minimum token length (paper: 3).
    pub min_token_len: usize,
}

impl Default for TrainedDictionaryConfig {
    fn default() -> Self {
        Self {
            min_language_fraction: 0.0001,
            min_purity: 0.8,
            min_token_len: 3,
        }
    }
}

/// Incremental builder for per-language trained dictionaries.
///
/// ```
/// use urlid_lexicon::{Language, TrainedDictionaryBuilder};
///
/// let mut builder = TrainedDictionaryBuilder::default();
/// for _ in 0..10 {
///     builder.add_url("http://home.arcor.de/hans/", Language::German);
///     builder.add_url("http://www.galeon.com/juan/", Language::Spanish);
/// }
/// let trained = builder.build();
/// assert!(trained.dictionary(Language::German).contains("arcor"));
/// assert!(trained.dictionary(Language::Spanish).contains("galeon"));
/// assert!(!trained.dictionary(Language::German).contains("galeon"));
/// ```
#[derive(Debug, Clone)]
pub struct TrainedDictionaryBuilder {
    config: TrainedDictionaryConfig,
    tokenizer: Tokenizer,
    /// token -> per-language document frequency.
    doc_freq: HashMap<String, [u64; 5]>,
    /// number of URLs seen per language.
    url_counts: [u64; 5],
}

impl Default for TrainedDictionaryBuilder {
    fn default() -> Self {
        Self::new(TrainedDictionaryConfig::default())
    }
}

impl TrainedDictionaryBuilder {
    /// Create a builder with the given thresholds.
    pub fn new(config: TrainedDictionaryConfig) -> Self {
        Self {
            config,
            tokenizer: Tokenizer::default(),
            doc_freq: HashMap::new(),
            url_counts: [0; 5],
        }
    }

    /// Register one labelled training URL.
    pub fn add_url(&mut self, url: &str, lang: Language) {
        self.url_counts[lang.index()] += 1;
        // Per-URL de-duplication: a token occurring twice in one URL still
        // counts as one "URL in which the token appeared".
        let mut seen: HashSet<String> = HashSet::new();
        for token in self.tokenizer.tokenize(url) {
            if token.len() < self.config.min_token_len {
                continue;
            }
            seen.insert(token);
        }
        for token in seen {
            self.doc_freq.entry(token).or_insert([0; 5])[lang.index()] += 1;
        }
    }

    /// Register a batch of labelled URLs.
    pub fn add_urls<'a, I>(&mut self, urls: I)
    where
        I: IntoIterator<Item = (&'a str, Language)>,
    {
        for (url, lang) in urls {
            self.add_url(url, lang);
        }
    }

    /// Number of URLs seen for each language so far.
    pub fn url_counts(&self) -> [u64; 5] {
        self.url_counts
    }

    /// Absorb another builder's document frequencies and URL counts (the
    /// reduce step of a sharded trained-dictionary build). Frequencies
    /// are per-token `u64` sums and thresholds are applied only in
    /// [`TrainedDictionaryBuilder::build`], so merging shard builders in
    /// any order produces the same dictionaries as one sequential pass.
    pub fn merge(&mut self, other: TrainedDictionaryBuilder) {
        for (lang, n) in other.url_counts.iter().enumerate() {
            self.url_counts[lang] += n;
        }
        if self.doc_freq.is_empty() {
            self.doc_freq = other.doc_freq;
            return;
        }
        for (token, freqs) in other.doc_freq {
            let entry = self.doc_freq.entry(token).or_insert([0; 5]);
            for (lang, n) in freqs.iter().enumerate() {
                entry[lang] += n;
            }
        }
    }

    /// Apply the thresholds and produce the per-language dictionaries.
    pub fn build(&self) -> TrainedDictionary {
        let mut dicts: Vec<Dictionary> = (0..5).map(|_| Dictionary::new()).collect();
        for (token, freqs) in &self.doc_freq {
            let total: u64 = freqs.iter().sum();
            if total == 0 {
                continue;
            }
            for lang in ALL_LANGUAGES {
                let in_lang = freqs[lang.index()];
                let lang_urls = self.url_counts[lang.index()];
                if lang_urls == 0 || in_lang == 0 {
                    continue;
                }
                let fraction = in_lang as f64 / lang_urls as f64;
                let purity = in_lang as f64 / total as f64;
                if fraction >= self.config.min_language_fraction && purity >= self.config.min_purity
                {
                    dicts[lang.index()].insert(token);
                }
            }
        }
        TrainedDictionary {
            config: self.config,
            dicts,
        }
    }
}

/// The result of trained-dictionary construction: one [`Dictionary`] per
/// language.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedDictionary {
    config: TrainedDictionaryConfig,
    dicts: Vec<Dictionary>,
}

impl TrainedDictionary {
    /// An empty trained dictionary (used before any training has happened).
    pub fn empty() -> Self {
        Self {
            config: TrainedDictionaryConfig::default(),
            dicts: (0..5).map(|_| Dictionary::new()).collect(),
        }
    }

    /// The dictionary learnt for `lang`.
    pub fn dictionary(&self, lang: Language) -> &Dictionary {
        &self.dicts[lang.index()]
    }

    /// The configuration the dictionary was built with.
    pub fn config(&self) -> TrainedDictionaryConfig {
        self.config
    }

    /// Total number of entries across all five languages.
    pub fn total_entries(&self) -> usize {
        self.dicts.iter().map(|d| d.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder_with(urls: &[(&str, Language)]) -> TrainedDictionaryBuilder {
        let mut b = TrainedDictionaryBuilder::default();
        for (u, l) in urls {
            b.add_url(u, *l);
        }
        b
    }

    #[test]
    fn paper_examples_arcor_and_galeon() {
        // "the token 'arcor' gets added to the trained German dictionary and
        //  the token 'galeon' to the Spanish one"
        let mut b = TrainedDictionaryBuilder::default();
        for i in 0..50 {
            b.add_url(
                &format!("http://home.arcor.de/user{i}/seite"),
                Language::German,
            );
            b.add_url(
                &format!("http://www.galeon.com/usuario{i}/pagina"),
                Language::Spanish,
            );
            b.add_url(&format!("http://example{i}.co.uk/page"), Language::English);
        }
        let t = b.build();
        assert!(t.dictionary(Language::German).contains("arcor"));
        assert!(t.dictionary(Language::Spanish).contains("galeon"));
        assert!(!t.dictionary(Language::Spanish).contains("arcor"));
        assert!(!t.dictionary(Language::English).contains("galeon"));
    }

    #[test]
    fn purity_threshold_excludes_shared_tokens() {
        // "blog" appears in 50% German / 50% French URLs -> purity 0.5 < 0.8
        // for both, so neither dictionary contains it.
        let mut urls = Vec::new();
        for i in 0..20 {
            urls.push((format!("http://site{i}.de/blog/artikel"), Language::German));
            urls.push((format!("http://site{i}.fr/blog/article"), Language::French));
        }
        let refs: Vec<(&str, Language)> = urls.iter().map(|(u, l)| (u.as_str(), *l)).collect();
        let t = builder_with(&refs).build();
        assert!(!t.dictionary(Language::German).contains("blog"));
        assert!(!t.dictionary(Language::French).contains("blog"));
        // But "artikel" is pure German and "article" pure French.
        assert!(t.dictionary(Language::German).contains("artikel"));
        assert!(t.dictionary(Language::French).contains("article"));
    }

    #[test]
    fn purity_threshold_boundary_at_80_percent() {
        // Token in 4 German URLs and 1 French URL: purity 0.8 -> included
        // for German (>= 0.8), excluded for French (0.2).
        let urls = vec![
            ("http://a.de/probe", Language::German),
            ("http://b.de/probe", Language::German),
            ("http://c.de/probe", Language::German),
            ("http://d.de/probe", Language::German),
            ("http://e.fr/probe", Language::French),
        ];
        let t = builder_with(&urls).build();
        assert!(t.dictionary(Language::German).contains("probe"));
        assert!(!t.dictionary(Language::French).contains("probe"));
    }

    #[test]
    fn short_tokens_are_excluded() {
        let urls = vec![
            ("http://ab.de/xy/zz", Language::German),
            ("http://ab.de/xy/zz", Language::German),
        ];
        let t = builder_with(&urls).build();
        // "ab", "xy", "zz" all have length 2 < 3.
        assert_eq!(t.dictionary(Language::German).len(), 0);
    }

    #[test]
    fn min_language_fraction_filters_rare_tokens() {
        let config = TrainedDictionaryConfig {
            min_language_fraction: 0.5, // token must appear in >= 50% of URLs
            min_purity: 0.8,
            min_token_len: 3,
        };
        let mut b = TrainedDictionaryBuilder::new(config);
        b.add_url("http://common.de/haus", Language::German);
        b.add_url("http://common.de/haus", Language::German);
        b.add_url("http://common.de/garten", Language::German);
        b.add_url("http://other.de/keller", Language::German);
        let t = b.build();
        // "common" appears in 3/4 = 75% >= 50% -> in; "garten" 1/4 -> out.
        assert!(t.dictionary(Language::German).contains("common"));
        assert!(t.dictionary(Language::German).contains("haus"));
        assert!(!t.dictionary(Language::German).contains("garten"));
        assert!(!t.dictionary(Language::German).contains("keller"));
    }

    #[test]
    fn duplicate_tokens_within_one_url_count_once() {
        let mut b = TrainedDictionaryBuilder::default();
        // "wort" twice in one URL, once in another language's URL.
        b.add_url("http://wort.de/wort/wort", Language::German);
        b.add_url("http://wort.fr/page", Language::French);
        // doc freq: de=1, fr=1 -> purity 0.5 for both.
        let t = b.build();
        assert!(!t.dictionary(Language::German).contains("wort"));
        assert!(!t.dictionary(Language::French).contains("wort"));
    }

    #[test]
    fn empty_builder_produces_empty_dictionaries() {
        let t = TrainedDictionaryBuilder::default().build();
        assert_eq!(t.total_entries(), 0);
        let e = TrainedDictionary::empty();
        assert_eq!(e.total_entries(), 0);
    }

    #[test]
    fn url_counts_track_languages() {
        let mut b = TrainedDictionaryBuilder::default();
        b.add_url("http://a.de/", Language::German);
        b.add_url("http://b.de/", Language::German);
        b.add_url("http://c.it/", Language::Italian);
        let c = b.url_counts();
        assert_eq!(c[Language::German.index()], 2);
        assert_eq!(c[Language::Italian.index()], 1);
        assert_eq!(c[Language::English.index()], 0);
    }

    #[test]
    fn merged_shards_build_the_same_dictionary_as_one_pass() {
        let urls: Vec<(String, Language)> = (0..40)
            .flat_map(|i| {
                [
                    (
                        format!("http://home.arcor.de/user{i}/seite"),
                        Language::German,
                    ),
                    (
                        format!("http://www.galeon.com/usuario{i}/pagina"),
                        Language::Spanish,
                    ),
                    (format!("http://example{i}.co.uk/page"), Language::English),
                ]
            })
            .collect();
        let mut whole = TrainedDictionaryBuilder::default();
        for (u, l) in &urls {
            whole.add_url(u, *l);
        }
        // Three unequal shards, merged out of order.
        let mut shards: Vec<TrainedDictionaryBuilder> = (0..3)
            .map(|_| TrainedDictionaryBuilder::default())
            .collect();
        for (i, (u, l)) in urls.iter().enumerate() {
            shards[if i < 7 { 0 } else { 1 + i % 2 }].add_url(u, *l);
        }
        let mut merged = shards.pop().unwrap();
        for shard in shards {
            merged.merge(shard);
        }
        assert_eq!(merged.url_counts(), whole.url_counts());
        assert_eq!(merged.build(), whole.build());
        assert!(merged
            .build()
            .dictionary(Language::German)
            .contains("arcor"));
    }

    #[test]
    fn merge_into_empty_builder_adopts_counts() {
        let mut empty = TrainedDictionaryBuilder::default();
        let mut other = TrainedDictionaryBuilder::default();
        for i in 0..30 {
            other.add_url(&format!("http://wetter{i}.de/bericht"), Language::German);
        }
        empty.merge(other.clone());
        assert_eq!(empty.url_counts(), other.url_counts());
        assert_eq!(empty.build(), other.build());
    }

    #[test]
    fn serde_round_trip() {
        let urls = vec![("http://home.arcor.de/x/seite", Language::German)];
        let t = builder_with(&urls).build();
        let json = serde_json::to_string(&t).unwrap();
        let back: TrainedDictionary = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
