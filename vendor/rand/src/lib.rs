//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the small subset of the rand 0.9 API that `urlid` actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `random_range` / `random_bool`. The generator is
//! xoshiro256++ seeded via SplitMix64 — deterministic, fast, and easily
//! good enough for synthetic-corpus generation and negative sampling.
//! It makes no attempt to be statistically compatible with upstream
//! `StdRng` (nothing in the workspace depends on the exact stream).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (uniform_u128(rng, span) as i128)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (uniform_u128(rng, span) as i128)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + unit_f64(rng) * (end - start)
    }
}

/// Unbiased uniform draw from `0..span` (span > 0) via rejection sampling.
fn uniform_u128(rng: &mut dyn RngCore, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // span fits in u64 for every range the workspace uses.
    let span64 = span as u64;
    let zone = u64::MAX - (u64::MAX % span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

/// A uniform draw from `[0, 1)` with 53 bits of precision.
fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from an integer or float range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }

    /// A uniform sample of a type with a standard distribution (only
    /// `f64` in `[0, 1)` is supported by the vendored stand-in).
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types `Rng::random` can produce.
pub trait StandardUniform: Sized {
    /// Draw a standard-distribution sample.
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

impl StandardUniform for f64 {
    fn sample_standard(rng: &mut dyn RngCore) -> f64 {
        unit_f64(rng)
    }
}

impl StandardUniform for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for u64 {
    fn sample_standard(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5i32..=9);
            assert!((5..=9).contains(&w));
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.1));
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
