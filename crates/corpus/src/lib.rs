//! # urlid-corpus
//!
//! Synthetic web corpora for the experiments of Baykan, Henzinger, Weber
//! (VLDB 2008).
//!
//! The paper evaluates on three data sets that cannot be redistributed
//! (an ODP/dmoz crawl, Microsoft Live Search results and a hand-labelled
//! 2005 web crawl). This crate generates *synthetic substitutes* that
//! reproduce the distributional properties the paper identifies as
//! decisive (see DESIGN.md for the substitution rationale):
//!
//! * per-language **top-level-domain mixes** calibrated so that the ccTLD
//!   baseline achieves roughly the recall the paper reports per data set
//!   (Table 4);
//! * **domain reuse**: URLs are drawn from per-language host pools, so a
//!   fraction of test URLs shares a registered domain with training URLs
//!   (Figure 3), and some domains host several languages;
//! * **English-looking URLs** for non-English pages (the paper's main
//!   source of confusion, Tables 3 and 6);
//! * language-typical path vocabulary, hyphenation rates (German URLs
//!   hyphenate ≈5× more than English ones) and made-up tokens with
//!   language-typical morphology so trigram features generalise;
//! * synthetic **page content** for the Section 7 "training on content"
//!   experiment, constructed so that strong URL signals (the tokens `it`,
//!   `de`, `es`, ...) are diluted by ordinary words of other languages;
//! * two **simulated human annotators** whose URL-only judgements mirror
//!   the behaviour of the paper's evaluators (default to English when no
//!   clear signal is present) for Tables 2 and 3.
//!
//! Everything is deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod content;
pub mod datasets;
pub mod generator;
pub mod human;
pub mod morphology;
pub mod profiles;
pub mod shards;

pub use content::ContentGenerator;
pub use datasets::{
    attach_content, odp_dataset, ser_dataset, web_crawl_dataset, CorpusScale, PaperCorpus,
};
pub use generator::UrlGenerator;
pub use human::SimulatedHuman;
pub use profiles::{DatasetKind, DatasetProfile, LanguageProfile};
pub use shards::{shard_seed, ShardPlan};
