//! Vendored minimal `Serialize` / `Deserialize` derive macros.
//!
//! The build container has no crates.io access (so no `syn` / `quote`);
//! the input item is parsed directly from the [`proc_macro::TokenStream`]
//! and the trait impls are emitted as formatted source text. Supported
//! shapes — exactly what the `urlid` workspace uses:
//!
//! * structs with named fields, tuple structs, unit structs;
//! * enums with unit, newtype, tuple and struct variants;
//! * `#[serde(skip, default)]` and `#[serde(skip, default = "path")]`
//!   on named struct fields;
//! * `#[serde(default)]` (without `skip`) on named struct fields: the
//!   field serialises normally but deserialisation tolerates a missing
//!   key, restoring the default — for fields added to a persisted
//!   schema after files without them were already committed;
//! * no generic parameters (the workspace derives only on concrete types).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (vendored data-model flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit_serialize(&item)
        .parse()
        .expect("generated impl parses")
}

/// Derive `serde::Deserialize` (vendored data-model flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------

struct Field {
    name: String,
    /// `#[serde(skip)]`: not serialised, restored from a default.
    skip: bool,
    /// `#[serde(default)]` without `skip`: serialised normally, but a
    /// missing key deserialises to the default instead of erroring.
    has_default: bool,
    /// Path expression for the default of a skipped/defaulted field
    /// (from `default = "path"`); `None` means `Default::default()`.
    default_path: Option<String>,
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct SerdeAttr {
    skip: bool,
    has_default: bool,
    default_path: Option<String>,
}

/// Inspect one `#[...]` attribute body; returns the serde options when it
/// is a `#[serde(...)]` attribute.
fn parse_attr_group(group: &proc_macro::Group) -> Option<SerdeAttr> {
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let Some(TokenTree::Group(args)) = tokens.next() else {
        return None;
    };
    let mut attr = SerdeAttr {
        skip: false,
        has_default: false,
        default_path: None,
    };
    let mut inner = args.stream().into_iter().peekable();
    while let Some(tt) = inner.next() {
        match tt {
            TokenTree::Ident(id) if id.to_string() == "skip" => attr.skip = true,
            TokenTree::Ident(id) if id.to_string() == "default" => {
                attr.has_default = true;
                if matches!(inner.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    inner.next();
                    if let Some(TokenTree::Literal(lit)) = inner.next() {
                        let s = lit.to_string();
                        attr.default_path = Some(s.trim_matches('"').to_owned());
                    }
                }
            }
            TokenTree::Ident(other) => {
                panic!("unsupported serde attribute option `{other}`")
            }
            _ => {}
        }
    }
    Some(attr)
}

/// Skip attributes and visibility; fold any `#[serde(...)]` options found.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> (usize, SerdeAttr) {
    let mut attr = SerdeAttr {
        skip: false,
        has_default: false,
        default_path: None,
    };
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if let Some(found) = parse_attr_group(g) {
                        attr.skip |= found.skip;
                        attr.has_default |= found.has_default;
                        if found.default_path.is_some() {
                            attr.default_path = found.default_path;
                        }
                    }
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return (i, attr),
        }
    }
}

/// Count the top-level commas of a token sequence (angle brackets tracked
/// so that `HashMap<String, u32>` counts as one element).
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(Vec::new());
                continue;
            }
            _ => {}
        }
        out.last_mut().unwrap().push(tt);
    }
    if out.last().map(|v| v.is_empty()).unwrap_or(false) {
        out.pop();
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|tokens| {
            let (i, attr) = skip_attrs_and_vis(&tokens, 0);
            let TokenTree::Ident(name) = &tokens[i] else {
                panic!("expected field name, found {:?}", tokens[i].to_string())
            };
            Field {
                name: name.to_string(),
                skip: attr.skip,
                has_default: attr.has_default,
                default_path: attr.default_path,
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = skip_attrs_and_vis(&tokens, 0);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct/enum, found {:?}", other.to_string()),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {:?}", other.to_string()),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("the vendored serde derive does not support generic types ({name})");
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(split_top_level_commas(g.stream()).len())
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!(
                    "unsupported struct body for {name}: {:?}",
                    other.map(|t| t.to_string())
                ),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = tokens.get(i) else {
                panic!("expected enum body for {name}")
            };
            let variants = split_top_level_commas(g.stream())
                .into_iter()
                .map(|tokens| {
                    let (j, _) = skip_attrs_and_vis(&tokens, 0);
                    let TokenTree::Ident(vname) = &tokens[j] else {
                        panic!("expected variant name in {name}")
                    };
                    let fields = match tokens.get(j + 1) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            Fields::Named(parse_named_fields(g.stream()))
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            Fields::Tuple(split_top_level_commas(g.stream()).len())
                        }
                        _ => Fields::Unit,
                    };
                    (vname.to_string(), fields)
                })
                .collect();
            Item::Enum { name, variants }
        }
        other => panic!("cannot derive for {other} items"),
    }
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn default_expr(field: &Field) -> String {
    match &field.default_path {
        Some(path) => format!("{path}()"),
        None => "::std::default::Default::default()".to_owned(),
    }
}

fn emit_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_owned(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Named(fields) => {
                    let mut s = String::from("{ let mut obj = ::serde::Value::object();\n");
                    for f in fields.iter().filter(|f| !f.skip) {
                        s.push_str(&format!(
                            "obj.insert(\"{0}\", ::serde::Serialize::to_value(&self.{0}));\n",
                            f.name
                        ));
                    }
                    s.push_str("obj }");
                    s
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_owned()),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_owned()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binders}) => {{\n\
                             let mut obj = ::serde::Value::object();\n\
                             obj.insert(\"{vname}\", {payload});\nobj }}\n",
                            binders = binders.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut payload =
                            String::from("{ let mut inner = ::serde::Value::object();\n");
                        for f in fields.iter().filter(|f| !f.skip) {
                            payload.push_str(&format!(
                                "inner.insert(\"{0}\", ::serde::Serialize::to_value({0}));\n",
                                f.name
                            ));
                        }
                        payload.push_str("inner }");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binders} }} => {{\n\
                             let mut obj = ::serde::Value::object();\n\
                             obj.insert(\"{vname}\", {payload});\nobj }}\n",
                            binders = binders.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn named_field_initializers(fields: &[Field], source: &str) -> String {
    fields
        .iter()
        .map(|f| {
            if f.skip {
                format!("{}: {},\n", f.name, default_expr(f))
            } else if f.has_default {
                format!(
                    "{0}: match ::serde::opt_field({source}, \"{0}\")? {{\n\
                     ::std::option::Option::Some(v) => v,\n\
                     ::std::option::Option::None => {1},\n}},\n",
                    f.name,
                    default_expr(f)
                )
            } else {
                format!("{0}: ::serde::field({source}, \"{0}\")?,\n", f.name)
            }
        })
        .collect()
}

fn emit_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                        .collect();
                    format!(
                        "match value {{\n\
                         ::serde::Value::Array(items) if items.len() == {n} =>\n\
                         ::std::result::Result::Ok({name}({items})),\n\
                         other => ::std::result::Result::Err(\n\
                         ::serde::DeError::mismatch(\"array of length {n}\", other)),\n}}",
                        items = items.join(", ")
                    )
                }
                Fields::Named(fields) => {
                    let inits = named_field_initializers(fields, "value");
                    format!(
                        "if !matches!(value, ::serde::Value::Object(_)) {{\n\
                         return ::std::result::Result::Err(\n\
                         ::serde::DeError::mismatch(\"object\", value));\n}}\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})"
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value)\n\
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Fields::Tuple(1) => payload_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok(\n\
                         {name}::{vname}(::serde::Deserialize::from_value(payload)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => match payload {{\n\
                             ::serde::Value::Array(items) if items.len() == {n} =>\n\
                             ::std::result::Result::Ok({name}::{vname}({items})),\n\
                             other => ::std::result::Result::Err(\n\
                             ::serde::DeError::mismatch(\"array of length {n}\", other)),\n}},\n",
                            items = items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let inits = named_field_initializers(fields, "payload");
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{\n\
                             {inits}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value)\n\
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match value {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::DeError(\n\
                 format!(\"unknown variant {{other:?}} for {name}\"))),\n}},\n\
                 ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (key, payload) = &entries[0];\n\
                 let _ = payload;\n\
                 match key.as_str() {{\n\
                 {payload_arms}\
                 other => ::std::result::Result::Err(::serde::DeError(\n\
                 format!(\"unknown variant {{other:?}} for {name}\"))),\n}}\n}},\n\
                 other => ::std::result::Result::Err(\n\
                 ::serde::DeError::mismatch(\"enum value\", other)),\n}}\n}}\n}}\n"
            )
        }
    }
}
