//! The [`Language`] enum and helpers.
//!
//! The paper studies five languages: English, German, French, Spanish and
//! Italian, each handled by an independent binary classifier ("is it
//! language X or not?", Section 3.2). The enum is deliberately closed: the
//! whole pipeline (lexicons, corpus generators, evaluation tables) is
//! organised around these five classes, matching the paper.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// One of the five languages studied in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Language {
    /// English.
    English,
    /// German.
    German,
    /// French.
    French,
    /// Spanish.
    Spanish,
    /// Italian.
    Italian,
}

/// All five languages in the canonical order used throughout the paper's
/// tables (English, German, French, Spanish, Italian).
pub const ALL_LANGUAGES: [Language; 5] = [
    Language::English,
    Language::German,
    Language::French,
    Language::Spanish,
    Language::Italian,
];

impl Language {
    /// All five languages in canonical paper order.
    pub fn all() -> [Language; 5] {
        ALL_LANGUAGES
    }

    /// A stable index in `0..5`, usable for array-backed per-language data.
    pub fn index(self) -> usize {
        match self {
            Language::English => 0,
            Language::German => 1,
            Language::French => 2,
            Language::Spanish => 3,
            Language::Italian => 4,
        }
    }

    /// The language at the given index (inverse of [`Language::index`]).
    ///
    /// # Panics
    /// Panics if `idx >= 5`.
    pub fn from_index(idx: usize) -> Language {
        ALL_LANGUAGES[idx]
    }

    /// ISO 639-1 code (`en`, `de`, `fr`, `es`, `it`).
    pub fn iso_code(self) -> &'static str {
        match self {
            Language::English => "en",
            Language::German => "de",
            Language::French => "fr",
            Language::Spanish => "es",
            Language::Italian => "it",
        }
    }

    /// English name of the language.
    pub fn name(self) -> &'static str {
        match self {
            Language::English => "English",
            Language::German => "German",
            Language::French => "French",
            Language::Spanish => "Spanish",
            Language::Italian => "Italian",
        }
    }

    /// Two-letter abbreviation used in the paper's tables
    /// (`En.`, `Ge.`, `Fr.`, `Sp.`, `It.`), without the trailing dot.
    pub fn paper_abbrev(self) -> &'static str {
        match self {
            Language::English => "En",
            Language::German => "Ge",
            Language::French => "Fr",
            Language::Spanish => "Sp",
            Language::Italian => "It",
        }
    }

    /// The other four languages (useful for negative sampling).
    pub fn others(self) -> Vec<Language> {
        ALL_LANGUAGES
            .iter()
            .copied()
            .filter(|l| *l != self)
            .collect()
    }
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a [`Language`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LanguageParseError(pub String);

impl fmt::Display for LanguageParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown language: {:?}", self.0)
    }
}

impl std::error::Error for LanguageParseError {}

impl FromStr for Language {
    type Err = LanguageParseError;

    /// Parses ISO codes (`en`), full names (`English`, case-insensitive)
    /// and the paper's abbreviations (`En`, `Ge`, ...).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.trim().trim_end_matches('.').to_lowercase();
        match lower.as_str() {
            "en" | "english" | "eng" => Ok(Language::English),
            "de" | "ge" | "german" | "deutsch" | "ger" => Ok(Language::German),
            "fr" | "french" | "francais" | "français" | "fra" => Ok(Language::French),
            "es" | "sp" | "spanish" | "espanol" | "español" | "spa" => Ok(Language::Spanish),
            "it" | "italian" | "italiano" | "ita" => Ok(Language::Italian),
            _ => Err(LanguageParseError(s.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for (i, lang) in ALL_LANGUAGES.iter().enumerate() {
            assert_eq!(lang.index(), i);
            assert_eq!(Language::from_index(i), *lang);
        }
    }

    #[test]
    fn iso_codes_are_unique_and_lowercase() {
        let codes: Vec<_> = ALL_LANGUAGES.iter().map(|l| l.iso_code()).collect();
        let mut dedup = codes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 5);
        assert!(codes
            .iter()
            .all(|c| c.len() == 2 && c.chars().all(|ch| ch.is_ascii_lowercase())));
    }

    #[test]
    fn parsing_accepts_many_spellings() {
        assert_eq!("en".parse::<Language>().unwrap(), Language::English);
        assert_eq!("German".parse::<Language>().unwrap(), Language::German);
        assert_eq!("Ge.".parse::<Language>().unwrap(), Language::German);
        assert_eq!("FRANÇAIS".parse::<Language>().unwrap(), Language::French);
        assert_eq!("sp".parse::<Language>().unwrap(), Language::Spanish);
        assert_eq!("italiano".parse::<Language>().unwrap(), Language::Italian);
        assert!("klingon".parse::<Language>().is_err());
        assert!("".parse::<Language>().is_err());
    }

    #[test]
    fn display_and_name_agree() {
        for lang in ALL_LANGUAGES {
            assert_eq!(lang.to_string(), lang.name());
            // Round trip through Display.
            assert_eq!(lang.to_string().parse::<Language>().unwrap(), lang);
        }
    }

    #[test]
    fn others_excludes_self() {
        for lang in ALL_LANGUAGES {
            let others = lang.others();
            assert_eq!(others.len(), 4);
            assert!(!others.contains(&lang));
        }
    }

    #[test]
    fn serde_round_trip() {
        for lang in ALL_LANGUAGES {
            let json = serde_json::to_string(&lang).unwrap();
            let back: Language = serde_json::from_str(&json).unwrap();
            assert_eq!(back, lang);
        }
    }

    #[test]
    fn ordering_matches_paper_table_order() {
        let mut langs = vec![
            Language::Italian,
            Language::English,
            Language::Spanish,
            Language::German,
            Language::French,
        ];
        langs.sort();
        assert_eq!(langs, ALL_LANGUAGES.to_vec());
    }
}
