//! Log-linear histograms with bounded relative error.
//!
//! Values (typically microsecond durations) are bucketed into
//! power-of-two ranges, each subdivided into [`SUB_BUCKETS`] linear
//! sub-buckets (HdrHistogram-style). Values below [`SUB_BUCKETS`] get
//! exact unit-width buckets. The reported quantile for any recorded
//! value `v` is at most `v / 32` (3.125%) above the true value, exact
//! for `v < 32`.
//!
//! Two variants share the bucket math:
//! - [`Histogram`]: plain, mergeable — for single-threaded collection
//!   (loadgen workers, trainer shards, bench loops) and for snapshots.
//! - [`AtomicHistogram`]: relaxed-atomic recording for concurrent hot
//!   paths (the serve metrics plane); `snapshot()` yields a plain
//!   [`Histogram`] for quantile queries and merging.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the number of linear sub-buckets per power-of-two range.
pub const SUB_BITS: u32 = 5;
/// Number of linear sub-buckets per power-of-two range (32).
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Largest power-of-two exponent covered before clamping (2^40 ≈ 12.7
/// days in microseconds — far beyond any duration we record).
const MAX_EXP: u32 = 39;
/// Total bucket count: 32 exact unit buckets + 35 ranges × 32 sub-buckets.
pub const BUCKETS: usize = ((MAX_EXP - SUB_BITS + 1) as usize + 1) * SUB_BUCKETS as usize;

/// Bucket index for a value. Total order: `v1 <= v2` implies
/// `bucket_index(v1) <= bucket_index(v2)`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    if msb > MAX_EXP {
        return BUCKETS - 1;
    }
    let sub = (value >> (msb - SUB_BITS)) & (SUB_BUCKETS - 1);
    ((msb - SUB_BITS + 1) as usize) * SUB_BUCKETS as usize + sub as usize
}

/// Inclusive lower bound of a bucket.
#[inline]
pub fn bucket_lower(index: usize) -> u64 {
    if index < SUB_BUCKETS as usize {
        return index as u64;
    }
    let m = index as u64 / SUB_BUCKETS + (SUB_BITS as u64 - 1);
    let sub = index as u64 % SUB_BUCKETS;
    (1u64 << m) + (sub << (m - SUB_BITS as u64))
}

/// Exclusive upper bound of a bucket.
#[inline]
pub fn bucket_upper(index: usize) -> u64 {
    if index < SUB_BUCKETS as usize {
        return index as u64 + 1;
    }
    let m = index as u64 / SUB_BUCKETS + (SUB_BITS as u64 - 1);
    bucket_lower(index) + (1u64 << (m - SUB_BITS as u64))
}

/// A mergeable log-linear histogram of `u64` values.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record a value `n` times.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`).
    ///
    /// Returns the smallest bucket upper bound covering the ceil-rank
    /// value, clamped to the observed maximum: at most `true / 32`
    /// above the true quantile (exact below 32). Monotone in `q`.
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some((bucket_upper(i) - 1).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram into this one. Exact (integer adds):
    /// associative and commutative.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Iterate non-empty buckets as `(lower, upper_exclusive, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower(i), bucket_upper(i), c))
    }
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count
            && self.sum == other.sum
            && self.max == other.max
            && (self.count == 0 || self.min == other.min)
            && self.buckets == other.buckets
    }
}

/// A log-linear histogram recordable from many threads with relaxed
/// atomics. Reads go through [`AtomicHistogram::snapshot`]; the
/// snapshot is not a single atomic cut (counts may tear by a few
/// in-flight records), which is fine for monitoring.
pub struct AtomicHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty atomic histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value (wait-free, relaxed ordering, no allocation).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current state into a plain [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        Histogram {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_contiguous_and_ordered() {
        // Every bucket's upper bound is the next bucket's lower bound.
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_upper(i), bucket_lower(i + 1), "gap at bucket {i}");
        }
        // Small values are exact.
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
            assert_eq!(bucket_upper(v as usize), v + 1);
        }
    }

    #[test]
    fn huge_values_clamp_to_last_bucket() {
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index(1 << 40), BUCKETS - 1);
    }

    #[test]
    fn quantiles_on_known_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.50).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // Within the 3.125% bound of the true quantiles (500, 990).
        assert!((500..=516).contains(&p50), "p50={p50}");
        assert!((990..=1021).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(1.0).unwrap(), 1000);
    }

    #[test]
    fn empty_histogram_behaviour() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn atomic_snapshot_matches_plain() {
        let a = AtomicHistogram::new();
        let mut p = Histogram::new();
        for v in [0u64, 1, 31, 32, 33, 1000, 123_456, 1 << 41] {
            a.record(v);
            p.record(v);
        }
        assert_eq!(a.snapshot(), p);
    }
}
