//! Arena-interned vocabularies for the compiled scoring plane.
//!
//! The interpreted [`crate::Vocabulary`] stores one heap `String` per
//! feature behind a `HashMap<String, u32>`: every lookup SipHashes the
//! query and then chases a pointer per probed bucket. On the scoring hot
//! path — a handful of token/trigram lookups per URL, millions of URLs —
//! that layout dominates the cost of classification.
//!
//! [`InternedVocabulary`] is the runtime representation the compiled
//! plane uses instead: every feature string lives in **one contiguous
//! byte arena** (`bounds[i]..bounds[i + 1]` is feature `i`), and lookups
//! go through an open-addressing table whose entries carry the
//! **precomputed 64-bit hash** of their feature, so a probe is one
//! integer compare before any byte comparison happens. Lookups take
//! `&[u8]` straight from the tokenizer's borrowed-token handoff — no
//! `String`, no `&str` round-trip, no allocation.
//!
//! Interning never changes an index: `interned.get(name.as_bytes()) ==
//! vocabulary.get(name)` for every string, which is what makes the
//! compiled plane bit-identical to the interpreted one.
//!
//! All four arrays live in [`Lane`]s, so an interned vocabulary can
//! either own its storage (built by [`InternedVocabulary::from_vocabulary`]
//! at compile time) or borrow it zero-copy from a `.urlm` mapping
//! (rebuilt by [`InternedVocabulary::from_lanes`] at load time — the
//! on-disk sections *are* these arrays, byte for byte).

use crate::vocabulary::Vocabulary;
use urlid_mapped::Lane;

/// FNV-1a 64-bit: tiny, allocation-free, and fast for the short keys
/// (tokens, trigrams) vocabularies hold.
#[inline]
fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A read-only vocabulary interned into a byte arena with an
/// open-addressing, precomputed-hash lookup table.
#[derive(Debug, Clone, Default)]
pub struct InternedVocabulary {
    /// All feature strings, concatenated.
    arena: Lane<u8>,
    /// `len + 1` offsets into the arena; feature `i` is
    /// `arena[bounds[i]..bounds[i + 1]]`.
    bounds: Lane<u32>,
    /// Precomputed hash of every feature, indexed by feature id.
    hashes: Lane<u64>,
    /// Open-addressing slots holding `feature_id + 1` (0 = empty). The
    /// length is a power of two at most half full, so linear probing
    /// terminates.
    table: Lane<u32>,
    /// `table.len() - 1`, for masking.
    mask: usize,
}

/// Borrowed views of the four interned arrays, in the exact layout the
/// `.urlm` sections persist. Handed to the format writer by
/// [`InternedVocabulary::parts`].
#[derive(Debug, Clone, Copy)]
pub struct InternParts<'a> {
    /// Concatenated feature bytes.
    pub arena: &'a [u8],
    /// `len + 1` arena offsets.
    pub bounds: &'a [u32],
    /// Precomputed per-feature FNV-1a hashes.
    pub hashes: &'a [u64],
    /// Open-addressing slots (`feature_id + 1`, 0 = empty).
    pub table: &'a [u32],
}

impl InternedVocabulary {
    /// Intern a frozen [`Vocabulary`]. Indices are preserved exactly.
    pub fn from_vocabulary(vocabulary: &Vocabulary) -> Self {
        let len = vocabulary.len();
        if len == 0 {
            return Self::default();
        }
        let mut arena = Vec::new();
        let mut bounds = Vec::with_capacity(len + 1);
        let mut hashes = Vec::with_capacity(len);
        bounds.push(0u32);
        // `Vocabulary::iter` yields (index, name) in ascending dense
        // index order by construction, so appending in iteration order
        // lays the arena out index-ordered (the debug_assert guards the
        // assumption).
        for (i, name) in vocabulary.iter() {
            debug_assert_eq!(i as usize + 1, bounds.len(), "dense index order");
            arena.extend_from_slice(name.as_bytes());
            bounds.push(arena.len() as u32);
            hashes.push(hash_bytes(name.as_bytes()));
        }
        // ≤ 50% load factor keeps probe chains short.
        let capacity = (len * 2).next_power_of_two().max(8);
        let mask = capacity - 1;
        let mut table = vec![0u32; capacity];
        for (i, &h) in hashes.iter().enumerate() {
            let mut slot = (h as usize) & mask;
            while table[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            table[slot] = i as u32 + 1;
        }
        Self {
            arena: Lane::from_vec(arena),
            bounds: Lane::from_vec(bounds),
            hashes: Lane::from_vec(hashes),
            table: Lane::from_vec(table),
            mask,
        }
    }

    /// Borrowed views of the four arrays, for the `.urlm` writer.
    pub fn parts(&self) -> InternParts<'_> {
        InternParts {
            arena: &self.arena,
            bounds: &self.bounds,
            hashes: &self.hashes,
            table: &self.table,
        }
    }

    /// Rebuild an interned vocabulary over (usually mapped) lanes —
    /// the zero-copy load path of the `.urlm` format.
    ///
    /// The caller has already verified section checksums; this
    /// validates every *structural* invariant later accesses rely on
    /// (bounds monotone and inside the arena, table a power of two
    /// with in-range entries and at least one empty slot so probing
    /// terminates), so a corrupt-but-checksum-valid file fails closed
    /// here instead of panicking on the hot path.
    pub fn from_lanes(
        arena: Lane<u8>,
        bounds: Lane<u32>,
        hashes: Lane<u64>,
        table: Lane<u32>,
    ) -> Result<Self, String> {
        if hashes.is_empty() {
            if !arena.is_empty() || bounds.len() > 1 || !table.is_empty() {
                return Err("empty vocabulary with non-empty companion sections".into());
            }
            return Ok(Self::default());
        }
        let len = hashes.len();
        if bounds.len() != len + 1 {
            return Err(format!(
                "bounds has {} entries for {} features (want {})",
                bounds.len(),
                len,
                len + 1
            ));
        }
        if bounds[0] != 0 {
            return Err(format!("bounds[0] is {}, want 0", bounds[0]));
        }
        for w in bounds.as_slice().windows(2) {
            if w[1] < w[0] {
                return Err(format!("bounds not monotone: {} then {}", w[0], w[1]));
            }
        }
        if bounds[len] as usize != arena.len() {
            return Err(format!(
                "last bound {} does not close the {}-byte arena",
                bounds[len],
                arena.len()
            ));
        }
        let expected_capacity = (len * 2).next_power_of_two().max(8);
        if table.len() != expected_capacity {
            return Err(format!(
                "table capacity {} for {} features (want {})",
                table.len(),
                len,
                expected_capacity
            ));
        }
        let mut empties = 0usize;
        for &entry in table.iter() {
            if entry == 0 {
                empties += 1;
            } else if entry as usize > len {
                return Err(format!("table entry {entry} exceeds {len} features"));
            }
        }
        if empties == 0 {
            return Err("lookup table has no empty slot; probing would not terminate".into());
        }
        let mask = table.len() - 1;
        Ok(Self {
            arena,
            bounds,
            hashes,
            table,
            mask,
        })
    }

    /// Number of interned features.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Is the vocabulary empty?
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// The bytes of feature `index`.
    #[inline]
    fn bytes_of(&self, index: u32) -> &[u8] {
        let start = self.bounds[index as usize] as usize;
        let end = self.bounds[index as usize + 1] as usize;
        &self.arena[start..end]
    }

    /// The feature string at an index (features are always valid UTF-8:
    /// they were interned from `&str`s).
    pub fn name(&self, index: u32) -> Option<&str> {
        if (index as usize) < self.len() {
            std::str::from_utf8(self.bytes_of(index)).ok()
        } else {
            None
        }
    }

    /// Look up a feature by its raw bytes — the zero-allocation hot-path
    /// entry point fed straight from the tokenizer.
    #[inline]
    pub fn get(&self, feature: &[u8]) -> Option<u32> {
        if self.table.is_empty() {
            return None;
        }
        let h = hash_bytes(feature);
        let mut slot = (h as usize) & self.mask;
        loop {
            match self.table[slot] {
                0 => return None,
                entry => {
                    let index = entry - 1;
                    // Precomputed hash first: a 64-bit compare rejects
                    // almost every non-match before the byte compare.
                    if self.hashes[index as usize] == h && self.bytes_of(index) == feature {
                        return Some(index);
                    }
                }
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// [`InternedVocabulary::get`] for `&str` callers.
    #[inline]
    pub fn get_str(&self, feature: &str) -> Option<u32> {
        self.get(feature.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab_of(names: &[&str]) -> Vocabulary {
        let mut v = Vocabulary::new();
        for n in names {
            v.get_or_insert(n);
        }
        v
    }

    #[test]
    fn interning_preserves_every_index() {
        let names = ["wetter", "bericht", "de", "com", "weather", "a", ""];
        let v = vocab_of(&names);
        let interned = InternedVocabulary::from_vocabulary(&v);
        assert_eq!(interned.len(), v.len());
        for name in names {
            assert_eq!(
                interned.get(name.as_bytes()),
                v.get(name),
                "{name:?} diverges"
            );
            assert_eq!(interned.get_str(name), v.get(name));
        }
        for (i, name) in v.iter() {
            assert_eq!(interned.name(i), Some(name));
        }
        assert_eq!(interned.name(names.len() as u32), None);
    }

    #[test]
    fn misses_are_misses() {
        let v = vocab_of(&["alpha", "beta"]);
        let interned = InternedVocabulary::from_vocabulary(&v);
        for miss in ["gamma", "alph", "alphaa", "", "ALPHA"] {
            assert_eq!(interned.get(miss.as_bytes()), None, "{miss:?}");
        }
    }

    #[test]
    fn empty_vocabulary_answers_none() {
        let interned = InternedVocabulary::from_vocabulary(&Vocabulary::new());
        assert!(interned.is_empty());
        assert_eq!(interned.len(), 0);
        assert_eq!(interned.get(b"anything"), None);
        assert_eq!(interned.name(0), None);
    }

    #[test]
    fn dense_vocabulary_survives_probing_pressure() {
        // Enough keys that the open-addressing table sees real collisions.
        let names: Vec<String> = (0..2000).map(|i| format!("tok{i:04}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let v = vocab_of(&refs);
        let interned = InternedVocabulary::from_vocabulary(&v);
        for name in &refs {
            assert_eq!(interned.get(name.as_bytes()), v.get(name), "{name}");
        }
        for miss in ["tok2000", "tok", "x"] {
            assert_eq!(interned.get(miss.as_bytes()), None);
        }
    }

    #[test]
    fn from_lanes_round_trips_parts_and_preserves_lookups() {
        let names: Vec<String> = (0..300).map(|i| format!("feat{i:03}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let v = vocab_of(&refs);
        let interned = InternedVocabulary::from_vocabulary(&v);
        let parts = interned.parts();
        let rebuilt = InternedVocabulary::from_lanes(
            Lane::from_vec(parts.arena.to_vec()),
            Lane::from_vec(parts.bounds.to_vec()),
            Lane::from_vec(parts.hashes.to_vec()),
            Lane::from_vec(parts.table.to_vec()),
        )
        .unwrap();
        for name in &refs {
            assert_eq!(rebuilt.get(name.as_bytes()), interned.get(name.as_bytes()));
        }
        assert_eq!(rebuilt.name(5), interned.name(5));
        // Empty round trip.
        let empty = InternedVocabulary::from_lanes(
            Lane::default(),
            Lane::default(),
            Lane::default(),
            Lane::default(),
        )
        .unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn from_lanes_rejects_structural_corruption() {
        let v = vocab_of(&["alpha", "beta", "gamma"]);
        let interned = InternedVocabulary::from_vocabulary(&v);
        let p = interned.parts();
        let lanes = |arena: Vec<u8>, bounds: Vec<u32>, hashes: Vec<u64>, table: Vec<u32>| {
            InternedVocabulary::from_lanes(
                Lane::from_vec(arena),
                Lane::from_vec(bounds),
                Lane::from_vec(hashes),
                Lane::from_vec(table),
            )
        };
        // Truncated bounds.
        assert!(lanes(
            p.arena.to_vec(),
            p.bounds[..p.bounds.len() - 1].to_vec(),
            p.hashes.to_vec(),
            p.table.to_vec()
        )
        .is_err());
        // Non-monotone bounds.
        let mut bad_bounds = p.bounds.to_vec();
        bad_bounds[1] = u32::MAX;
        assert!(lanes(
            p.arena.to_vec(),
            bad_bounds,
            p.hashes.to_vec(),
            p.table.to_vec()
        )
        .is_err());
        // Last bound does not close the arena.
        let mut open_bounds = p.bounds.to_vec();
        *open_bounds.last_mut().unwrap() -= 1;
        assert!(lanes(
            p.arena.to_vec(),
            open_bounds,
            p.hashes.to_vec(),
            p.table.to_vec()
        )
        .is_err());
        // Out-of-range table entry.
        let mut bad_table = p.table.to_vec();
        bad_table[0] = 99;
        assert!(lanes(
            p.arena.to_vec(),
            p.bounds.to_vec(),
            p.hashes.to_vec(),
            bad_table
        )
        .is_err());
        // Wrong table capacity.
        assert!(lanes(
            p.arena.to_vec(),
            p.bounds.to_vec(),
            p.hashes.to_vec(),
            vec![0u32; 4]
        )
        .is_err());
        // A table with no empty slot would loop forever on a miss.
        assert!(lanes(
            p.arena.to_vec(),
            p.bounds.to_vec(),
            p.hashes.to_vec(),
            vec![1u32; p.table.len()]
        )
        .is_err());
    }

    #[test]
    fn non_ascii_features_intern_byte_exactly() {
        let v = vocab_of(&["münchen", "straße", "東京"]);
        let interned = InternedVocabulary::from_vocabulary(&v);
        assert_eq!(interned.get("münchen".as_bytes()), v.get("münchen"));
        assert_eq!(interned.name(v.get("東京").unwrap()), Some("東京"));
    }
}
