//! Character Markov-model classifier.
//!
//! Section 2 of the paper: "Character-based Markov models for language
//! classification \[3\] can be seen as a variant of the n-gram approach.
//! This approach determines the probability that certain sequences of
//! characters are generated. It is assumed that the next character only
//! depends on a certain number of previous characters." The paper's
//! authors compared Markov models against rank-order statistics and
//! relative entropy in preliminary experiments and kept relative entropy;
//! this implementation exists to reproduce that comparison (see the
//! `ablations` experiment).
//!
//! Unlike the other classifiers in this crate, the Markov model works on
//! the *token characters* directly rather than on a pre-extracted feature
//! vector: it is trained on URL tokens and scores a URL by the average
//! per-character log-likelihood ratio between the positive and negative
//! character models (an order-2 model, i.e. trigram transition
//! probabilities with Laplace smoothing).

use crate::model::UrlClassifier;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use urlid_tokenize::Tokenizer;

/// Alphabet: `a`–`z` plus the boundary marker.
const ALPHABET_SIZE: usize = 27;

/// Configuration for the character Markov model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarkovConfig {
    /// Laplace smoothing strength for transition counts.
    pub alpha: f64,
}

impl Default for MarkovConfig {
    fn default() -> Self {
        Self { alpha: 0.5 }
    }
}

/// Character model of one class: counts of (context, next-char) where the
/// context is the previous two characters of a padded token.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct CharModel {
    // Keys are `context_key(a, b)`: serde_json requires integer (not
    // tuple) map keys.
    transitions: HashMap<u16, [f64; ALPHABET_SIZE]>,
    context_totals: HashMap<u16, f64>,
}

/// Pack a two-character context into a map key.
fn context_key(a: u8, b: u8) -> u16 {
    a as u16 * ALPHABET_SIZE as u16 + b as u16
}

fn encode(c: char) -> u8 {
    if c.is_ascii_lowercase() {
        (c as u8) - b'a' + 1
    } else {
        0 // boundary / non-letter
    }
}

impl CharModel {
    fn observe_token(&mut self, token: &str) {
        let chars: Vec<u8> = std::iter::once(0u8)
            .chain(std::iter::once(0u8))
            .chain(token.chars().map(encode))
            .chain(std::iter::once(0u8))
            .collect();
        for w in chars.windows(3) {
            let context = context_key(w[0], w[1]);
            let next = w[2] as usize;
            self.transitions
                .entry(context)
                .or_insert([0.0; ALPHABET_SIZE])[next] += 1.0;
            *self.context_totals.entry(context).or_insert(0.0) += 1.0;
        }
    }

    /// Smoothed log P(next | context).
    fn log_prob(&self, context: u16, next: u8, alpha: f64) -> f64 {
        let count = self
            .transitions
            .get(&context)
            .map(|t| t[next as usize])
            .unwrap_or(0.0);
        let total = self.context_totals.get(&context).copied().unwrap_or(0.0);
        ((count + alpha) / (total + alpha * ALPHABET_SIZE as f64)).ln()
    }

    /// Total log-likelihood of a token plus its length in transitions.
    fn token_log_likelihood(&self, token: &str, alpha: f64) -> (f64, usize) {
        let chars: Vec<u8> = std::iter::once(0u8)
            .chain(std::iter::once(0u8))
            .chain(token.chars().map(encode))
            .chain(std::iter::once(0u8))
            .collect();
        let mut ll = 0.0;
        let mut n = 0;
        for w in chars.windows(3) {
            ll += self.log_prob(context_key(w[0], w[1]), w[2], alpha);
            n += 1;
        }
        (ll, n)
    }
}

/// A character Markov-model binary URL classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkovClassifier {
    positive: CharModel,
    negative: CharModel,
    config: MarkovConfig,
    #[serde(skip, default)]
    tokenizer: Tokenizer,
}

impl MarkovClassifier {
    /// Train from positive and negative URL lists.
    pub fn train<S: AsRef<str>>(
        positive_urls: &[S],
        negative_urls: &[S],
        config: MarkovConfig,
    ) -> Self {
        assert!(
            !positive_urls.is_empty() && !negative_urls.is_empty(),
            "the Markov classifier needs URLs of both classes"
        );
        let tokenizer = Tokenizer::default();
        let mut positive = CharModel::default();
        let mut negative = CharModel::default();
        for url in positive_urls {
            for token in tokenizer.tokenize(url.as_ref()) {
                positive.observe_token(&token);
            }
        }
        for url in negative_urls {
            for token in tokenizer.tokenize(url.as_ref()) {
                negative.observe_token(&token);
            }
        }
        Self {
            positive,
            negative,
            config,
            tokenizer,
        }
    }

    /// Average per-transition log-likelihood ratio of a URL.
    pub fn log_likelihood_ratio(&self, url: &str) -> f64 {
        let mut ratio = 0.0;
        let mut transitions = 0usize;
        for token in self.tokenizer.tokenize(url) {
            let (lp, n) = self
                .positive
                .token_log_likelihood(&token, self.config.alpha);
            let (ln, _) = self
                .negative
                .token_log_likelihood(&token, self.config.alpha);
            ratio += lp - ln;
            transitions += n;
        }
        if transitions == 0 {
            return -1.0;
        }
        ratio / transitions as f64
    }
}

impl UrlClassifier for MarkovClassifier {
    fn classify_url(&self, url: &str) -> bool {
        self.log_likelihood_ratio(url) > 0.0
    }

    fn score_url(&self, url: &str) -> f64 {
        self.log_likelihood_ratio(url)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn german_urls() -> Vec<String> {
        vec![
            "http://www.wetterbericht.de/nachrichten".into(),
            "http://www.versicherung-vergleich.de/angebote".into(),
            "http://www.wohnung-mieten.de/muenchen".into(),
            "http://www.buecher-verlag.de/geschichte".into(),
            "http://www.gesundheit-heute.de/krankenhaus".into(),
            "http://www.schule-lernen.de/unterricht".into(),
        ]
    }

    fn english_urls() -> Vec<String> {
        vec![
            "http://www.weather-report.co.uk/news".into(),
            "http://www.insurance-compare.com/offers".into(),
            "http://www.apartment-rentals.com/chicago".into(),
            "http://www.book-publishing.com/history".into(),
            "http://www.health-today.com/hospital".into(),
            "http://www.school-learning.com/teaching".into(),
        ]
    }

    #[test]
    fn distinguishes_german_from_english_character_patterns() {
        let m = MarkovClassifier::train(&german_urls(), &english_urls(), MarkovConfig::default());
        // Unseen German-looking tokens: "zeitschrift", "verwaltung".
        assert!(m.classify_url("http://www.zeitschrift-verwaltung.de/"));
        // Unseen English-looking tokens.
        assert!(!m.classify_url("http://www.washington-times.com/reporting"));
    }

    #[test]
    fn generalizes_to_unseen_tokens_via_character_statistics() {
        let m = MarkovClassifier::train(&german_urls(), &english_urls(), MarkovConfig::default());
        // Invented words with German morphology vs English morphology.
        let german_score = m.score_url("http://example.org/verschlungenheit");
        let english_score = m.score_url("http://example.org/throughoutness");
        assert!(
            german_score > english_score,
            "German-looking token should score higher: {german_score} vs {english_score}"
        );
    }

    #[test]
    fn urls_without_tokens_are_rejected() {
        let m = MarkovClassifier::train(&german_urls(), &english_urls(), MarkovConfig::default());
        assert!(!m.classify_url("12345"));
        assert!(!m.classify_url(""));
    }

    #[test]
    fn smoothing_keeps_scores_finite_for_exotic_input() {
        let m = MarkovClassifier::train(&german_urls(), &english_urls(), MarkovConfig::default());
        for url in [
            "http://xqzw.jp/qqqq",
            "http://zzz.ru/xxyyzz",
            "http://a-b-c.info/",
        ] {
            assert!(m.score_url(url).is_finite(), "{url}");
        }
    }

    #[test]
    #[should_panic]
    fn empty_training_panics() {
        let none: Vec<String> = Vec::new();
        let _ = MarkovClassifier::train(&none, &english_urls(), MarkovConfig::default());
    }

    #[test]
    fn serde_round_trip_preserves_decisions() {
        let m = MarkovClassifier::train(&german_urls(), &english_urls(), MarkovConfig::default());
        let json = serde_json::to_string(&m).unwrap();
        let back: MarkovClassifier = serde_json::from_str(&json).unwrap();
        for url in ["http://www.zeitschrift.de/", "http://www.reporting.com/"] {
            assert_eq!(m.classify_url(url), back.classify_url(url), "{url}");
        }
    }
}
