//! Property-based tests for feature extraction invariants.

use proptest::prelude::*;
use urlid_features::{
    custom::NUM_CUSTOM_FEATURES, shard_slices, CustomFeatureExtractor, Dataset, FeatureExtractor,
    LabeledUrl, ShardedFit, SparseVector, TrigramFeatureExtractor, VocabularyBuilder,
    WordFeatureExtractor,
};
use urlid_lexicon::Language;

fn small_training() -> Vec<LabeledUrl> {
    vec![
        LabeledUrl::new(
            "http://www.wetter-bericht.de/berlin/nachrichten",
            Language::German,
        ),
        LabeledUrl::new(
            "http://www.weather-report.co.uk/london/news",
            Language::English,
        ),
        LabeledUrl::new(
            "http://www.meteo-prevision.fr/paris/infos",
            Language::French,
        ),
        LabeledUrl::new("http://www.tiempo-noticias.es/madrid", Language::Spanish),
        LabeledUrl::new("http://www.previsioni-meteo.it/roma", Language::Italian),
    ]
}

proptest! {
    /// Every extractor produces finite, non-negative feature values with
    /// indices inside the declared dimensionality, for arbitrary inputs.
    #[test]
    fn extractors_produce_valid_vectors(url in ".{0,150}") {
        let training = small_training();
        let mut words = WordFeatureExtractor::default();
        words.fit(&training);
        let mut trigrams = TrigramFeatureExtractor::default();
        trigrams.fit(&training);
        let mut custom = CustomFeatureExtractor::default();
        custom.fit(&training);

        for (extractor, dim) in [
            (&words as &dyn FeatureExtractor, words.dim()),
            (&trigrams as &dyn FeatureExtractor, trigrams.dim()),
            (&custom as &dyn FeatureExtractor, custom.dim()),
        ] {
            let v = extractor.transform(&url);
            for (i, x) in v.iter() {
                prop_assert!(x.is_finite() && x >= 0.0, "bad value {x} at {i}");
                prop_assert!((i as usize) < dim, "index {i} outside dim {dim}");
                prop_assert!(extractor.feature_name(i).is_some());
            }
        }
    }

    /// Word feature counts sum to at most the number of tokens of the URL
    /// (out-of-vocabulary tokens are dropped, never duplicated).
    #[test]
    fn word_counts_are_bounded_by_token_count(url in "[a-z0-9./-]{0,100}") {
        let mut words = WordFeatureExtractor::default();
        words.fit(&small_training());
        let v = words.transform(&url);
        let tokens = urlid_tokenize::tokenize_url(&url);
        prop_assert!(v.sum() <= tokens.len() as f64 + 1e-9);
    }

    /// Transforming is insensitive to URL case.
    #[test]
    fn transform_is_case_insensitive(url in "[a-zA-Z0-9./-]{0,80}") {
        let mut words = WordFeatureExtractor::default();
        words.fit(&small_training());
        prop_assert_eq!(words.transform(&url), words.transform(&url.to_ascii_lowercase()));
        let mut tri = TrigramFeatureExtractor::default();
        tri.fit(&small_training());
        prop_assert_eq!(tri.transform(&url), tri.transform(&url.to_uppercase()));
    }

    /// The custom extractor's full vector always has exactly 74 finite
    /// entries and the selected-15 projection is consistent with it.
    #[test]
    fn custom_full_and_selected_are_consistent(url in ".{0,120}") {
        let full = CustomFeatureExtractor::full();
        let selected = CustomFeatureExtractor::default();
        let f = full.extract_full(&url);
        prop_assert_eq!(f.len(), NUM_CUSTOM_FEATURES);
        prop_assert!(f.iter().all(|v| v.is_finite() && *v >= 0.0));
        let s = selected.extract(&url);
        for (k, &full_idx) in CustomFeatureExtractor::selected_indices().iter().enumerate() {
            prop_assert_eq!(s[k], f[full_idx]);
        }
    }

    /// SparseVector::from_pairs is order-independent and merge-consistent.
    #[test]
    fn sparse_vector_from_pairs_is_canonical(
        pairs in proptest::collection::vec((0u32..64, 0.0f64..10.0), 0..40)
    ) {
        let a = SparseVector::from_pairs(pairs.clone());
        let mut reversed = pairs.clone();
        reversed.reverse();
        let b = SparseVector::from_pairs(reversed);
        // Same support and (up to floating-point summation order) the same
        // values regardless of input order.
        prop_assert_eq!(a.nnz(), b.nnz());
        for (i, v) in a.iter() {
            prop_assert!((v - b.get(i)).abs() < 1e-9, "index {i}: {v} vs {}", b.get(i));
        }
        // Sum is preserved (up to fp error).
        let expected: f64 = pairs.iter().map(|(_, v)| v).sum();
        prop_assert!((a.sum() - expected).abs() < 1e-9);
        // L1 normalisation yields a distribution when non-empty.
        if !a.is_empty() && a.sum() > 0.0 {
            prop_assert!((a.l1_normalized().sum() - 1.0).abs() < 1e-9);
        }
    }

    /// Sharded vocabulary building is invariant under shard order *and*
    /// shard count: min-count pruning is applied only when the merged
    /// builder freezes, so no partition of the token stream — visited in
    /// any order — can change the frozen vocabulary.
    #[test]
    fn shard_order_never_changes_the_frozen_vocabulary(
        tokens in proptest::collection::vec("[a-f]{1,3}", 1..60),
        shards in 1usize..8,
        rotation in 0usize..8,
        min_count in 0u64..4,
    ) {
        let mut whole = VocabularyBuilder::new(min_count);
        whole.observe_all(&tokens);
        let expected = whole.build();

        // Partition the stream, count each shard independently, then
        // merge in a rotated (i.e. arbitrary) order.
        let mut partials: Vec<VocabularyBuilder> = shard_slices(&tokens, shards)
            .map(|shard| {
                let mut b = VocabularyBuilder::new(min_count);
                b.observe_all(shard);
                b
            })
            .collect();
        let k = rotation % partials.len().max(1);
        partials.rotate_left(k);
        let mut merged = VocabularyBuilder::new(min_count);
        for partial in partials {
            merged.merge(partial);
        }
        prop_assert_eq!(merged.build(), expected);
    }

    /// The same invariance holds for whole extractors fitted through the
    /// map-reduce path: any contiguous sharding of the training set
    /// freezes the same vocabulary as a single sequential fit.
    #[test]
    fn sharded_fit_equals_serial_fit(shards in 1usize..7, seed in 0usize..5) {
        let mut training = small_training();
        training.rotate_left(seed);
        let mut serial = WordFeatureExtractor::default();
        serial.fit(&training);

        let mut sharded = WordFeatureExtractor::default();
        let merged = shard_slices(&training, shards)
            .map(|s| sharded.observe_shard(s))
            .reduce(|a, b| sharded.merge_partials(a, b));
        sharded.finish_fit(merged);

        prop_assert_eq!(serial.vocabulary(), sharded.vocabulary());
        prop_assert_eq!(serial.dim(), sharded.dim());
    }

    /// Dataset splitting never loses or duplicates URLs, for any valid
    /// fraction.
    #[test]
    fn dataset_split_partitions(n in 1usize..60, denom in 2usize..10) {
        let mut d = Dataset::new("prop");
        for i in 0..n {
            let lang = Language::from_index(i % 5);
            d.urls.push(LabeledUrl::new(format!("http://site{i}.{}/p", lang.iso_code()), lang));
        }
        let split = d.split(1.0 / denom as f64);
        prop_assert_eq!(split.train.len() + split.test.len(), d.len());
        let mut all: Vec<&LabeledUrl> = split.train.urls.iter().chain(&split.test.urls).collect();
        all.sort_by(|a, b| a.url.cmp(&b.url));
        let mut orig: Vec<&LabeledUrl> = d.urls.iter().collect();
        orig.sort_by(|a, b| a.url.cmp(&b.url));
        prop_assert_eq!(all, orig);
    }
}
