//! The ccTLD and ccTLD+ baseline "algorithms".
//!
//! Section 3.2: "Our baseline algorithm takes the ccTLD of a URL, checks
//! the official language for the ccTLD's country and assigns the
//! corresponding language to the URL." The ccTLD+ variant additionally
//! counts `.com` and `.org` as English TLDs. Neither needs any labelled
//! training data.

use crate::model::{Algorithm, UrlClassifier};
use serde::{Deserialize, Serialize};
use urlid_lexicon::{CcTldTable, Language};
use urlid_tokenize::ParsedUrl;

/// A binary ccTLD-based classifier for one language.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CcTldClassifier {
    language: Language,
    table: CcTldTable,
}

impl CcTldClassifier {
    /// The plain ccTLD baseline for `language`.
    pub fn cctld(language: Language) -> Self {
        Self {
            language,
            table: CcTldTable::cctld(),
        }
    }

    /// The ccTLD+ baseline (`.com`/`.org` count as English) for `language`.
    pub fn cctld_plus(language: Language) -> Self {
        Self {
            language,
            table: CcTldTable::cctld_plus(),
        }
    }

    /// Build the baseline specified by `algorithm` for `language`.
    ///
    /// # Panics
    /// Panics if `algorithm` is not `CcTld` or `CcTldPlus`.
    pub fn for_algorithm(algorithm: Algorithm, language: Language) -> Self {
        match algorithm {
            Algorithm::CcTld => Self::cctld(language),
            Algorithm::CcTldPlus => Self::cctld_plus(language),
            other => panic!("{other} is not a ccTLD baseline"),
        }
    }

    /// The language this classifier detects.
    pub fn language(&self) -> Language {
        self.language
    }
}

impl UrlClassifier for CcTldClassifier {
    fn classify_url(&self, url: &str) -> bool {
        let parsed = ParsedUrl::parse(url);
        match parsed.tld() {
            Some(tld) => self.table.language_of(tld) == Some(self.language),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cctld_matches_country_domains() {
        let de = CcTldClassifier::cctld(Language::German);
        assert!(de.classify_url("http://www.beispiel.de/seite"));
        assert!(de.classify_url("http://www.firma.at/"));
        assert!(!de.classify_url("http://www.example.com/"));
        assert!(!de.classify_url("http://www.exemple.fr/"));
        assert_eq!(de.language(), Language::German);
    }

    #[test]
    fn paper_example_wasserbett_test_com_is_missed_by_cctld() {
        // The paper's motivating example: a German page in the .com domain
        // is not detected by the TLD heuristic.
        let de = CcTldClassifier::cctld(Language::German);
        assert!(!de.classify_url("http://www.wasserbett-test.com"));
        // ...and ccTLD+ even labels it English instead.
        let en_plus = CcTldClassifier::cctld_plus(Language::English);
        assert!(en_plus.classify_url("http://www.wasserbett-test.com"));
    }

    #[test]
    fn cctld_plus_only_changes_english() {
        let en = CcTldClassifier::cctld(Language::English);
        let en_plus = CcTldClassifier::cctld_plus(Language::English);
        assert!(!en.classify_url("http://www.example.com/"));
        assert!(en_plus.classify_url("http://www.example.com/"));
        assert!(en_plus.classify_url("http://www.example.org/"));
        assert!(!en_plus.classify_url("http://www.example.net/"));
        // Non-English classifiers are identical in both variants.
        let it = CcTldClassifier::cctld(Language::Italian);
        let it_plus = CcTldClassifier::cctld_plus(Language::Italian);
        for url in ["http://www.esempio.it/", "http://www.example.com/"] {
            assert_eq!(it.classify_url(url), it_plus.classify_url(url));
        }
    }

    #[test]
    fn english_cctlds_cover_paper_list() {
        let en = CcTldClassifier::cctld(Language::English);
        for url in [
            "http://www.example.co.uk/",
            "http://www.example.gov/",
            "http://www.example.au/",
            "http://www.example.ie/",
            "http://www.example.nz/",
            "http://www.example.us/",
        ] {
            assert!(en.classify_url(url), "{url}");
        }
    }

    #[test]
    fn spanish_latin_american_cctlds() {
        let es = CcTldClassifier::cctld(Language::Spanish);
        for url in [
            "http://www.ejemplo.es/",
            "http://www.ejemplo.mx/",
            "http://www.ejemplo.ar/",
            "http://www.ejemplo.cl/",
        ] {
            assert!(es.classify_url(url), "{url}");
        }
        assert!(!es.classify_url("http://www.example.pt/"));
    }

    #[test]
    fn urls_without_tld_are_rejected() {
        let fr = CcTldClassifier::cctld(Language::French);
        assert!(!fr.classify_url("not a url"));
        assert!(!fr.classify_url(""));
        assert!(!fr.classify_url("http://192.168.0.1/page"));
    }

    #[test]
    fn subdomain_country_codes_do_not_count() {
        // The baseline looks only at the real TLD; fr.search.yahoo.com is
        // a .com URL.
        let fr = CcTldClassifier::cctld(Language::French);
        assert!(!fr.classify_url("http://fr.search.yahoo.com/"));
    }

    #[test]
    fn for_algorithm_dispatch() {
        let c = CcTldClassifier::for_algorithm(Algorithm::CcTldPlus, Language::English);
        assert!(c.classify_url("http://a.org/"));
    }

    #[test]
    #[should_panic]
    fn for_algorithm_rejects_learning_algorithms() {
        let _ = CcTldClassifier::for_algorithm(Algorithm::NaiveBayes, Language::English);
    }
}
