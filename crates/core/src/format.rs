//! The `.urlm` container: a page-aligned, checksummed binary model
//! format whose sections *are* the runtime structures.
//!
//! A JSON model load parses text into training-time structs and then
//! recompiles the dense scoring plane. A `.urlm` load is `mmap(2)` +
//! header validation + typed casts: the interned vocabulary arena, the
//! open-addressing probe table and the dense weight matrices are stored
//! exactly as the compiled plane keeps them in memory, each section
//! page-aligned so a [`Lane`] view over the mapping satisfies every
//! alignment requirement for free.
//!
//! This module is the *container* layer — magic, header, section table,
//! checksums, atomic writes, validated section access. What the
//! sections mean (vocabulary, plane, models) is the business of
//! [`crate::persistence`].
//!
//! ## Layout
//!
//! ```text
//! offset 0      magic            8 bytes  89 55 52 4C 4D 0D 0A 1A
//!        8      endian tag       u32      0x01020304, written native
//!        12     format version   u32      1
//!        16     page size        u32      4096
//!        20     section count    u32
//!        24     section entries  32 bytes each:
//!                 id u32 · pad u32 · offset u64 · len u64 · xxh64 u64
//! page 1..     sections, each starting on a page boundary
//! ```
//!
//! All header integers are written in native byte order; the endian
//! tag reads as `0x04030201` on a foreign-endian machine, so such a
//! file is rejected before any multi-byte field is trusted. Dense
//! sections are likewise native-order — they must be, to be castable —
//! which makes a `.urlm` file a *host* format, not an interchange
//! format. JSON remains the interchange representation.
//!
//! ## Validation order
//!
//! [`UrlmFile::open`] checks magic → endianness → version → page size /
//! section count sanity → per-entry alignment and bounds → per-section
//! checksums, and fails closed with a typed
//! [`PersistenceError`] at the
//! first violation. The section table itself carries no checksum: a
//! tampered offset is caught by the alignment/bounds checks (or by the
//! section checksum the mangled window no longer matches), and keeping
//! the table un-hashed means the checksum of every section is
//! independent of where the packer placed it.
//!
//! Writes go to a sibling temporary file first and are published with
//! an atomic rename, so a torn write leaves either the old model or a
//! `.tmp` file that never validates — never a half-written `.urlm`.

use crate::persistence::PersistenceError;
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;
use urlid_mapped::{Lane, Mapping, Pod};

/// The 8-byte file signature. PNG-style: a high bit to trip ASCII
/// transports, the format name, and a CR LF SUB tail that catches
/// newline translation and `type`-style truncation.
pub const URLM_MAGIC: [u8; 8] = [0x89, b'U', b'R', b'L', b'M', 0x0D, 0x0A, 0x1A];

/// Current format version.
pub const URLM_VERSION: u32 = 1;

/// Section alignment: every section starts on a 4096-byte boundary.
pub const URLM_PAGE: u32 = 4096;

/// The endianness sentinel: reads back as `0x04030201` when the file
/// was written on a machine of the other endianness.
const ENDIAN_TAG: u32 = 0x0102_0304;

/// Fixed header bytes before the section entries.
const HEADER_FIXED: usize = 8 + 4 + 4 + 4 + 4;

/// Bytes per section-table entry.
const ENTRY_BYTES: usize = 32;

/// An implausible section count — the format has nine section kinds;
/// the cap only bounds the table scan on hostile headers.
const MAX_SECTIONS: u32 = 64;

/// Identifiers of the known sections, in canonical file order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum SectionId {
    /// JSON metadata: training config, extractor/plane meta, counts.
    Meta = 1,
    /// Interned vocabulary: concatenated feature-name bytes.
    Arena = 2,
    /// Interned vocabulary: per-feature arena bounds (`u32`).
    Bounds = 3,
    /// Interned vocabulary: precomputed FNV-1a hashes (`u64`).
    Hashes = 4,
    /// Interned vocabulary: open-addressing probe table (`u32`).
    Table = 5,
    /// Dense language-major weight matrix, f64 lane.
    Matrix = 6,
    /// Dense language-major weight matrix, quantised f32 lane.
    MatrixF32 = 7,
    /// Markov transition matrix (only for Markov-backed planes).
    Markov = 8,
    /// The five per-language training-time models (tagged codec bytes).
    Models = 9,
}

impl SectionId {
    /// Human-readable section name for diagnostics and `urlid inspect`.
    pub fn name(id: u32) -> &'static str {
        match id {
            1 => "META",
            2 => "ARENA",
            3 => "BOUNDS",
            4 => "HASHES",
            5 => "TABLE",
            6 => "MATRIX",
            7 => "MATRIX32",
            8 => "MARKOV",
            9 => "MODELS",
            _ => "UNKNOWN",
        }
    }
}

const PRIME_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME_5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn xxh_round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME_2))
        .rotate_left(31)
        .wrapping_mul(PRIME_1)
}

#[inline]
fn xxh_merge(acc: u64, val: u64) -> u64 {
    (acc ^ xxh_round(0, val))
        .wrapping_mul(PRIME_1)
        .wrapping_add(PRIME_4)
}

#[inline]
fn read_u64_le(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("8-byte window"))
}

/// XXH64 (Collet's xxHash, 64-bit variant), implemented from the
/// published spec — the container's per-section checksum. Matches the
/// reference test vectors (see this module's tests); no external crate
/// involved.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let mut h: u64;
    let mut rem: &[u8] = data;
    if data.len() >= 32 {
        let mut v1 = seed.wrapping_add(PRIME_1).wrapping_add(PRIME_2);
        let mut v2 = seed.wrapping_add(PRIME_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME_1);
        let mut chunks = rem.chunks_exact(32);
        for chunk in &mut chunks {
            v1 = xxh_round(v1, read_u64_le(&chunk[0..8]));
            v2 = xxh_round(v2, read_u64_le(&chunk[8..16]));
            v3 = xxh_round(v3, read_u64_le(&chunk[16..24]));
            v4 = xxh_round(v4, read_u64_le(&chunk[24..32]));
        }
        rem = chunks.remainder();
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = xxh_merge(h, v1);
        h = xxh_merge(h, v2);
        h = xxh_merge(h, v3);
        h = xxh_merge(h, v4);
    } else {
        h = seed.wrapping_add(PRIME_5);
    }
    h = h.wrapping_add(data.len() as u64);
    while rem.len() >= 8 {
        h ^= xxh_round(0, read_u64_le(rem));
        h = h
            .rotate_left(27)
            .wrapping_mul(PRIME_1)
            .wrapping_add(PRIME_4);
        rem = &rem[8..];
    }
    if rem.len() >= 4 {
        let lane = u32::from_le_bytes(rem[..4].try_into().expect("4-byte window")) as u64;
        h ^= lane.wrapping_mul(PRIME_1);
        h = h
            .rotate_left(23)
            .wrapping_mul(PRIME_2)
            .wrapping_add(PRIME_3);
        rem = &rem[4..];
    }
    for &byte in rem {
        h ^= (byte as u64).wrapping_mul(PRIME_5);
        h = h.rotate_left(11).wrapping_mul(PRIME_1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME_3);
    h ^= h >> 32;
    h
}

/// One row of the section table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Section {
    /// Section identifier (see [`SectionId`]).
    pub id: u32,
    /// Byte offset of the section start (page-aligned).
    pub offset: u64,
    /// Unpadded section length in bytes.
    pub len: u64,
    /// XXH64 of the section bytes (seed 0).
    pub checksum: u64,
}

/// Builder that lays sections out on page boundaries and publishes the
/// file with a write-to-temporary + atomic-rename dance.
#[derive(Debug, Default)]
pub struct UrlmWriter {
    sections: Vec<(u32, Vec<u8>)>,
}

impl UrlmWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a section. Sections land in the file in push order.
    pub fn push(&mut self, id: SectionId, bytes: Vec<u8>) {
        self.sections.push((id as u32, bytes));
    }

    /// Serialise header + sections into one page-aligned byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let page = URLM_PAGE as usize;
        let table_len = HEADER_FIXED + self.sections.len() * ENTRY_BYTES;
        let mut out = Vec::with_capacity(table_len.next_multiple_of(page));
        out.extend_from_slice(&URLM_MAGIC);
        out.extend_from_slice(&ENDIAN_TAG.to_ne_bytes());
        out.extend_from_slice(&URLM_VERSION.to_ne_bytes());
        out.extend_from_slice(&URLM_PAGE.to_ne_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_ne_bytes());
        // Lay the sections out after the header page(s), then come back
        // and fill in the table.
        let mut offset = table_len.next_multiple_of(page);
        let mut entries = Vec::with_capacity(self.sections.len());
        for (id, bytes) in &self.sections {
            entries.push(Section {
                id: *id,
                offset: offset as u64,
                len: bytes.len() as u64,
                checksum: xxh64(bytes, 0),
            });
            offset = (offset + bytes.len()).next_multiple_of(page);
        }
        for e in &entries {
            out.extend_from_slice(&e.id.to_ne_bytes());
            out.extend_from_slice(&0u32.to_ne_bytes());
            out.extend_from_slice(&e.offset.to_ne_bytes());
            out.extend_from_slice(&e.len.to_ne_bytes());
            out.extend_from_slice(&e.checksum.to_ne_bytes());
        }
        for (e, (_, bytes)) in entries.iter().zip(&self.sections) {
            out.resize(e.offset as usize, 0);
            out.extend_from_slice(bytes);
        }
        out
    }

    /// Write the container to `path` atomically: the bytes go to a
    /// sibling `.tmp` file, are flushed, and only then renamed over the
    /// destination — a crash mid-write can never leave a torn `.urlm`
    /// behind. Returns the file size in bytes.
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<u64> {
        let path = path.as_ref();
        let bytes = self.to_bytes();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        match std::fs::rename(&tmp, path) {
            Ok(()) => Ok(bytes.len() as u64),
            Err(e) => {
                std::fs::remove_file(&tmp).ok();
                Err(e)
            }
        }
    }
}

/// Sniff whether `bytes` begin with the `.urlm` magic.
pub fn looks_binary(bytes: &[u8]) -> bool {
    bytes.len() >= URLM_MAGIC.len() && bytes[..URLM_MAGIC.len()] == URLM_MAGIC
}

fn header_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_ne_bytes(bytes[at..at + 4].try_into().expect("4-byte window"))
}

fn header_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_ne_bytes(bytes[at..at + 8].try_into().expect("8-byte window"))
}

/// A validated, mapped `.urlm` file: the header has been checked, every
/// section bounds/alignment-verified and checksummed. Section accessors
/// hand out zero-copy [`Lane`] views that keep the mapping alive.
#[derive(Debug)]
pub struct UrlmFile {
    map: Arc<Mapping>,
    sections: Vec<Section>,
    version: u32,
    page: u32,
}

impl UrlmFile {
    /// Map and validate a `.urlm` file.
    pub fn open(path: impl AsRef<Path>) -> Result<UrlmFile, PersistenceError> {
        let map = Mapping::open(path.as_ref())?;
        Self::from_mapping(Arc::new(map))
    }

    /// Validate an already-acquired mapping (the in-memory test path).
    pub fn from_mapping(map: Arc<Mapping>) -> Result<UrlmFile, PersistenceError> {
        let bytes = map.bytes();
        if bytes.len() < HEADER_FIXED {
            return Err(PersistenceError::Truncated(format!(
                "file is {} bytes, smaller than the {HEADER_FIXED}-byte header",
                bytes.len()
            )));
        }
        if !looks_binary(bytes) {
            return Err(PersistenceError::BadMagic);
        }
        if header_u32(bytes, 8) != ENDIAN_TAG {
            return Err(PersistenceError::Endianness);
        }
        let version = header_u32(bytes, 12);
        if version != URLM_VERSION {
            return Err(PersistenceError::UnsupportedVersion(version));
        }
        let page = header_u32(bytes, 16);
        if page == 0 || !page.is_power_of_two() {
            return Err(PersistenceError::Corrupt(format!(
                "page size {page} is not a power of two"
            )));
        }
        let count = header_u32(bytes, 20);
        if count > MAX_SECTIONS {
            return Err(PersistenceError::Corrupt(format!(
                "section count {count} exceeds the format maximum {MAX_SECTIONS}"
            )));
        }
        let table_len = HEADER_FIXED + count as usize * ENTRY_BYTES;
        if bytes.len() < table_len {
            return Err(PersistenceError::Truncated(format!(
                "file is {} bytes but the section table needs {table_len}",
                bytes.len()
            )));
        }
        let mut sections = Vec::with_capacity(count as usize);
        for i in 0..count as usize {
            let at = HEADER_FIXED + i * ENTRY_BYTES;
            let section = Section {
                id: header_u32(bytes, at),
                offset: header_u64(bytes, at + 8),
                len: header_u64(bytes, at + 16),
                checksum: header_u64(bytes, at + 24),
            };
            let name = SectionId::name(section.id);
            if !section.offset.is_multiple_of(page as u64) {
                return Err(PersistenceError::Misaligned(format!(
                    "section {name} starts at {} which is not {page}-byte aligned",
                    section.offset
                )));
            }
            let end = section
                .offset
                .checked_add(section.len)
                .filter(|&end| end <= bytes.len() as u64)
                .ok_or_else(|| {
                    PersistenceError::Truncated(format!(
                        "section {name} [{}, +{}) exceeds the {}-byte file",
                        section.offset,
                        section.len,
                        bytes.len()
                    ))
                })?;
            let window = &bytes[section.offset as usize..end as usize];
            let actual = xxh64(window, 0);
            if actual != section.checksum {
                return Err(PersistenceError::ChecksumMismatch(format!(
                    "section {name}: stored {:016x}, computed {actual:016x}",
                    section.checksum
                )));
            }
            sections.push(section);
        }
        Ok(UrlmFile {
            map,
            sections,
            version,
            page,
        })
    }

    /// The section table, in file order.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Look up a section by id.
    pub fn section(&self, id: SectionId) -> Option<&Section> {
        self.sections.iter().find(|s| s.id == id as u32)
    }

    /// Borrow a section's bytes.
    pub fn section_bytes(&self, id: SectionId) -> Option<&[u8]> {
        self.section(id)
            .map(|s| &self.map.bytes()[s.offset as usize..(s.offset + s.len) as usize])
    }

    /// A zero-copy typed view of a section that must be present.
    pub fn lane<T: Pod>(&self, id: SectionId) -> Result<Lane<T>, PersistenceError> {
        let section = self.section(id).ok_or_else(|| {
            PersistenceError::Corrupt(format!(
                "required section {} is missing",
                SectionId::name(id as u32)
            ))
        })?;
        Lane::view(&self.map, section.offset as usize, section.len as usize).map_err(|e| {
            PersistenceError::Misaligned(format!("section {}: {e}", SectionId::name(id as u32)))
        })
    }

    /// A zero-copy typed view of a section that may be absent.
    pub fn lane_opt<T: Pod>(&self, id: SectionId) -> Result<Option<Lane<T>>, PersistenceError> {
        if self.section(id).is_none() {
            return Ok(None);
        }
        self.lane(id).map(Some)
    }

    /// Format version of the file.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Page size the sections are aligned to.
    pub fn page(&self) -> u32 {
        self.page
    }

    /// Total file length in bytes.
    pub fn file_len(&self) -> usize {
        self.map.len()
    }

    /// `"mmap"` or `"heap"` — how the bytes are held.
    pub fn backend(&self) -> &'static str {
        self.map.backend()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xxh64_matches_the_reference_vectors() {
        // Published xxHash test vectors (seed 0 and a non-zero seed).
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"a", 0), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
        assert_eq!(
            xxh64(b"Nobody inspects the spammish repetition", 0),
            0xFBCE_A83C_8A37_8BF1
        );
        assert_eq!(xxh64(b"", 1), 0xD5AF_BA13_36A3_BE4B);
    }

    fn sample_writer() -> UrlmWriter {
        let mut w = UrlmWriter::new();
        w.push(SectionId::Meta, b"{\"hello\":1}".to_vec());
        w.push(SectionId::Arena, (0u8..=255).cycle().take(5000).collect());
        w.push(SectionId::Models, vec![9, 9, 9]);
        w
    }

    #[test]
    fn container_round_trips_and_aligns_sections() {
        let bytes = sample_writer().to_bytes();
        let file = UrlmFile::from_mapping(Arc::new(Mapping::from_bytes(&bytes))).unwrap();
        assert_eq!(file.version(), URLM_VERSION);
        assert_eq!(file.page(), URLM_PAGE);
        assert_eq!(file.sections().len(), 3);
        for s in file.sections() {
            assert_eq!(s.offset % URLM_PAGE as u64, 0, "{}", SectionId::name(s.id));
        }
        assert_eq!(
            file.section_bytes(SectionId::Meta).unwrap(),
            b"{\"hello\":1}"
        );
        assert_eq!(file.section_bytes(SectionId::Models).unwrap(), &[9, 9, 9]);
        assert_eq!(file.section_bytes(SectionId::Arena).unwrap().len(), 5000);
        assert!(file.section(SectionId::Markov).is_none());
        assert!(file.lane_opt::<f64>(SectionId::Markov).unwrap().is_none());
        let arena: Lane<u8> = file.lane(SectionId::Arena).unwrap();
        assert!(arena.is_mapped());
        assert_eq!(arena.len(), 5000);
    }

    #[test]
    fn every_corruption_is_a_typed_error() {
        let good = sample_writer().to_bytes();

        let open = |bytes: &[u8]| UrlmFile::from_mapping(Arc::new(Mapping::from_bytes(bytes)));

        // Truncated to a partial header.
        assert!(matches!(
            open(&good[..10]),
            Err(PersistenceError::Truncated(_))
        ));
        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(open(&bad), Err(PersistenceError::BadMagic)));
        // Foreign endianness.
        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&ENDIAN_TAG.swap_bytes().to_ne_bytes());
        assert!(matches!(open(&bad), Err(PersistenceError::Endianness)));
        // Future version.
        let mut bad = good.clone();
        bad[12..16].copy_from_slice(&99u32.to_ne_bytes());
        assert!(matches!(
            open(&bad),
            Err(PersistenceError::UnsupportedVersion(99))
        ));
        // A flipped payload byte fails the section checksum.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert!(matches!(
            open(&bad),
            Err(PersistenceError::ChecksumMismatch(_))
        ));
        // A misaligned section offset in the table.
        let mut bad = good.clone();
        let entry = HEADER_FIXED + 8;
        let off = header_u64(&bad, entry) + 1;
        bad[entry..entry + 8].copy_from_slice(&off.to_ne_bytes());
        assert!(matches!(open(&bad), Err(PersistenceError::Misaligned(_))));
        // An out-of-file section offset (page-aligned so it passes the
        // alignment check and dies on bounds).
        let mut bad = good.clone();
        let off = (bad.len() as u64).next_multiple_of(URLM_PAGE as u64) + URLM_PAGE as u64;
        bad[entry..entry + 8].copy_from_slice(&off.to_ne_bytes());
        assert!(matches!(open(&bad), Err(PersistenceError::Truncated(_))));
        // Truncated mid-payload: the last section's bounds now overrun.
        assert!(matches!(
            open(&good[..good.len() - 2]),
            Err(PersistenceError::Truncated(_))
        ));
    }

    #[test]
    fn atomic_write_publishes_no_tmp_file() {
        let dir = std::env::temp_dir().join("urlid-format-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.urlm");
        let written = sample_writer().write_to(&path).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!std::path::Path::new(&tmp).exists());
        let file = UrlmFile::open(&path).unwrap();
        assert_eq!(file.sections().len(), 3);
        #[cfg(target_os = "linux")]
        if std::env::var_os("URLID_NO_MMAP").is_none() {
            assert_eq!(file.backend(), "mmap");
        }
        std::fs::remove_file(&path).ok();
    }
}
