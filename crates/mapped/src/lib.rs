//! # urlid-mapped
//!
//! Read-only memory mappings and typed zero-copy views for the `.urlm`
//! binary model format.
//!
//! The rest of the workspace forbids `unsafe`; this crate is the one
//! deliberate exception, and it keeps the unsafe surface as small as a
//! mapping can be: a [`Mapping`] (raw bytes acquired either from
//! `mmap(2)` — hand-rolled, the build container has no `libc` crate —
//! or from a read into an 8-byte-aligned heap buffer) and a [`Lane`]
//! (a typed `&[T]` view into a mapping, validated for alignment and
//! bounds at construction so every later access is a plain slice).
//!
//! Consumers — the interned vocabulary in `urlid-features`, the
//! compiled scoring plane in `urlid-classifiers` — store `Lane<T>`
//! where they used to store `Vec<T>`: an owned lane wraps a vector
//! (training-time behaviour, unchanged), a mapped lane borrows the
//! mapping through an [`Arc`] so the bytes stay valid for as long as
//! any view is alive.
//!
//! Byte order: a mapped lane reinterprets file bytes in native order.
//! The `.urlm` reader in `urlid` validates the file's endianness tag
//! before any lane is built, so a foreign-endian file is rejected
//! instead of mis-cast.

#![allow(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs::File;
use std::io::{self, Read};
use std::marker::PhantomData;
use std::ops::Deref;
use std::path::Path;
use std::sync::Arc;

/// Marker for element types a [`Lane`] may reinterpret raw bytes as.
///
/// # Safety
///
/// Implementors must be plain-old-data: `Copy`, no padding, no
/// niches/invalid bit patterns, and valid for any byte content. The
/// numeric primitives below satisfy all of that.
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}

/// Why a typed view could not be built over a mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewError {
    /// The requested range does not lie inside the mapping.
    OutOfBounds {
        /// Requested byte offset.
        offset: usize,
        /// Requested byte length.
        len: usize,
        /// Total mapping length in bytes.
        mapping_len: usize,
    },
    /// The start address of the range is not aligned for the element
    /// type.
    Misaligned {
        /// Requested byte offset.
        offset: usize,
        /// Required alignment in bytes.
        align: usize,
    },
    /// The byte length is not a whole number of elements.
    BadLength {
        /// Requested byte length.
        len: usize,
        /// Element size in bytes.
        elem: usize,
    },
}

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewError::OutOfBounds {
                offset,
                len,
                mapping_len,
            } => write!(
                f,
                "view [{offset}, {offset}+{len}) exceeds mapping of {mapping_len} bytes"
            ),
            ViewError::Misaligned { offset, align } => {
                write!(f, "view offset {offset} is not {align}-byte aligned")
            }
            ViewError::BadLength { len, elem } => {
                write!(
                    f,
                    "view length {len} is not a multiple of {elem}-byte elements"
                )
            }
        }
    }
}

impl std::error::Error for ViewError {}

/// How the bytes of a [`Mapping`] are held.
enum Backing {
    /// `mmap(2)`-acquired pages (Linux); unmapped on drop.
    #[cfg(target_os = "linux")]
    Mmap { ptr: *const u8, len: usize },
    /// An 8-byte-aligned heap buffer the file was read into — the
    /// portable fallback (and the `URLID_NO_MMAP=1` test path). The
    /// `u64` backing guarantees the base address is aligned for every
    /// [`Pod`] type.
    Heap { buf: Vec<u64>, len: usize },
}

/// A read-only byte region backing zero or more [`Lane`] views.
pub struct Mapping {
    backing: Backing,
}

// The region is immutable for the lifetime of the mapping and the
// backing pointer is never handed out mutably.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

#[cfg(target_os = "linux")]
mod mmap_sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 0x1;
    pub const MAP_PRIVATE: c_int = 0x02;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }
}

impl Mapping {
    /// Map (or read) a whole file.
    ///
    /// On Linux this is `mmap(2)` with `PROT_READ | MAP_PRIVATE` —
    /// loading is then O(1) in the file size, pages fault in on first
    /// access, and cold regions of a huge model never cost RAM. On
    /// other targets — and on Linux when `URLID_NO_MMAP` is set, which
    /// is how CI exercises the portable path — the file is read into
    /// an 8-byte-aligned heap buffer instead.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Mapping> {
        let path = path.as_ref();
        #[cfg(target_os = "linux")]
        {
            if std::env::var_os("URLID_NO_MMAP").is_none() {
                return Mapping::open_mmap(path);
            }
        }
        Mapping::open_heap(path)
    }

    #[cfg(target_os = "linux")]
    fn open_mmap(path: &Path) -> io::Result<Mapping> {
        use std::os::fd::AsRawFd;

        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file too large to map",
            ));
        }
        let len = len as usize;
        // mmap of length 0 is EINVAL; an empty mapping needs no pages.
        if len == 0 {
            return Ok(Mapping {
                backing: Backing::Heap {
                    buf: Vec::new(),
                    len: 0,
                },
            });
        }
        let ptr = unsafe {
            mmap_sys::mmap(
                std::ptr::null_mut(),
                len,
                mmap_sys::PROT_READ,
                mmap_sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as usize == usize::MAX {
            return Err(io::Error::last_os_error());
        }
        // The fd can be closed once the mapping exists; the pages stay.
        Ok(Mapping {
            backing: Backing::Mmap {
                ptr: ptr as *const u8,
                len,
            },
        })
    }

    fn open_heap(path: &Path) -> io::Result<Mapping> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file too large to read",
            ));
        }
        let len = len as usize;
        let mut buf = vec![0u64; len.div_ceil(8)];
        // View the u64 buffer as bytes for the read; the base address of
        // a Vec<u64> is 8-aligned, which satisfies every Pod type.
        let bytes = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), len) };
        file.read_exact(bytes)?;
        Ok(Mapping {
            backing: Backing::Heap { buf, len },
        })
    }

    /// An in-memory mapping over a byte buffer (copied into aligned
    /// storage) — lets the format round-trip be tested without a file.
    pub fn from_bytes(bytes: &[u8]) -> Mapping {
        let len = bytes.len();
        let mut buf = vec![0u64; len.div_ceil(8)];
        let dst = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), len) };
        dst.copy_from_slice(bytes);
        Mapping {
            backing: Backing::Heap { buf, len },
        }
    }

    /// Total length in bytes.
    pub fn len(&self) -> usize {
        match &self.backing {
            #[cfg(target_os = "linux")]
            Backing::Mmap { len, .. } => *len,
            Backing::Heap { len, .. } => *len,
        }
    }

    /// Is the mapping empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The raw bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(target_os = "linux")]
            Backing::Mmap { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Heap { buf, len } => unsafe {
                std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), *len)
            },
        }
    }

    /// Which backend holds the bytes: `"mmap"` or `"heap"`.
    pub fn backend(&self) -> &'static str {
        match &self.backing {
            #[cfg(target_os = "linux")]
            Backing::Mmap { .. } => "mmap",
            Backing::Heap { .. } => "heap",
        }
    }

    fn base_addr(&self) -> usize {
        self.bytes().as_ptr() as usize
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Backing::Mmap { ptr, len } = self.backing {
            unsafe {
                mmap_sys::munmap(ptr as *mut std::os::raw::c_void, len);
            }
        }
    }
}

impl fmt::Debug for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mapping")
            .field("len", &self.len())
            .field("backend", &self.backend())
            .finish()
    }
}

/// Storage of a [`Lane`].
enum Repr<T: Pod> {
    /// Training-time representation: a plain vector.
    Owned(Vec<T>),
    /// A validated window into a shared mapping. `offset`/`len` were
    /// bounds- and alignment-checked at construction, so the deref is
    /// a straight pointer cast.
    Mapped {
        map: Arc<Mapping>,
        byte_offset: usize,
        len: usize,
        _elem: PhantomData<T>,
    },
}

/// A `Vec<T>`-or-mapped-view slice: the storage type behind every
/// array the `.urlm` format serves zero-copy.
///
/// Dereferences to `&[T]`; cloning a mapped lane clones an [`Arc`],
/// not the data.
pub struct Lane<T: Pod> {
    repr: Repr<T>,
}

impl<T: Pod> Lane<T> {
    /// An owned lane over a vector.
    pub fn from_vec(v: Vec<T>) -> Self {
        Lane {
            repr: Repr::Owned(v),
        }
    }

    /// A zero-copy view of `byte_len` bytes at `byte_offset` in `map`,
    /// validated for bounds, element granularity and alignment.
    pub fn view(
        map: &Arc<Mapping>,
        byte_offset: usize,
        byte_len: usize,
    ) -> Result<Self, ViewError> {
        let elem = std::mem::size_of::<T>();
        if !byte_len.is_multiple_of(elem) {
            return Err(ViewError::BadLength {
                len: byte_len,
                elem,
            });
        }
        let end = byte_offset
            .checked_add(byte_len)
            .ok_or(ViewError::OutOfBounds {
                offset: byte_offset,
                len: byte_len,
                mapping_len: map.len(),
            })?;
        if end > map.len() {
            return Err(ViewError::OutOfBounds {
                offset: byte_offset,
                len: byte_len,
                mapping_len: map.len(),
            });
        }
        let align = std::mem::align_of::<T>();
        if !(map.base_addr() + byte_offset).is_multiple_of(align) {
            return Err(ViewError::Misaligned {
                offset: byte_offset,
                align,
            });
        }
        Ok(Lane {
            repr: Repr::Mapped {
                map: Arc::clone(map),
                byte_offset,
                len: byte_len / elem,
                _elem: PhantomData,
            },
        })
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Is the lane empty?
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// The elements.
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Owned(v) => v.as_slice(),
            Repr::Mapped {
                map,
                byte_offset,
                len,
                ..
            } => unsafe {
                // Bounds and alignment were proven in `view`.
                std::slice::from_raw_parts(map.bytes().as_ptr().add(*byte_offset).cast::<T>(), *len)
            },
        }
    }

    /// Does the lane borrow a mapping (as opposed to owning a vector)?
    pub fn is_mapped(&self) -> bool {
        matches!(self.repr, Repr::Mapped { .. })
    }
}

impl<T: Pod> Deref for Lane<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> Default for Lane<T> {
    fn default() -> Self {
        Lane::from_vec(Vec::new())
    }
}

impl<T: Pod> Clone for Lane<T> {
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Owned(v) => Lane::from_vec(v.clone()),
            Repr::Mapped {
                map,
                byte_offset,
                len,
                ..
            } => Lane {
                repr: Repr::Mapped {
                    map: Arc::clone(map),
                    byte_offset: *byte_offset,
                    len: *len,
                    _elem: PhantomData,
                },
            },
        }
    }
}

impl<T: Pod + fmt::Debug> fmt::Debug for Lane<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Lane({}, len {})",
            if self.is_mapped() { "mapped" } else { "owned" },
            self.len()
        )?;
        if self.len() <= 8 {
            write!(f, " {:?}", self.as_slice())?;
        }
        Ok(())
    }
}

impl<T: Pod + PartialEq> PartialEq for Lane<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod> From<Vec<T>> for Lane<T> {
    fn from(v: Vec<T>) -> Self {
        Lane::from_vec(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("urlid-mapped-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn open_reads_the_exact_bytes_back() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = temp_file("roundtrip.bin", &payload);
        let map = Mapping::open(&path).unwrap();
        assert_eq!(map.len(), payload.len());
        assert_eq!(map.bytes(), payload.as_slice());
        #[cfg(target_os = "linux")]
        assert_eq!(map.backend(), "mmap");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn heap_fallback_reads_the_exact_bytes_back() {
        let payload: Vec<u8> = (0..9_999u32).map(|i| (i % 251) as u8).collect();
        let path = temp_file("fallback.bin", &payload);
        let map = Mapping::open_heap(&path).unwrap();
        assert_eq!(map.backend(), "heap");
        assert_eq!(map.bytes(), payload.as_slice());
        // The heap base is 8-aligned, so any Pod view at an 8-aligned
        // offset works.
        assert_eq!(map.base_addr() % 8, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_an_empty_mapping() {
        let path = temp_file("empty.bin", &[]);
        let map = Mapping::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.bytes(), &[] as &[u8]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn typed_views_reinterpret_native_endian_bytes() {
        let values = [1.5f64, -2.25, 1e300, f64::MIN_POSITIVE, 0.0];
        let mut bytes = Vec::new();
        for v in values {
            bytes.extend_from_slice(&v.to_ne_bytes());
        }
        let map = Arc::new(Mapping::from_bytes(&bytes));
        let lane: Lane<f64> = Lane::view(&map, 0, bytes.len()).unwrap();
        assert!(lane.is_mapped());
        assert_eq!(lane.as_slice(), &values);
        // A u64 view of the same bytes sees the raw bit patterns.
        let bits: Lane<u64> = Lane::view(&map, 0, bytes.len()).unwrap();
        for (b, v) in bits.iter().zip(values) {
            assert_eq!(*b, v.to_bits());
        }
    }

    #[test]
    fn view_validation_rejects_bad_ranges() {
        let map = Arc::new(Mapping::from_bytes(&[0u8; 64]));
        assert!(matches!(
            Lane::<u64>::view(&map, 0, 63),
            Err(ViewError::BadLength { .. })
        ));
        assert!(matches!(
            Lane::<u64>::view(&map, 4, 8),
            Err(ViewError::Misaligned { .. })
        ));
        assert!(matches!(
            Lane::<u64>::view(&map, 64, 8),
            Err(ViewError::OutOfBounds { .. })
        ));
        assert!(matches!(
            Lane::<u8>::view(&map, usize::MAX, 2),
            Err(ViewError::OutOfBounds { .. })
        ));
        // A valid u32 view at a 4-aligned (but not 8-aligned) offset.
        let ok: Lane<u32> = Lane::view(&map, 4, 8).unwrap();
        assert_eq!(ok.len(), 2);
    }

    #[test]
    fn owned_and_mapped_lanes_share_one_api() {
        let owned: Lane<u32> = Lane::from_vec(vec![1, 2, 3]);
        assert!(!owned.is_mapped());
        assert_eq!(&owned[..], &[1, 2, 3]);
        let cloned = owned.clone();
        assert_eq!(cloned, owned);

        let map = Arc::new(Mapping::from_bytes(&[1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0]));
        if cfg!(target_endian = "little") {
            let mapped: Lane<u32> = Lane::view(&map, 0, 12).unwrap();
            assert_eq!(mapped.as_slice(), owned.as_slice());
            let c2 = mapped.clone();
            drop(mapped);
            // The clone keeps the mapping alive through its Arc.
            assert_eq!(&c2[..], &[1, 2, 3]);
        }
        let empty: Lane<f64> = Lane::default();
        assert!(empty.is_empty());
    }
}
