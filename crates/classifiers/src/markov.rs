//! Character Markov-model classifier.
//!
//! Section 2 of the paper: "Character-based Markov models for language
//! classification \[3\] can be seen as a variant of the n-gram approach.
//! This approach determines the probability that certain sequences of
//! characters are generated. It is assumed that the next character only
//! depends on a certain number of previous characters." The paper's
//! authors compared Markov models against rank-order statistics and
//! relative entropy in preliminary experiments and kept relative entropy;
//! this implementation exists to reproduce that comparison (see the
//! `ablations` experiment).
//!
//! Unlike the other classifiers in this crate, the Markov model works on
//! the *token characters* directly rather than on a pre-extracted feature
//! vector: it is trained on URL tokens and scores a URL by the average
//! per-character log-likelihood ratio between the positive and negative
//! character models (an order-2 model, i.e. trigram transition
//! probabilities with Laplace smoothing).

use crate::compile::{CompileScorer, Lowering};
use crate::model::UrlClassifier;
use serde::{Deserialize, Serialize};
use urlid_tokenize::Tokenizer;

/// Alphabet: `a`–`z` plus the boundary marker.
const ALPHABET_SIZE: usize = 27;

/// Number of two-character contexts of the order-2 model.
const NUM_CONTEXTS: usize = ALPHABET_SIZE * ALPHABET_SIZE;

/// Number of `(context, next)` transitions — the row count of the
/// compiled plane's fused Markov matrix.
pub(crate) const MARKOV_TRANSITIONS: usize = NUM_CONTEXTS * ALPHABET_SIZE;

/// Encode one character into the model alphabet (shared with the
/// compiled plane, which must walk exactly the same windows).
pub(crate) fn markov_encode(c: char) -> u8 {
    encode(c)
}

/// Dense index of the `(a, b) → next` transition.
pub(crate) fn markov_transition_index(a: u8, b: u8, next: u8) -> usize {
    context_key(a, b) * ALPHABET_SIZE + next as usize
}

/// Configuration for the character Markov model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarkovConfig {
    /// Laplace smoothing strength for transition counts.
    pub alpha: f64,
}

impl Default for MarkovConfig {
    fn default() -> Self {
        Self { alpha: 0.5 }
    }
}

/// Character model of one class: counts of (context, next-char) where the
/// context is the previous two characters of a padded token.
///
/// The context space is tiny and fixed (27² = 729 contexts × 27 next
/// characters), so counts live in **dense context-indexed tables**
/// rather than the historical `HashMap<u16, [f64; 27]>`: a transition
/// lookup is two array reads at `context * 27 + next` instead of a hash,
/// probe and pointer chase per character of every scored token. Never-
/// observed transitions simply read 0.0 — exactly the value the map's
/// `unwrap_or` defaults produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CharModel {
    /// Transition counts, indexed by `context_key(a, b) * 27 + next`.
    transitions: Vec<f64>,
    /// Per-context totals, indexed by `context_key(a, b)`.
    context_totals: Vec<f64>,
}

impl Default for CharModel {
    fn default() -> Self {
        Self {
            transitions: vec![0.0; NUM_CONTEXTS * ALPHABET_SIZE],
            context_totals: vec![0.0; NUM_CONTEXTS],
        }
    }
}

/// Pack a two-character context into a dense table index.
fn context_key(a: u8, b: u8) -> usize {
    a as usize * ALPHABET_SIZE + b as usize
}

fn encode(c: char) -> u8 {
    if c.is_ascii_lowercase() {
        (c as u8) - b'a' + 1
    } else {
        0 // boundary / non-letter
    }
}

impl CharModel {
    fn observe_token(&mut self, token: &str) {
        let chars: Vec<u8> = std::iter::once(0u8)
            .chain(std::iter::once(0u8))
            .chain(token.chars().map(encode))
            .chain(std::iter::once(0u8))
            .collect();
        for w in chars.windows(3) {
            let context = context_key(w[0], w[1]);
            let next = w[2] as usize;
            self.transitions[context * ALPHABET_SIZE + next] += 1.0;
            self.context_totals[context] += 1.0;
        }
    }

    /// Smoothed log P(next | context).
    fn log_prob(&self, context: usize, next: u8, alpha: f64) -> f64 {
        let count = self.transitions[context * ALPHABET_SIZE + next as usize];
        let total = self.context_totals[context];
        ((count + alpha) / (total + alpha * ALPHABET_SIZE as f64)).ln()
    }

    /// Total log-likelihood of a token plus its length in transitions.
    fn token_log_likelihood(&self, token: &str, alpha: f64) -> (f64, usize) {
        let chars: Vec<u8> = std::iter::once(0u8)
            .chain(std::iter::once(0u8))
            .chain(token.chars().map(encode))
            .chain(std::iter::once(0u8))
            .collect();
        let mut ll = 0.0;
        let mut n = 0;
        for w in chars.windows(3) {
            ll += self.log_prob(context_key(w[0], w[1]), w[2], alpha);
            n += 1;
        }
        (ll, n)
    }
}

/// A character Markov-model binary URL classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkovClassifier {
    positive: CharModel,
    negative: CharModel,
    config: MarkovConfig,
    #[serde(skip, default)]
    tokenizer: Tokenizer,
}

impl MarkovClassifier {
    /// Train from positive and negative URL lists.
    pub fn train<S: AsRef<str>>(
        positive_urls: &[S],
        negative_urls: &[S],
        config: MarkovConfig,
    ) -> Self {
        assert!(
            !positive_urls.is_empty() && !negative_urls.is_empty(),
            "the Markov classifier needs URLs of both classes"
        );
        let tokenizer = Tokenizer::default();
        let mut positive = CharModel::default();
        let mut negative = CharModel::default();
        for url in positive_urls {
            for token in tokenizer.tokenize(url.as_ref()) {
                positive.observe_token(&token);
            }
        }
        for url in negative_urls {
            for token in tokenizer.tokenize(url.as_ref()) {
                negative.observe_token(&token);
            }
        }
        Self {
            positive,
            negative,
            config,
            tokenizer,
        }
    }

    /// Average per-transition log-likelihood ratio of a URL.
    pub fn log_likelihood_ratio(&self, url: &str) -> f64 {
        let mut ratio = 0.0;
        let mut transitions = 0usize;
        for token in self.tokenizer.tokenize(url) {
            let (lp, n) = self
                .positive
                .token_log_likelihood(&token, self.config.alpha);
            let (ln, _) = self
                .negative
                .token_log_likelihood(&token, self.config.alpha);
            ratio += lp - ln;
            transitions += n;
        }
        if transitions == 0 {
            return -1.0;
        }
        ratio / transitions as f64
    }
}

impl UrlClassifier for MarkovClassifier {
    fn classify_url(&self, url: &str) -> bool {
        self.log_likelihood_ratio(url) > 0.0
    }

    fn score_url(&self, url: &str) -> f64 {
        self.log_likelihood_ratio(url)
    }

    fn as_compile(&self) -> Option<&dyn CompileScorer> {
        Some(self)
    }
}

impl CompileScorer for MarkovClassifier {
    /// Precompute every smoothed `log P(next | context)` into dense
    /// per-transition tables: the interpreted path recomputes the
    /// divide-and-log per lookup, the compiled plane reads one `f64` per
    /// class per transition. The logs are pure functions of the stored
    /// counts and α, so the values are bit-identical.
    fn lower(&self, _dim: usize) -> Lowering {
        let table = |model: &CharModel| -> Vec<f64> {
            let mut out = vec![0.0f64; MARKOV_TRANSITIONS];
            for context in 0..NUM_CONTEXTS {
                for next in 0..ALPHABET_SIZE {
                    out[context * ALPHABET_SIZE + next] =
                        model.log_prob(context, next as u8, self.config.alpha);
                }
            }
            out
        };
        Lowering::Markov {
            log_pos: table(&self.positive),
            log_neg: table(&self.negative),
            tokenizer: self.tokenizer.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn german_urls() -> Vec<String> {
        vec![
            "http://www.wetterbericht.de/nachrichten".into(),
            "http://www.versicherung-vergleich.de/angebote".into(),
            "http://www.wohnung-mieten.de/muenchen".into(),
            "http://www.buecher-verlag.de/geschichte".into(),
            "http://www.gesundheit-heute.de/krankenhaus".into(),
            "http://www.schule-lernen.de/unterricht".into(),
        ]
    }

    fn english_urls() -> Vec<String> {
        vec![
            "http://www.weather-report.co.uk/news".into(),
            "http://www.insurance-compare.com/offers".into(),
            "http://www.apartment-rentals.com/chicago".into(),
            "http://www.book-publishing.com/history".into(),
            "http://www.health-today.com/hospital".into(),
            "http://www.school-learning.com/teaching".into(),
        ]
    }

    #[test]
    fn distinguishes_german_from_english_character_patterns() {
        let m = MarkovClassifier::train(&german_urls(), &english_urls(), MarkovConfig::default());
        // Unseen German-looking tokens: "zeitschrift", "verwaltung".
        assert!(m.classify_url("http://www.zeitschrift-verwaltung.de/"));
        // Unseen English-looking tokens.
        assert!(!m.classify_url("http://www.washington-times.com/reporting"));
    }

    #[test]
    fn generalizes_to_unseen_tokens_via_character_statistics() {
        let m = MarkovClassifier::train(&german_urls(), &english_urls(), MarkovConfig::default());
        // Invented words with German morphology vs English morphology.
        let german_score = m.score_url("http://example.org/verschlungenheit");
        let english_score = m.score_url("http://example.org/throughoutness");
        assert!(
            german_score > english_score,
            "German-looking token should score higher: {german_score} vs {english_score}"
        );
    }

    #[test]
    fn urls_without_tokens_are_rejected() {
        let m = MarkovClassifier::train(&german_urls(), &english_urls(), MarkovConfig::default());
        assert!(!m.classify_url("12345"));
        assert!(!m.classify_url(""));
    }

    #[test]
    fn smoothing_keeps_scores_finite_for_exotic_input() {
        let m = MarkovClassifier::train(&german_urls(), &english_urls(), MarkovConfig::default());
        for url in [
            "http://xqzw.jp/qqqq",
            "http://zzz.ru/xxyyzz",
            "http://a-b-c.info/",
        ] {
            assert!(m.score_url(url).is_finite(), "{url}");
        }
    }

    #[test]
    #[should_panic]
    fn empty_training_panics() {
        let none: Vec<String> = Vec::new();
        let _ = MarkovClassifier::train(&none, &english_urls(), MarkovConfig::default());
    }

    #[test]
    fn serde_round_trip_preserves_decisions() {
        let m = MarkovClassifier::train(&german_urls(), &english_urls(), MarkovConfig::default());
        let json = serde_json::to_string(&m).unwrap();
        let back: MarkovClassifier = serde_json::from_str(&json).unwrap();
        for url in ["http://www.zeitschrift.de/", "http://www.reporting.com/"] {
            assert_eq!(m.classify_url(url), back.classify_url(url), "{url}");
        }
    }
}
