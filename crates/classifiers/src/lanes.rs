//! Fixed-width chunked accumulation kernels for the compiled plane.
//!
//! The compiled plane's hot loop is "accumulate one weight row into one
//! accumulator row" (`acc[k] += x * row[k]`) and the sharded MaxEnt
//! reduce is "fold one partial into one total" (`acc[k] += row[k]`).
//! Both are embarrassingly lane-parallel: every `k` is its own
//! independent IEEE chain, so processing the slices in fixed-width
//! chunks — or with explicit SIMD — performs **bit-identical**
//! arithmetic to the scalar loop, in any order. The kernels here
//! exploit that:
//!
//! * the default (stable-Rust) build walks `chunks_exact(LANES)` with a
//!   fixed-count inner loop over `[f64; LANES]` arrays, the shape rustc
//!   reliably unrolls and autovectorizes;
//! * with the nightly-only `simd` cargo feature the same chunks go
//!   through `std::simd` vectors (element-wise mul + add, no FMA
//!   contraction, so still the exact scalar results);
//! * the remainder (lengths not divisible by `LANES` — vocabulary
//!   dimensions and lane strides rarely are) runs the scalar tail.
//!
//! The proptests at the bottom pin the contract: for every remainder
//! length, chunked output is bitwise equal to the scalar reference.

/// Chunk width of the fast-path accumulators. Four `f64` lanes fill one
/// AVX2 register (two SSE2 registers); wider chunks showed no gain on
/// the short rows the plane produces.
pub const LANES: usize = 4;

/// A weight element of the compiled matrix: exact `f64` or the opt-in
/// quantised `f32` lane. Widening is always exact, so both lanes share
/// one set of `f64`-accumulating kernels.
pub trait LaneWeight: Copy + Send + Sync + 'static {
    /// Widen to the `f64` the accumulators run in (exact for both).
    fn to_f64(self) -> f64;
}

impl LaneWeight for f64 {
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
}

impl LaneWeight for f32 {
    #[inline(always)]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
}

/// Scalar reference kernel: `acc[k] += x * row[k]` for every lane `k`.
/// The chunked/SIMD [`axpy`] must match this bitwise (proptested below).
#[inline]
pub fn axpy_scalar<W: LaneWeight>(acc: &mut [f64], x: f64, row: &[W]) {
    debug_assert_eq!(acc.len(), row.len());
    for (a, w) in acc.iter_mut().zip(row) {
        *a += x * w.to_f64();
    }
}

/// Chunked `acc[k] += x * row[k]`: fixed-width `[f64; LANES]` chunks
/// with a scalar tail, bit-identical to [`axpy_scalar`].
#[cfg(not(feature = "simd"))]
#[inline]
pub fn axpy<W: LaneWeight>(acc: &mut [f64], x: f64, row: &[W]) {
    debug_assert_eq!(acc.len(), row.len());
    let mut acc_chunks = acc.chunks_exact_mut(LANES);
    let mut row_chunks = row.chunks_exact(LANES);
    for (a, w) in acc_chunks.by_ref().zip(row_chunks.by_ref()) {
        let a: &mut [f64; LANES] = a.try_into().expect("exact chunk");
        let w: &[W; LANES] = w.try_into().expect("exact chunk");
        for k in 0..LANES {
            a[k] += x * w[k].to_f64();
        }
    }
    for (a, w) in acc_chunks
        .into_remainder()
        .iter_mut()
        .zip(row_chunks.remainder())
    {
        *a += x * w.to_f64();
    }
}

/// `std::simd` variant of [`axpy`]: element-wise multiply and add (no
/// FMA contraction), so every lane still runs the exact scalar chain.
#[cfg(feature = "simd")]
#[inline]
pub fn axpy<W: LaneWeight>(acc: &mut [f64], x: f64, row: &[W]) {
    use std::simd::Simd;
    debug_assert_eq!(acc.len(), row.len());
    let xs = Simd::<f64, LANES>::splat(x);
    let mut acc_chunks = acc.chunks_exact_mut(LANES);
    let mut row_chunks = row.chunks_exact(LANES);
    for (a, w) in acc_chunks.by_ref().zip(row_chunks.by_ref()) {
        let wv = Simd::<f64, LANES>::from_array(std::array::from_fn(|k| w[k].to_f64()));
        let av = Simd::<f64, LANES>::from_slice(a) + xs * wv;
        a.copy_from_slice(av.as_array());
    }
    for (a, w) in acc_chunks
        .into_remainder()
        .iter_mut()
        .zip(row_chunks.remainder())
    {
        *a += x * w.to_f64();
    }
}

/// Scalar reference kernel: `acc[k] += addend[k]` (the sharded-reduce
/// fold). The chunked [`add_assign`] must match this bitwise.
#[inline]
pub fn add_assign_scalar(acc: &mut [f64], addend: &[f64]) {
    debug_assert_eq!(acc.len(), addend.len());
    for (a, b) in acc.iter_mut().zip(addend) {
        *a += b;
    }
}

/// Chunked `acc[k] += addend[k]`, bit-identical to
/// [`add_assign_scalar`]. Used to fold MaxEnt expectation partials over
/// vocabulary-sized vectors (whose lengths are rarely `LANES`-aligned).
#[cfg(not(feature = "simd"))]
#[inline]
pub fn add_assign(acc: &mut [f64], addend: &[f64]) {
    debug_assert_eq!(acc.len(), addend.len());
    let mut acc_chunks = acc.chunks_exact_mut(LANES);
    let mut add_chunks = addend.chunks_exact(LANES);
    for (a, b) in acc_chunks.by_ref().zip(add_chunks.by_ref()) {
        let a: &mut [f64; LANES] = a.try_into().expect("exact chunk");
        let b: &[f64; LANES] = b.try_into().expect("exact chunk");
        for k in 0..LANES {
            a[k] += b[k];
        }
    }
    for (a, b) in acc_chunks
        .into_remainder()
        .iter_mut()
        .zip(add_chunks.remainder())
    {
        *a += b;
    }
}

/// `std::simd` variant of [`add_assign`].
#[cfg(feature = "simd")]
#[inline]
pub fn add_assign(acc: &mut [f64], addend: &[f64]) {
    use std::simd::Simd;
    debug_assert_eq!(acc.len(), addend.len());
    let mut acc_chunks = acc.chunks_exact_mut(LANES);
    let mut add_chunks = addend.chunks_exact(LANES);
    for (a, b) in acc_chunks.by_ref().zip(add_chunks.by_ref()) {
        let av = Simd::<f64, LANES>::from_slice(a) + Simd::<f64, LANES>::from_slice(b);
        a.copy_from_slice(av.as_array());
    }
    for (a, b) in acc_chunks
        .into_remainder()
        .iter_mut()
        .zip(add_chunks.remainder())
    {
        *a += b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn axpy_handles_every_remainder_length() {
        // Deterministic sweep over every length around multiples of
        // LANES (0..=3·LANES+1 covers remainders 0..LANES at several
        // chunk counts) with irrational-ish values.
        for len in 0..=(3 * LANES + 1) {
            let row: Vec<f64> = (0..len).map(|k| (k as f64 + 0.1).sqrt()).collect();
            let mut chunked: Vec<f64> = (0..len).map(|k| k as f64 * 0.25 - 1.0).collect();
            let mut scalar = chunked.clone();
            axpy(&mut chunked, std::f64::consts::PI, &row);
            axpy_scalar(&mut scalar, std::f64::consts::PI, &row);
            assert_eq!(
                chunked.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "len={len}"
            );
        }
    }

    proptest! {
        #[test]
        fn axpy_is_bitwise_equal_to_scalar(
            row in proptest::collection::vec(-1e6f64..1e6, 0..40),
            init in -1e3f64..1e3,
            x in -1e3f64..1e3,
        ) {
            let mut chunked = vec![init; row.len()];
            let mut scalar = vec![init; row.len()];
            axpy(&mut chunked, x, &row);
            axpy_scalar(&mut scalar, x, &row);
            prop_assert_eq!(
                chunked.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }

        #[test]
        fn axpy_f32_lane_is_bitwise_equal_to_scalar(
            row in proptest::collection::vec((-1e6f64..1e6).prop_map(|v| v as f32), 0..40),
            x in -1e3f64..1e3,
        ) {
            let mut chunked = vec![0.5f64; row.len()];
            let mut scalar = vec![0.5f64; row.len()];
            axpy(&mut chunked, x, &row);
            axpy_scalar(&mut scalar, x, &row);
            prop_assert_eq!(
                chunked.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }

        #[test]
        fn add_assign_is_bitwise_equal_to_scalar(
            addend in proptest::collection::vec(-1e9f64..1e9, 0..70),
            init in -1e3f64..1e3,
        ) {
            let mut chunked = vec![init; addend.len()];
            let mut scalar = vec![init; addend.len()];
            add_assign(&mut chunked, &addend);
            add_assign_scalar(&mut scalar, &addend);
            prop_assert_eq!(
                chunked.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}
