//! Server state, request routing, and the engine spawn/shutdown API.
//!
//! ## Threading model
//!
//! `N` **reactor threads** (the internal `reactor` module) share the
//! accept load: each owns its own `SO_REUSEPORT` listener (the kernel
//! load-balances incoming connections across them; where `REUSEPORT`
//! is unavailable they accept-race clones of one listener), its own
//! connection slab, its own wake pipe, and its own result-cache shard
//! set. A connection is adopted by exactly one reactor and never
//! migrates — no hot-path state crosses reactor boundaries. Each
//! reactor feeds bytes into per-connection incremental parsers and
//! writes responses over non-blocking I/O behind a pluggable engine
//! (`--io`: batched io_uring or an epoll/`poll(2)` readiness poller;
//! see [`crate::sys`] and [`IoBackend`]). Fully
//! parsed requests are dispatched to a small **scoring pool** (the
//! internal `pool` module) sized to the CPU count, whose threads only
//! ever run compute. Total thread budget: `reactors + cores`,
//! independent of the number of open connections — thousands of
//! mostly-idle keep-alive clients cost slab slots, not threads. (The
//! previous engine parked one blocking worker thread per keep-alive
//! connection, capping concurrent connections at the pool size.)
//!
//! Each reactor also runs **admission control**: at most
//! [`ServeConfig::max_inflight`] requests per reactor may sit in the
//! scoring pool at once; the excess is answered `503` directly on the
//! reactor thread without ever crossing into the pool, so overload
//! sheds load instead of queueing it.
//!
//! ## Hot reload
//!
//! The model lives in a private `ModelSlot` behind an `RwLock`: request
//! handlers take a read lock just long enough to clone the
//! `Arc<LanguageIdentifier>` and the epoch, then score without any lock
//! held. `POST /admin/reload` loads the new model — JSON or the
//! zero-copy `.urlm` binary format, sniffed by magic — *before* taking the
//! write lock, so the lock is held only for the pointer swap — in-flight
//! requests finish on the model they started with and no request is ever
//! dropped. The epoch bump atomically invalidates the result cache (see
//! [`crate::cache`]).

use crate::cache::{normalize_url, CachedScores, ResultCache};
use crate::http::{Request, MAX_BODY_BYTES};
use crate::metrics::Metrics;
use crate::pool::{CompletionPort, ScoringPool};
use crate::reactor::Reactor;
use crate::sys::{WakePipe, Waker};
use serde::Value;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use urlid::{LanguageIdentifier, ModelFormat, ModelSource};
use urlid_classifiers::LanguageClassifierSet;
use urlid_features::ExtractScratch;
use urlid_lexicon::ALL_LANGUAGES;
use urlid_telemetry::{duration_micros, PromWriter, Stage};

/// Content type of every JSON response.
const CONTENT_TYPE_JSON: &str = "application/json";
/// Content type of the Prometheus text exposition (format 0.0.4).
const CONTENT_TYPE_PROM: &str = "text/plain; version=0.0.4; charset=utf-8";

/// How scoring-pool workers are wired to the reactors.
///
/// Both topologies were measured head-to-head (see the README's
/// serving-architecture section): on few-core boxes they are within
/// noise of each other, and `Shared` is work-conserving under a traffic
/// imbalance, so it is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolTopology {
    /// One job channel feeds every worker; any worker serves any
    /// reactor. The channel's internal mutex is the one cross-reactor
    /// lock in the system, and it sits on the pool side of the dispatch
    /// boundary — never on a reactor's accept/parse/write path.
    #[default]
    Shared,
    /// Each reactor owns a private job channel and a dedicated worker
    /// subset (at least one worker each). Zero cross-reactor contention
    /// anywhere, but an overloaded reactor cannot borrow a sibling's
    /// idle workers.
    Partitioned,
}

/// Which I/O engine the reactors multiplex through (`urlid serve
/// --io`). The engines sit behind one trait ([`crate::sys::Backend`])
/// and are behaviourally identical; they differ in syscall cost — see
/// the README's "I/O backends" subsection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoBackend {
    /// Probe io_uring at startup and use it when the kernel allows;
    /// otherwise fall back to the readiness poller (epoll on Linux,
    /// `poll(2)` elsewhere) and log why. `URLID_NO_URING` in the
    /// environment forces the fallback, like `URLID_NO_MMAP` does for
    /// the model mapping.
    #[default]
    Auto,
    /// Require io_uring; refuse to start when the probe fails.
    Uring,
    /// The readiness poller, unconditionally.
    Epoll,
}

impl IoBackend {
    /// Parse a `--io` argument (`auto` | `uring` | `epoll`).
    pub fn parse(s: &str) -> Result<IoBackend, String> {
        match s {
            "auto" => Ok(IoBackend::Auto),
            "uring" => Ok(IoBackend::Uring),
            "epoll" => Ok(IoBackend::Epoll),
            other => Err(format!(
                "invalid io backend {other:?} (expected auto, uring or epoll)"
            )),
        }
    }
}

/// Default reactor count: one per core, capped at four. Past four
/// reactors the accept/parse/write load is spread thinner than the
/// scoring work that actually saturates the cores.
pub fn default_reactors() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4)
}

/// Server configuration (everything has serving-friendly defaults).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (tests, loadgen).
    pub addr: String,
    /// Reactor threads, each owning its own `SO_REUSEPORT` listener and
    /// connection slab; 0 means [`default_reactors`] (`min(cores, 4)`).
    pub reactors: usize,
    /// Scoring-pool threads; 0 means one per available core. These
    /// threads are pure compute — connections no longer pin threads, so
    /// there is nothing to over-provision.
    pub scoring_threads: usize,
    /// Per-reactor admission-control limit: at most this many requests
    /// from one reactor may be in the scoring pool at once; the excess
    /// is answered `503` on the reactor thread. `0` disables the limit.
    pub max_inflight: usize,
    /// Scoring-pool topology (see [`PoolTopology`]).
    pub pool: PoolTopology,
    /// Which I/O engine the reactors use (see [`IoBackend`]).
    pub io: IoBackend,
    /// Number of cache shards (mutex stripes) *per shard set*; each
    /// reactor maps onto one set of the state's [`ResultCache`].
    pub cache_shards: usize,
    /// A connection with no bytes moving for this long is evicted by
    /// the reactor — mid-request (slowloris) and between requests
    /// alike. Connections whose request is in the scoring pool are
    /// exempt. An eviction costs a slab slot, never a thread, so this
    /// can be generous.
    pub idle_timeout: Duration,
    /// Maximum accepted `Content-Length`; larger declarations are
    /// answered with `413` before any body byte is buffered.
    pub max_body_bytes: usize,
    /// How long a graceful shutdown waits for in-flight requests to
    /// finish and flush before force-closing what remains.
    pub drain_timeout: Duration,
    /// Stage-span recording (per-stage histograms, the trace ring).
    /// Counters and the end-to-end latency histogram stay on even when
    /// this is off; turning it off exists for A/B overhead runs
    /// (`urlid serve --telemetry off`).
    pub telemetry: bool,
    /// Requests slower than this (end-to-end, microseconds) emit one
    /// rate-limited key=value line to stderr; `0` disables the slow
    /// log entirely.
    pub slow_request_micros: u64,
    /// Test hook: a reactor panics once it has accepted more than this
    /// many connections (`Some(0)` panics on the first accept). Used by
    /// the panic-hardening integration test to prove a dying reactor
    /// does not strand its siblings; `None` in any real configuration.
    pub fail_after_accepts: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            reactors: 0,
            scoring_threads: 0,
            max_inflight: 32,
            pool: PoolTopology::Shared,
            io: IoBackend::Auto,
            cache_shards: ResultCache::DEFAULT_SHARDS,
            idle_timeout: Duration::from_secs(5),
            max_body_bytes: MAX_BODY_BYTES,
            drain_timeout: Duration::from_secs(2),
            telemetry: true,
            slow_request_micros: 100_000,
            fail_after_accepts: None,
        }
    }
}

/// Per-request trace context threaded through [`route`]: which trace
/// stripe to record into, the request id, and the stage durations the
/// handlers measured (the scoring-pool worker reads these back for the
/// slow-request log line).
pub(crate) struct RequestTrace {
    /// Request id assigned at parse completion.
    pub request_id: u64,
    /// Trace-ring stripe of the recording thread (`1 + worker_index`).
    pub stripe: usize,
    /// Result-cache shard set of the dispatching reactor (set `0` for
    /// anything that scores outside a reactor context).
    pub cache_set: usize,
    /// Result-cache probe duration in microseconds.
    pub cache_us: u64,
    /// Feature-extraction duration in microseconds (cache miss only).
    pub extract_us: u64,
    /// Scoring duration in microseconds (cache miss only).
    pub score_us: u64,
}

impl RequestTrace {
    pub(crate) fn new(request_id: u64, stripe: usize) -> Self {
        RequestTrace {
            request_id,
            stripe,
            cache_set: 0,
            cache_us: 0,
            extract_us: 0,
            score_us: 0,
        }
    }
}

/// The hot-swappable model: identifier + epoch + provenance (the path
/// it came from, the persistence format it was decoded from, and how
/// long the load took).
struct ModelSlot {
    identifier: Arc<LanguageIdentifier>,
    epoch: u64,
    path: Option<PathBuf>,
    /// `None` for models built in memory (tests, library embedders).
    format: Option<ModelFormat>,
    /// Wall-clock milliseconds the load of this model took; `None` for
    /// in-memory models that were never loaded from disk.
    load_ms: Option<f64>,
}

/// A consistent read of the model slot: everything `/healthz`,
/// `/metrics` and reload responses report about the serving model,
/// captured under a single lock hold.
struct ModelStatus {
    identifier: Arc<LanguageIdentifier>,
    epoch: u64,
    path: Option<PathBuf>,
    format: Option<ModelFormat>,
    load_ms: Option<f64>,
}

/// What a successful reload swapped in (returned to the `/admin/reload`
/// handler so the response can report it without re-reading the slot).
pub struct ReloadReport {
    /// The post-swap cache epoch.
    pub epoch: u64,
    /// The persistence format the new model was decoded from.
    pub format: ModelFormat,
    /// Wall-clock milliseconds spent loading (file → ready identifier,
    /// weight-lane selection included; the pointer swap is not).
    pub load_ms: f64,
}

/// Everything the request handlers share: the model slot, the result
/// cache and the metrics. Constructed once and passed to [`spawn`] in an
/// `Arc`; tests reach the cache and metrics through it.
pub struct ServerState {
    slot: RwLock<ModelSlot>,
    cache: ResultCache,
    metrics: Metrics,
    /// Serve the compiled plane's quantised `f32` weight lane instead of
    /// the exact `f64` default. Remembered here so `/admin/reload`
    /// re-applies the lane to every freshly loaded model.
    f32_weights: bool,
}

impl ServerState {
    /// Read the model slot, recovering from lock poisoning: the slot
    /// only ever holds fully swapped `Arc`s (the write section is three
    /// assignments), so a panic elsewhere must not cascade into every
    /// scoring worker that reads the model afterwards.
    fn read_slot(&self) -> std::sync::RwLockReadGuard<'_, ModelSlot> {
        self.slot
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// A serving state for a trained identifier. `model_path` is where
    /// `POST /admin/reload` reloads from when the request names no path
    /// (pass `None` for states built from in-memory models).
    pub fn new(
        identifier: LanguageIdentifier,
        model_path: Option<PathBuf>,
        cache_capacity: usize,
    ) -> Self {
        Self::with_shards(
            identifier,
            model_path,
            cache_capacity,
            ResultCache::DEFAULT_SHARDS,
        )
    }

    /// [`ServerState::new`] with an explicit shard count.
    pub fn with_shards(
        identifier: LanguageIdentifier,
        model_path: Option<PathBuf>,
        cache_capacity: usize,
        cache_shards: usize,
    ) -> Self {
        Self::with_weights(identifier, model_path, cache_capacity, cache_shards, false)
    }

    /// [`ServerState::with_shards`] plus a weight-lane choice: with
    /// `f32_weights` the identifier's compiled plane is re-compiled to
    /// the quantised `f32` lane (half the matrix bytes, documented score
    /// tolerance, identical accept/reject decisions in practice — see
    /// the README's compiled-plane section), and every model swapped in
    /// by `POST /admin/reload` gets the same treatment.
    pub fn with_weights(
        identifier: LanguageIdentifier,
        model_path: Option<PathBuf>,
        cache_capacity: usize,
        cache_shards: usize,
        f32_weights: bool,
    ) -> Self {
        Self::with_topology(
            identifier,
            model_path,
            cache_capacity,
            cache_shards,
            1,
            f32_weights,
        )
    }

    /// [`ServerState::with_weights`] plus an explicit cache shard-set
    /// count. Size `cache_sets` to the reactor count you will serve
    /// with: reactor `r` probes only set `r % cache_sets`, so with one
    /// set per reactor no cache stripe is ever contended across
    /// reactors. The capacity is split evenly across the sets.
    pub fn with_topology(
        mut identifier: LanguageIdentifier,
        model_path: Option<PathBuf>,
        cache_capacity: usize,
        cache_shards: usize,
        cache_sets: usize,
        f32_weights: bool,
    ) -> Self {
        if f32_weights {
            // `set_weight_lane`, not `compile_f32`: flipping the lane
            // preference keeps an `mmap`-backed plane mapped, where a
            // recompile would silently rebuild it on the heap.
            identifier.classifier_set_mut().set_weight_lane(true);
        }
        Self {
            slot: RwLock::new(ModelSlot {
                identifier: Arc::new(identifier),
                epoch: 0,
                path: model_path,
                format: None,
                load_ms: None,
            }),
            cache: ResultCache::with_sets(cache_capacity, cache_shards, cache_sets),
            metrics: Metrics::new(),
            f32_weights,
        }
    }

    /// The current model and its epoch (consistent snapshot).
    pub fn model(&self) -> (Arc<LanguageIdentifier>, u64) {
        let slot = self.read_slot();
        (Arc::clone(&slot.identifier), slot.epoch)
    }

    /// Model, epoch *and* provenance under a single lock hold, so a
    /// concurrent reload can never produce a torn epoch/path/format
    /// pairing in `/healthz`, `/metrics` or reload responses.
    fn model_snapshot(&self) -> ModelStatus {
        let slot = self.read_slot();
        ModelStatus {
            identifier: Arc::clone(&slot.identifier),
            epoch: slot.epoch,
            path: slot.path.clone(),
            format: slot.format,
            load_ms: slot.load_ms,
        }
    }

    /// Record how the initially installed model was loaded (format and
    /// load latency), so `/healthz` and `/metrics` report provenance
    /// from the first request on. The CLI calls this right after
    /// constructing the state; states built from in-memory models skip
    /// it and report `null`.
    pub fn set_load_info(&self, format: ModelFormat, load_ms: f64) {
        let mut slot = self
            .slot
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        slot.format = Some(format);
        slot.load_ms = Some(load_ms);
    }

    /// The result cache (exposed for metrics and tests).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// The serving metrics (exposed for tests).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Swap in a model loaded from `path` (or from the slot's stored
    /// path when `None`), auto-detecting the persistence format.
    /// Returns the new epoch. The old model keeps serving until the
    /// swap; on any error it keeps serving, period.
    pub fn reload(&self, path: Option<PathBuf>) -> Result<u64, String> {
        self.reload_from(path, "auto").map(|report| report.epoch)
    }

    /// [`ServerState::reload`] with an explicit format request:
    /// `"auto"` (or `""`) sniffs the `.urlm` magic, `"json"` and
    /// `"binary"` force a format. The identifier is built *outside* the
    /// write lock, so the lock is held only for the pointer swap.
    pub fn reload_from(&self, path: Option<PathBuf>, format: &str) -> Result<ReloadReport, String> {
        let path = match path.or_else(|| self.read_slot().path.clone()) {
            Some(p) => p,
            None => {
                return Err(
                    "no model path to reload from (start with --model or pass {\"path\": ...})"
                        .into(),
                )
            }
        };
        let source = ModelSource::resolve(&path, format)
            .map_err(|e| format!("cannot reload {}: {e}", path.display()))?;
        let started = Instant::now();
        let mut identifier = source
            .load_identifier()
            .map_err(|e| format!("cannot reload {}: {e}", path.display()))?;
        if self.f32_weights {
            // Lane flip, not recompile: a binary-loaded plane keeps its
            // mmap-backed lanes (`.urlm` always carries the f32 lane).
            identifier.classifier_set_mut().set_weight_lane(true);
        }
        let load_ms = started.elapsed().as_secs_f64() * 1e3;
        let format = source.format();
        let identifier = Arc::new(identifier);
        let epoch = {
            let mut slot = self
                .slot
                .write()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            slot.identifier = identifier;
            slot.epoch += 1;
            slot.path = Some(path);
            slot.format = Some(format);
            slot.load_ms = Some(load_ms);
            slot.epoch
        };
        // The epoch bump already invalidates stale entries; clearing just
        // releases their memory promptly.
        self.cache.clear();
        self.metrics.reloads.fetch_add(1, Ordering::Relaxed);
        Ok(ReloadReport {
            epoch,
            format,
            load_ms,
        })
    }

    /// Score one normalised URL, through the cache. Cache misses score
    /// through the calling worker's reusable [`ExtractScratch`], so the
    /// extract-and-score path allocates nothing in steady state — the
    /// stage spans recorded along the way keep that property (atomic
    /// histogram bumps plus a copy into a pre-allocated trace slot).
    fn scores_cached(
        &self,
        key: &str,
        scratch: &mut ExtractScratch,
        trace: &mut RequestTrace,
    ) -> (CachedScores, bool) {
        let (identifier, epoch) = self.model();
        let cache_started = Instant::now();
        let hit = self.cache.get_in(trace.cache_set, key, epoch);
        trace.cache_us = duration_micros(cache_started.elapsed());
        self.metrics
            .record_stage_end(trace.stripe, trace.request_id, Stage::Cache, trace.cache_us);
        if let Some(scores) = hit {
            return (scores, true);
        }
        // With telemetry off the plain entry point runs — the timed
        // variant executes the exact same float operations (it shares
        // the extraction/scoring helpers), the split just reads the
        // clock between them.
        let scores = if self.metrics.telemetry_enabled() {
            let (scores, split) = identifier
                .classifier_set()
                .score_all_with_split(key, scratch);
            trace.extract_us = split.extract_micros;
            trace.score_us = split.score_micros;
            self.metrics.record_stage_end(
                trace.stripe,
                trace.request_id,
                Stage::Extract,
                split.extract_micros,
            );
            self.metrics.record_stage_end(
                trace.stripe,
                trace.request_id,
                Stage::Score,
                split.score_micros,
            );
            scores
        } else {
            identifier.classifier_set().score_all_with(key, scratch)
        };
        self.cache.insert_in(trace.cache_set, key, epoch, scores);
        (scores, false)
    }

    /// Score a batch of normalised URLs: cache lookups first, then one
    /// parallel `score_batch` fan-out over the misses. The batch path
    /// records the cache probe as one cache-stage span and the whole
    /// fan-out as one score-stage span (extraction happens inside the
    /// per-core workers and is not split out here).
    fn scores_cached_batch(
        &self,
        keys: &[String],
        trace: &mut RequestTrace,
    ) -> Vec<(CachedScores, bool)> {
        let (identifier, epoch) = self.model();
        let cache_started = Instant::now();
        let mut out: Vec<Option<(CachedScores, bool)>> = keys
            .iter()
            .map(|k| {
                self.cache
                    .get_in(trace.cache_set, k, epoch)
                    .map(|s| (s, true))
            })
            .collect();
        let miss_indices: Vec<usize> = (0..keys.len()).filter(|&i| out[i].is_none()).collect();
        trace.cache_us = duration_micros(cache_started.elapsed());
        self.metrics
            .record_stage_end(trace.stripe, trace.request_id, Stage::Cache, trace.cache_us);
        if !miss_indices.is_empty() {
            let miss_urls: Vec<&str> = miss_indices.iter().map(|&i| keys[i].as_str()).collect();
            // The existing scoped-thread batch path: one extraction per
            // URL, fanned out over all cores.
            let score_started = Instant::now();
            let scored = identifier.classifier_set().score_batch(&miss_urls);
            trace.score_us = duration_micros(score_started.elapsed());
            self.metrics.record_stage_end(
                trace.stripe,
                trace.request_id,
                Stage::Score,
                trace.score_us,
            );
            for (&i, scores) in miss_indices.iter().zip(scored) {
                self.cache
                    .insert_in(trace.cache_set, &keys[i], epoch, scores);
                out[i] = Some((scores, false));
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every index scored"))
            .collect()
    }
}

// ---------------------------------------------------------------------
// Response building
// ---------------------------------------------------------------------

/// Serialise a `{"error": ...}` body (shared with the connection state
/// machine, which answers protocol violations without a handler).
pub(crate) fn error_body(message: &str) -> String {
    let mut o = Value::object();
    o.insert("error", Value::Str(message.to_owned()));
    serde_json::to_string(&o).expect("error body serialises")
}

/// One URL's result object (shared by `/identify` and `/identify_batch`).
/// Decisions and the best language are derived from the scores alone
/// (sign convention), which is what makes score-only caching sufficient.
fn result_value(key: &str, scores: &CachedScores, cached: bool) -> Value {
    let mut score_map = Value::object();
    let mut accepted = Vec::new();
    for lang in ALL_LANGUAGES {
        let score = scores[lang.index()];
        score_map.insert(
            lang.iso_code(),
            match score {
                Some(s) => Value::Float(s),
                None => Value::Null,
            },
        );
        // The sign convention (decision == score > 0) is proptested for
        // every algorithm, so decisions are free given the scores.
        if score.is_some_and(|s| s > 0.0) {
            accepted.push(Value::Str(lang.iso_code().to_owned()));
        }
    }
    let best = LanguageClassifierSet::best_of(scores);
    let mut o = Value::object();
    o.insert("url", Value::Str(key.to_owned()));
    o.insert(
        "best",
        match best {
            Some(lang) => Value::Str(lang.iso_code().to_owned()),
            None => Value::Null,
        },
    );
    o.insert("accepted", Value::Array(accepted));
    o.insert("scores", score_map);
    o.insert("cached", Value::Bool(cached));
    o
}

fn model_value(status: &ModelStatus) -> Value {
    let identifier = &status.identifier;
    let config = identifier.config();
    let mut o = Value::object();
    o.insert(
        "algorithm",
        Value::Str(config.algorithm.abbrev().to_owned()),
    );
    // Models loaded from a bundle are always compiled; the flag makes
    // the serving representation observable in /healthz and /metrics.
    o.insert(
        "compiled",
        Value::Bool(identifier.classifier_set().is_compiled()),
    );
    o.insert(
        "features",
        Value::Str(config.feature_set.short_label().to_owned()),
    );
    o.insert("epoch", Value::Uint(status.epoch));
    // Which weight lane the compiled plane serves: exact "f64" or the
    // opt-in quantised "f32" (`urlid serve --weights f32`).
    o.insert(
        "weights",
        Value::Str(identifier.classifier_set().weight_lane().to_owned()),
    );
    // Persistence provenance: which on-disk format the model was
    // decoded from ("json" | "binary"), how long that load took, and
    // whether the compiled plane still serves straight out of the
    // mapped file. All `null`/`false` for in-memory models.
    o.insert(
        "format",
        match status.format {
            Some(f) => Value::Str(f.as_str().to_owned()),
            None => Value::Null,
        },
    );
    o.insert(
        "load_ms",
        match status.load_ms {
            Some(ms) => Value::Float(ms),
            None => Value::Null,
        },
    );
    o.insert(
        "mapped",
        Value::Bool(
            identifier
                .classifier_set()
                .plane()
                .is_some_and(|p| p.is_mapped()),
        ),
    );
    o.insert(
        "path",
        match &status.path {
            Some(p) => Value::Str(p.display().to_string()),
            None => Value::Null,
        },
    );
    o
}

// ---------------------------------------------------------------------
// Request handlers
// ---------------------------------------------------------------------

fn parse_json(body: &str) -> Result<Value, String> {
    serde_json::from_str::<Value>(body).map_err(|e| format!("invalid JSON body: {e}"))
}

fn handle_identify(
    state: &ServerState,
    req: &Request,
    scratch: &mut ExtractScratch,
    trace: &mut RequestTrace,
) -> (u16, String) {
    let parsed = match parse_json(&req.body) {
        Ok(v) => v,
        Err(e) => return (400, error_body(&e)),
    };
    let Some(Value::Str(url)) = parsed.get("url") else {
        return (400, error_body("body must be {\"url\": \"...\"}"));
    };
    let key = normalize_url(url);
    if key.is_empty() {
        return (400, error_body("empty url"));
    }
    let (scores, cached) = state.scores_cached(&key, scratch, trace);
    let body =
        serde_json::to_string(&result_value(&key, &scores, cached)).expect("response serialises");
    state.metrics.identify.fetch_add(1, Ordering::Relaxed);
    (200, body)
}

fn handle_identify_batch(
    state: &ServerState,
    req: &Request,
    trace: &mut RequestTrace,
) -> (u16, String) {
    let parsed = match parse_json(&req.body) {
        Ok(v) => v,
        Err(e) => return (400, error_body(&e)),
    };
    let Some(Value::Array(raw_urls)) = parsed.get("urls") else {
        return (400, error_body("body must be {\"urls\": [\"...\", ...]}"));
    };
    let mut keys = Vec::with_capacity(raw_urls.len());
    for v in raw_urls {
        match v {
            Value::Str(url) => {
                let key = normalize_url(url);
                if key.is_empty() {
                    return (400, error_body("empty url in batch"));
                }
                keys.push(key);
            }
            _ => return (400, error_body("urls must all be strings")),
        }
    }
    let results = state.scores_cached_batch(&keys, trace);
    let mut hits = 0u64;
    let items: Vec<Value> = keys
        .iter()
        .zip(&results)
        .map(|(key, (scores, cached))| {
            hits += u64::from(*cached);
            result_value(key, scores, *cached)
        })
        .collect();
    let mut o = Value::object();
    o.insert("count", Value::Uint(items.len() as u64));
    o.insert("cache_hits", Value::Uint(hits));
    o.insert("results", Value::Array(items));
    let body = serde_json::to_string(&o).expect("response serialises");
    state.metrics.identify_batch.fetch_add(1, Ordering::Relaxed);
    state
        .metrics
        .batch_urls
        .fetch_add(keys.len() as u64, Ordering::Relaxed);
    (200, body)
}

fn handle_healthz(state: &ServerState) -> (u16, String) {
    state.metrics.healthz.fetch_add(1, Ordering::Relaxed);
    let status = state.model_snapshot();
    let mut o = Value::object();
    o.insert("status", Value::Str("ok".to_owned()));
    o.insert("uptime_secs", Value::Float(state.metrics.uptime_secs()));
    o.insert(
        "io_backend",
        Value::Str(state.metrics.io_backend().to_owned()),
    );
    o.insert("model", model_value(&status));
    (200, serde_json::to_string(&o).expect("response serialises"))
}

/// Does this `Accept` header ask for the Prometheus text exposition?
/// JSON stays the default: only an explicit `text/plain` (what
/// Prometheus sends) or an OpenMetrics media type switches formats.
fn wants_prometheus(accept: Option<&str>) -> bool {
    let Some(accept) = accept else {
        return false;
    };
    let accept = accept.to_ascii_lowercase();
    accept.contains("text/plain") || accept.contains("application/openmetrics-text")
}

fn handle_metrics(state: &ServerState, req: &Request) -> (u16, &'static str, String) {
    state.metrics.metrics.fetch_add(1, Ordering::Relaxed);
    if wants_prometheus(req.accept.as_deref()) {
        return (200, CONTENT_TYPE_PROM, prometheus_text(state));
    }
    let status = state.model_snapshot();
    let mut cache = Value::object();
    cache.insert("hits", Value::Uint(state.cache.hits()));
    cache.insert("misses", Value::Uint(state.cache.misses()));
    cache.insert("hit_rate", Value::Float(state.cache.hit_rate()));
    cache.insert("entries", Value::Uint(state.cache.len() as u64));
    cache.insert("capacity", Value::Uint(state.cache.capacity() as u64));
    let mut model = model_value(&status);
    model.insert(
        "reloads",
        Value::Uint(state.metrics.reloads.load(Ordering::Relaxed)),
    );
    let mut o = Value::object();
    o.insert("uptime_secs", Value::Float(state.metrics.uptime_secs()));
    o.insert("requests", state.metrics.requests_value());
    o.insert("connections", state.metrics.connections_value());
    o.insert("threads", state.metrics.threads_value());
    o.insert("reactors", state.metrics.reactors_value());
    o.insert("cache", cache);
    o.insert("latency", state.metrics.latency_value());
    o.insert("stages", state.metrics.stages_value());
    o.insert("model", model);
    (
        200,
        CONTENT_TYPE_JSON,
        serde_json::to_string(&o).expect("response serialises"),
    )
}

/// Render every serving metric as Prometheus text exposition 0.0.4.
/// The body is rebuilt per scrape from the same atomics the JSON view
/// reads; `urlid_telemetry::prometheus::lint` accepts it (enforced by
/// a test in `tests/server_http.rs`).
pub fn prometheus_text(state: &ServerState) -> String {
    let m = &state.metrics;
    let status = state.model_snapshot();
    let identifier = &status.identifier;
    let load = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
    let mut w = PromWriter::new();

    w.gauge(
        "urlid_uptime_seconds",
        "Seconds since the server started.",
        m.uptime_secs(),
    );
    w.family(
        "urlid_requests_total",
        "counter",
        "Requests served, by endpoint.",
    );
    for (endpoint, counter) in [
        ("identify", &m.identify),
        ("identify_batch", &m.identify_batch),
        ("healthz", &m.healthz),
        ("metrics", &m.metrics),
    ] {
        w.sample(
            "urlid_requests_total",
            &[("endpoint", endpoint)],
            load(counter) as f64,
        );
    }
    w.counter(
        "urlid_batch_urls_total",
        "URLs scored through /identify_batch.",
        load(&m.batch_urls),
    );
    w.counter(
        "urlid_errors_total",
        "Requests answered with a 4xx/5xx status (protocol rejects included).",
        load(&m.errors),
    );
    w.counter(
        "urlid_reloads_total",
        "Successful model hot-reloads.",
        load(&m.reloads),
    );
    w.counter(
        "urlid_connections_accepted_total",
        "Connections accepted since start, summed across reactors.",
        m.connections_accepted_total(),
    );
    w.counter(
        "urlid_connections_timed_out_total",
        "Connections evicted by the idle timeout, summed across reactors.",
        m.connections_timed_out_total(),
    );
    let open = m.connections_open_total();
    let busy = m.connections_busy_total();
    w.gauge(
        "urlid_connections_open",
        "Connections currently registered across all reactors.",
        open as f64,
    );
    w.gauge(
        "urlid_connections_idle",
        "Open connections with no request in the scoring pool.",
        open.saturating_sub(busy) as f64,
    );
    w.counter(
        "urlid_admission_rejects_total",
        "Requests answered 503 by per-reactor admission control.",
        m.admission_rejects_total(),
    );
    w.gauge(
        "urlid_reactors_failed",
        "Reactor threads that died on a panic (nonzero means draining toward a nonzero exit).",
        load(&m.reactors_failed) as f64,
    );
    let reactor_stats = m.reactor_stats();
    // Per-reactor families carry the I/O engine as a label: every
    // reactor runs the engine resolved at spawn, and the label is what
    // lets a dashboard split a fleet mid-rollout by backend.
    let io = m.io_backend();
    w.family(
        "urlid_reactor_connections_open",
        "gauge",
        "Connections currently registered, by reactor.",
    );
    for (i, r) in reactor_stats.iter().enumerate() {
        let label = i.to_string();
        w.sample(
            "urlid_reactor_connections_open",
            &[("reactor", label.as_str()), ("io", io)],
            r.open.load(Ordering::Relaxed) as f64,
        );
    }
    w.family(
        "urlid_reactor_connections_accepted_total",
        "counter",
        "Connections accepted since start, by reactor.",
    );
    for (i, r) in reactor_stats.iter().enumerate() {
        let label = i.to_string();
        w.sample(
            "urlid_reactor_connections_accepted_total",
            &[("reactor", label.as_str()), ("io", io)],
            r.accepted.load(Ordering::Relaxed) as f64,
        );
    }
    w.family(
        "urlid_reactor_connections_timed_out_total",
        "counter",
        "Idle-timeout evictions, by reactor.",
    );
    for (i, r) in reactor_stats.iter().enumerate() {
        let label = i.to_string();
        w.sample(
            "urlid_reactor_connections_timed_out_total",
            &[("reactor", label.as_str()), ("io", io)],
            r.timed_out.load(Ordering::Relaxed) as f64,
        );
    }
    let scoring = load(&m.scoring_threads);
    w.family("urlid_threads", "gauge", "Server threads, by role.");
    w.sample(
        "urlid_threads",
        &[("role", "reactor")],
        m.reactor_count() as f64,
    );
    w.sample("urlid_threads", &[("role", "scoring")], scoring as f64);

    w.counter(
        "urlid_cache_hits_total",
        "Result-cache hits.",
        state.cache.hits(),
    );
    w.counter(
        "urlid_cache_misses_total",
        "Result-cache misses.",
        state.cache.misses(),
    );
    w.gauge(
        "urlid_cache_entries",
        "Result-cache entries currently stored.",
        state.cache.len() as f64,
    );
    w.gauge(
        "urlid_cache_capacity",
        "Result-cache capacity.",
        state.cache.capacity() as f64,
    );

    let config = identifier.config();
    w.family(
        "urlid_model_info",
        "gauge",
        "Model identity as labels; the value is always 1.",
    );
    let epoch_str = status.epoch.to_string();
    let path_str = status
        .path
        .as_ref()
        .map(|p| p.display().to_string())
        .unwrap_or_default();
    w.sample(
        "urlid_model_info",
        &[
            ("algorithm", config.algorithm.abbrev()),
            ("features", config.feature_set.short_label()),
            ("weights", identifier.classifier_set().weight_lane()),
            (
                "format",
                status.format.map(|f| f.as_str()).unwrap_or("none"),
            ),
            ("epoch", epoch_str.as_str()),
            ("path", path_str.as_str()),
        ],
        1.0,
    );
    if let Some(load_ms) = status.load_ms {
        w.gauge(
            "urlid_model_load_seconds",
            "Wall-clock load time of the serving model (file to ready identifier).",
            load_ms / 1e3,
        );
    }

    w.family(
        "urlid_request_latency_seconds",
        "histogram",
        "End-to-end latency of /identify and /identify_batch (rejects included).",
    );
    w.histogram_series(
        "urlid_request_latency_seconds",
        &[],
        &m.latency.snapshot(),
        1e-6,
    );
    w.family(
        "urlid_stage_duration_seconds",
        "histogram",
        "Per-stage request pipeline durations.",
    );
    for stage in Stage::ALL {
        w.histogram_series(
            "urlid_stage_duration_seconds",
            &[("stage", stage.name())],
            &m.stage_snapshot(stage),
            1e-6,
        );
    }
    w.finish()
}

/// `GET /admin/trace`: the last buffered stage spans, oldest first,
/// with request-id correlation — enough to reconstruct where any
/// recent request spent its time.
fn handle_trace(state: &ServerState) -> (u16, String) {
    let spans = state.metrics.trace_snapshot();
    let items: Vec<Value> = spans
        .iter()
        .map(|s| {
            let mut o = Value::object();
            o.insert("request_id", Value::Uint(s.request_id));
            o.insert("stage", Value::Str(s.stage.name().to_owned()));
            o.insert("start_us", Value::Uint(s.start_micros));
            o.insert("duration_us", Value::Uint(s.duration_micros));
            o
        })
        .collect();
    let mut o = Value::object();
    o.insert("count", Value::Uint(items.len() as u64));
    o.insert("telemetry", Value::Bool(state.metrics.telemetry_enabled()));
    o.insert("spans", Value::Array(items));
    (200, serde_json::to_string(&o).expect("response serialises"))
}

fn handle_reload(state: &ServerState, req: &Request) -> (u16, String) {
    // Body grammar: `{}` / empty reloads the stored path with format
    // auto-detection; `{"path": "..."}` names a file; `{"format":
    // "auto|json|binary"}` overrides the magic sniffing. Empty bodies
    // stay accepted for backward compatibility.
    let (path, format) = if req.body.trim().is_empty() {
        (None, "auto".to_owned())
    } else {
        match parse_json(&req.body) {
            Ok(v) => {
                let path = match v.get("path") {
                    Some(Value::Str(p)) => Some(PathBuf::from(p)),
                    Some(_) => return (400, error_body("path must be a string")),
                    None => None,
                };
                let format = match v.get("format") {
                    Some(Value::Str(f)) => f.clone(),
                    Some(_) => {
                        return (
                            400,
                            error_body("format must be \"auto\", \"json\" or \"binary\""),
                        )
                    }
                    None => "auto".to_owned(),
                };
                (path, format)
            }
            Err(e) => return (400, error_body(&e)),
        }
    };
    match state.reload_from(path, &format) {
        Ok(report) => {
            let status = state.model_snapshot();
            let mut o = Value::object();
            o.insert("reloaded", Value::Bool(true));
            o.insert("format", Value::Str(report.format.as_str().to_owned()));
            o.insert(
                "weights",
                Value::Str(status.identifier.classifier_set().weight_lane().to_owned()),
            );
            o.insert("load_ms", Value::Float(report.load_ms));
            o.insert("model", model_value(&status));
            (200, serde_json::to_string(&o).expect("response serialises"))
        }
        Err(message) => (500, error_body(&message)),
    }
}

/// Route one request to its handler (runs on a scoring-pool thread,
/// which owns `scratch` — one reusable extraction buffer per worker —
/// and `trace` — the stage-span context for this request). Returns
/// status, content type, and body.
pub(crate) fn route(
    state: &ServerState,
    req: &Request,
    scratch: &mut ExtractScratch,
    trace: &mut RequestTrace,
) -> (u16, &'static str, String) {
    let (status, content_type, body) = match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/identify") => {
            let (status, body) = handle_identify(state, req, scratch, trace);
            (status, CONTENT_TYPE_JSON, body)
        }
        ("POST", "/identify_batch") => {
            let (status, body) = handle_identify_batch(state, req, trace);
            (status, CONTENT_TYPE_JSON, body)
        }
        ("GET", "/healthz") => {
            let (status, body) = handle_healthz(state);
            (status, CONTENT_TYPE_JSON, body)
        }
        ("GET", "/metrics") => handle_metrics(state, req),
        ("GET", "/admin/trace") => {
            let (status, body) = handle_trace(state);
            (status, CONTENT_TYPE_JSON, body)
        }
        ("POST", "/admin/reload") => {
            let (status, body) = handle_reload(state, req);
            (status, CONTENT_TYPE_JSON, body)
        }
        (
            _,
            "/identify" | "/identify_batch" | "/healthz" | "/metrics" | "/admin/trace"
            | "/admin/reload",
        ) => (405, CONTENT_TYPE_JSON, error_body("method not allowed")),
        _ => (404, CONTENT_TYPE_JSON, error_body("not found")),
    };
    if status >= 400 {
        state.metrics.errors.fetch_add(1, Ordering::Relaxed);
    }
    (status, content_type, body)
}

// ---------------------------------------------------------------------
// Engine spawn / shutdown
// ---------------------------------------------------------------------

/// A running server: its address, its shared state, and the handles
/// needed to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
    wakers: Vec<Arc<Waker>>,
    reactors: Vec<JoinHandle<()>>,
    pool: ScoringPool,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real port; with
    /// `SO_REUSEPORT` every reactor's listener shares this address).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared serving state.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Serve until every reactor exits (the CLI path). Returns the
    /// number of reactors that died on a panic — `0` is a clean exit;
    /// anything else means the server drained early because a reactor
    /// failed, and the process should exit nonzero.
    pub fn join(mut self) -> usize {
        for reactor in self.reactors.drain(..) {
            let _ = reactor.join();
        }
        self.pool.join();
        self.state.metrics().reactors_failed.load(Ordering::Relaxed) as usize
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests
    /// (bounded by the configured drain timeout), stop the pool, and
    /// return. Every reactor is woken through its self-pipe — no
    /// throwaway connection involved.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for waker in &self.wakers {
            waker.wake();
        }
        // The reactors exiting drop the job senders; the workers drain
        // their queues and exit.
        let _ = self.join();
    }
}

/// Bind one listener per reactor. With more than one reactor the
/// listeners share the port through `SO_REUSEPORT` so the kernel
/// load-balances accepts; where that fails (non-Linux, old kernels),
/// fall back to accept-racing `try_clone`s of a single listener — the
/// losers of each race see `WouldBlock` and move on. Returns the
/// listeners and whether the reuseport path was taken.
fn bind_listeners(addr: &str, reactors: usize) -> io::Result<(Vec<TcpListener>, bool)> {
    if reactors <= 1 {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        return Ok((vec![listener], false));
    }
    let reuseport = (|| -> io::Result<Vec<TcpListener>> {
        use std::net::ToSocketAddrs;
        let resolved = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
        let first = crate::sys::bind_reuseport(resolved)?;
        // Port 0 resolves on the first bind; the siblings must join the
        // *resolved* port or each would get its own ephemeral one.
        let actual = first.local_addr()?;
        let mut listeners = vec![first];
        for _ in 1..reactors {
            listeners.push(crate::sys::bind_reuseport(actual)?);
        }
        Ok(listeners)
    })();
    match reuseport {
        Ok(listeners) => Ok((listeners, true)),
        Err(_) => {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            let mut listeners = Vec::with_capacity(reactors);
            for _ in 1..reactors {
                listeners.push(listener.try_clone()?);
            }
            listeners.push(listener);
            Ok((listeners, false))
        }
    }
}

/// Resolve the configured [`IoBackend`] to the engine name that will
/// actually serve. `Auto` probes io_uring once and falls back to the
/// readiness poller with a logged reason; `Uring` turns a failed probe
/// into a startup error instead of serving on a backend the operator
/// did not ask for.
fn resolve_io(requested: IoBackend) -> io::Result<&'static str> {
    match requested {
        IoBackend::Epoll => Ok(crate::sys::Poller::NAME),
        IoBackend::Uring => crate::sys::uring::probe()
            .map(|()| "uring")
            .map_err(|reason| {
                io::Error::new(
                    io::ErrorKind::Unsupported,
                    format!("--io uring unavailable: {reason}"),
                )
            }),
        IoBackend::Auto => match crate::sys::uring::probe() {
            Ok(()) => Ok("uring"),
            Err(reason) => {
                eprintln!(
                    "urlid-serve: io_uring unavailable ({reason}); falling back to {}",
                    crate::sys::Poller::NAME
                );
                Ok(crate::sys::Poller::NAME)
            }
        },
    }
}

/// Construct one reactor's I/O engine of the resolved kind. 256 SQ
/// entries per uring: the submission queue only bounds one batch (not
/// in-flight operations), and a batch bigger than that re-enters once
/// more per 256 SQEs — already far past the per-iteration event count.
fn make_backend(resolved: &'static str) -> io::Result<Box<dyn crate::sys::Backend>> {
    #[cfg(target_os = "linux")]
    if resolved == "uring" {
        return Ok(Box::new(crate::sys::uring::UringEngine::new(256)?));
    }
    let _ = resolved;
    Ok(Box::new(crate::sys::Poller::new()?))
}

/// Start the server: bind the per-reactor listeners, spawn the reactor
/// threads and the scoring pool, and return immediately with a
/// [`ServerHandle`].
///
/// A reactor that panics does not strand its siblings: the panic is
/// caught at the thread boundary, `reactors_failed` is bumped, and the
/// shared shutdown flag is raised so every surviving reactor drains
/// gracefully. [`ServerHandle::join`] reports the failure count.
pub fn spawn(config: &ServeConfig, state: Arc<ServerState>) -> io::Result<ServerHandle> {
    let reactors = if config.reactors == 0 {
        default_reactors()
    } else {
        config.reactors
    };
    let (listeners, reuseport) = bind_listeners(&config.addr, reactors)?;
    let addr = listeners[0].local_addr()?;
    let scoring_threads = if config.scoring_threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        config.scoring_threads
    };
    // Resolve the I/O engine once, before any thread spawns: a forced
    // `--io uring` on a denied kernel must fail the boot, and `auto`
    // must log its fallback exactly once.
    let io_backend = resolve_io(config.io)?;
    let metrics = state.metrics();
    metrics.set_telemetry_enabled(config.telemetry);
    metrics.set_io_backend(io_backend);
    metrics.reuseport.store(reuseport, Ordering::Relaxed);
    metrics
        .max_inflight
        .store(config.max_inflight as u64, Ordering::Relaxed);
    // 250ms minimum gap between slow-log lines: a pathological burst
    // costs at most four stderr lines per second.
    metrics.slow.configure(config.slow_request_micros, 250_000);
    metrics.reset_reactors();

    // Per-reactor plumbing: wake pipe, completion channel, pending
    // counter, stats handle. The ports vector hands the pool one
    // completion route per reactor.
    let mut plumbing = Vec::with_capacity(reactors);
    let mut wakers = Vec::with_capacity(reactors);
    let mut ports = Vec::with_capacity(reactors);
    for _ in 0..reactors {
        let (wake_pipe, waker) = WakePipe::new()?;
        let waker = Arc::new(waker);
        let (completion_tx, completion_rx) = mpsc::channel();
        let pending = Arc::new(std::sync::atomic::AtomicI64::new(0));
        ports.push(CompletionPort {
            completions: completion_tx,
            pending: Arc::clone(&pending),
            waker: Arc::clone(&waker),
        });
        plumbing.push((wake_pipe, completion_rx, pending));
        wakers.push(waker);
    }
    let (mut pool, job_txs) = ScoringPool::spawn(config.pool, scoring_threads, &state, ports)?;
    metrics
        .scoring_threads
        .store(pool.threads() as u64, Ordering::Relaxed);

    let shutdown = Arc::new(AtomicBool::new(false));
    // Built before any reactor thread starts so a panicking reactor can
    // wake every sibling, including ones spawned after it.
    let all_wakers: Arc<Vec<Arc<Waker>>> = Arc::new(wakers.clone());

    let mut built = Vec::with_capacity(reactors);
    for (index, (listener, (wake_pipe, completion_rx, pending))) in
        listeners.into_iter().zip(plumbing).enumerate()
    {
        let stats = metrics.register_reactor();
        let backend = match make_backend(io_backend) {
            Ok(backend) => backend,
            Err(e) => {
                drop(built);
                drop(job_txs);
                pool.join();
                return Err(e);
            }
        };
        let reactor = Reactor::new(
            index,
            backend,
            listener,
            wake_pipe,
            job_txs[index].clone(),
            completion_rx,
            pending,
            stats,
            Arc::clone(&state),
            Arc::clone(&shutdown),
            config,
        );
        match reactor {
            Ok(reactor) => built.push(reactor),
            Err(e) => {
                // No reactor thread is running yet: dropping the job
                // senders is enough to let the workers drain out.
                drop(built);
                drop(job_txs);
                pool.join();
                return Err(e);
            }
        }
    }

    let mut reactor_threads = Vec::with_capacity(reactors);
    for (index, reactor) in built.into_iter().enumerate() {
        let thread_state = Arc::clone(&state);
        let thread_shutdown = Arc::clone(&shutdown);
        let thread_wakers = Arc::clone(&all_wakers);
        let thread = std::thread::Builder::new()
            .name(format!("urlid-serve-reactor-{index}"))
            .spawn(move || {
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| reactor.run()));
                if result.is_err() {
                    // This reactor is gone; mark it and drain the
                    // siblings instead of stranding their connections
                    // behind a half-dead server.
                    thread_state
                        .metrics()
                        .reactors_failed
                        .fetch_add(1, Ordering::Relaxed);
                    thread_shutdown.store(true, Ordering::Release);
                    for waker in thread_wakers.iter() {
                        waker.wake();
                    }
                }
            });
        match thread {
            Ok(handle) => reactor_threads.push(handle),
            Err(e) => {
                // This reactor never started: drain what did start.
                shutdown.store(true, Ordering::Relaxed);
                for waker in all_wakers.iter() {
                    waker.wake();
                }
                for handle in reactor_threads {
                    let _ = handle.join();
                }
                pool.join();
                return Err(e);
            }
        }
    }

    Ok(ServerHandle {
        addr,
        state,
        shutdown,
        wakers,
        reactors: reactor_threads,
        pool,
    })
}
